//! Key policies: how an envelope is collapsed into a greylist key.
//!
//! The paper evaluates exactly one keying choice — Postgrey's full
//! `(client/24, sender, recipient)` triplet — and its Table III shows the
//! multi-IP webmail retry pain is a direct artifact of that choice: a
//! provider that retries from a different pool member outside the /24
//! restarts the greylist clock. Real deployments differ here. qdgrey keys
//! on `(sender, recipient)` only, so any pool member's retry matches; a
//! pure client-network key is the IP-reputation ablation. [`KeyPolicy`]
//! makes the choice an experiment axis.

use crate::triplet::{mask_client, normalize_sender, KeyAtom, TripletKey};
use serde::{Deserialize, Serialize};
use spamward_smtp::{EmailAddress, ReversePath};
use std::net::Ipv4Addr;

/// How envelope data is collapsed into a [`TripletKey`].
///
/// Every policy produces a `TripletKey`; fields a policy ignores are
/// canonicalized (network `0`, [`KeyAtom::EMPTY`]) so stores need no
/// per-policy key type and snapshots stay uniform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum KeyPolicy {
    /// Postgrey: `(client & netmask, sender, recipient)`. The paper's
    /// deployed configuration (netmask 24).
    FullTriplet {
        /// Leading bits of the client address that participate in the key.
        netmask: u8,
    },
    /// qdgrey: `(sender, recipient)` with the client ignored, so retries
    /// from any MTA-pool member match the original attempt.
    SenderRecipient,
    /// Pure client-network reputation: `(client & netmask)` with the
    /// envelope ignored. One pass whitelists the whole network.
    ClientNet {
        /// Leading bits of the client address that participate in the key.
        netmask: u8,
    },
}

impl Default for KeyPolicy {
    fn default() -> Self {
        KeyPolicy::FullTriplet { netmask: 24 }
    }
}

impl KeyPolicy {
    /// Collapses an envelope into the key this policy tracks.
    #[must_use]
    pub fn key_for(
        &self,
        client: Ipv4Addr,
        sender: &ReversePath,
        recipient: &EmailAddress,
    ) -> TripletKey {
        match *self {
            KeyPolicy::FullTriplet { netmask } => {
                TripletKey::new(client, sender, recipient, netmask)
            }
            KeyPolicy::SenderRecipient => TripletKey {
                client_net: 0,
                sender: KeyAtom::of(&normalize_sender(sender)),
                recipient: KeyAtom::of(&recipient.normalized()),
            },
            KeyPolicy::ClientNet { netmask } => TripletKey {
                client_net: mask_client(client, netmask),
                sender: KeyAtom::EMPTY,
                recipient: KeyAtom::EMPTY,
            },
        }
    }

    /// Stable slug used in experiment tables and metric labels.
    #[must_use]
    pub fn slug(&self) -> &'static str {
        match self {
            KeyPolicy::FullTriplet { .. } => "full_triplet",
            KeyPolicy::SenderRecipient => "sender_recipient",
            KeyPolicy::ClientNet { .. } => "client_net",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn rcpt(s: &str) -> EmailAddress {
        s.parse().unwrap()
    }

    fn sender(s: &str) -> ReversePath {
        ReversePath::Address(s.parse().unwrap())
    }

    const POLICIES: [KeyPolicy; 3] = [
        KeyPolicy::FullTriplet { netmask: 24 },
        KeyPolicy::SenderRecipient,
        KeyPolicy::ClientNet { netmask: 24 },
    ];

    #[test]
    fn default_matches_full_triplet_constructor() {
        let ip = Ipv4Addr::new(198, 51, 100, 9);
        let s = sender("a@b.cc");
        let r = rcpt("user@foo.net");
        assert_eq!(KeyPolicy::default().key_for(ip, &s, &r), TripletKey::new(ip, &s, &r, 24));
    }

    #[test]
    fn sender_recipient_ignores_client() {
        let s = sender("a@b.cc");
        let r = rcpt("user@foo.net");
        let a = KeyPolicy::SenderRecipient.key_for(Ipv4Addr::new(10, 0, 0, 1), &s, &r);
        let b = KeyPolicy::SenderRecipient.key_for(Ipv4Addr::new(203, 0, 113, 9), &s, &r);
        assert_eq!(a, b);
        assert_eq!(a.client_net, 0);
    }

    #[test]
    fn client_net_ignores_envelope() {
        let ip = Ipv4Addr::new(10, 1, 2, 3);
        let a =
            KeyPolicy::ClientNet { netmask: 24 }.key_for(ip, &sender("a@b.cc"), &rcpt("u@foo.net"));
        let b = KeyPolicy::ClientNet { netmask: 24 }.key_for(
            Ipv4Addr::new(10, 1, 2, 200),
            &sender("z@y.xx"),
            &rcpt("other@foo.net"),
        );
        assert_eq!(a, b);
        assert!(a.sender.is_empty());
    }

    proptest! {
        /// VERP `+extension` stripping: under every envelope-sensitive
        /// policy, `local+ext@domain` keys identically to `local@domain`.
        #[test]
        fn prop_verp_extension_stripped_under_each_policy(
            local in "[a-z]{1,8}",
            ext in "[a-z0-9]{1,8}",
            ip in any::<u32>(),
        ) {
            let client = Ipv4Addr::from(ip);
            let r = rcpt("user@foo.net");
            let plain = sender(&format!("{local}@lists.example"));
            let verp = sender(&format!("{local}+{ext}@lists.example"));
            for policy in POLICIES {
                let (a, b) = (policy.key_for(client, &verp, &r), policy.key_for(client, &plain, &r));
                prop_assert!(a == b, "policy {}: {a:?} != {b:?}", policy.slug());
            }
        }

        /// Sender-case normalization: the local part is case-folded under
        /// every policy.
        #[test]
        fn prop_sender_case_normalized_under_each_policy(
            local in "[a-z]{1,10}",
            ip in any::<u32>(),
        ) {
            let client = Ipv4Addr::from(ip);
            let r = rcpt("user@foo.net");
            let lower = sender(&format!("{local}@b.cc"));
            let upper = sender(&format!("{}@b.cc", local.to_ascii_uppercase()));
            for policy in POLICIES {
                let (a, b) = (policy.key_for(client, &upper, &r), policy.key_for(client, &lower, &r));
                prop_assert!(a == b, "policy {}: {a:?} != {b:?}", policy.slug());
            }
        }

        /// /24 masking: client-sensitive policies group same-/24 neighbours;
        /// `SenderRecipient` groups every client.
        #[test]
        fn prop_netmask_grouping_under_each_policy(ip in any::<u32>(), host in any::<u8>()) {
            let a = Ipv4Addr::from(ip);
            let b = Ipv4Addr::from((ip & 0xFFFF_FF00) | u32::from(host));
            let s = sender("a@b.cc");
            let r = rcpt("user@foo.net");
            for policy in POLICIES {
                let (ka, kb) = (policy.key_for(a, &s, &r), policy.key_for(b, &s, &r));
                prop_assert!(ka == kb, "same /24 must key identically under {}", policy.slug());
            }
            // And a different /24 must split the client-sensitive policies.
            let c = Ipv4Addr::from(ip ^ 0x0000_0100);
            prop_assert_ne!(
                (KeyPolicy::FullTriplet { netmask: 24 }).key_for(a, &s, &r),
                (KeyPolicy::FullTriplet { netmask: 24 }).key_for(c, &s, &r)
            );
            prop_assert_ne!(
                (KeyPolicy::ClientNet { netmask: 24 }).key_for(a, &s, &r),
                (KeyPolicy::ClientNet { netmask: 24 }).key_for(c, &s, &r)
            );
            prop_assert_eq!(
                KeyPolicy::SenderRecipient.key_for(a, &s, &r),
                KeyPolicy::SenderRecipient.key_for(c, &s, &r)
            );
        }
    }
}
