//! Property tests pinning the lexer's masking and test-region behavior.
//!
//! The scanner is the foundation every rule stands on: a literal that
//! leaks through the mask is a false positive factory, and a comment that
//! survives is a hole every rule falls through. These properties pin the
//! hardened cases — raw strings, nested block comments, `#[cfg(test)]`
//! on `impl` blocks — over generated inputs rather than single examples.

use proptest::prelude::*;
use spamward_lint::lexer::{self, ScannedFile};

proptest! {
    /// Both masks are byte-aligned with the source: same length, newlines
    /// preserved — even over adversarial soups of quotes, slashes and
    /// hashes (unterminated literals included).
    #[test]
    fn masks_preserve_length_and_newlines(src in "[a-zA-Z0-9 \"'/*#\\n.]{0,200}") {
        let scanned = ScannedFile::scan(&src);
        let code = lexer::mask_comments_only(&src);
        prop_assert_eq!(scanned.masked.len(), src.len());
        prop_assert_eq!(code.len(), src.len());
        for (i, c) in src.char_indices() {
            if c == '\n' {
                prop_assert_eq!(scanned.masked.as_bytes()[i], b'\n');
                prop_assert_eq!(code.as_bytes()[i], b'\n');
            }
        }
    }

    /// Raw-string payloads are blanked by the full mask and kept intact by
    /// the comments-only mask, at the same byte offsets.
    #[test]
    fn raw_string_payloads_mask_correctly(payload in "[a-z0-9 \"/*]{0,40}") {
        let prefix = "const X: &str = r#\"";
        let src = format!("{prefix}{payload}\"#;\nfn marker() {{}}\n");
        let scanned = ScannedFile::scan(&src);
        let code = lexer::mask_comments_only(&src);
        let range = prefix.len()..prefix.len() + payload.len();
        prop_assert!(
            scanned.masked[range.clone()].bytes().all(|b| b == b' '),
            "payload must be blanked in the full mask: {:?}",
            &scanned.masked[range.clone()]
        );
        prop_assert_eq!(&code[range], payload.as_str());
        // The scanner resynchronizes after the raw string.
        prop_assert!(!lexer::find_token(&scanned.masked, "marker").is_empty());
    }

    /// Block comments blank their whole body at any nesting depth, and the
    /// scanner resynchronizes afterwards.
    #[test]
    fn nested_block_comments_blank_fully(depth in 1usize..6, inner in "[a-z ]{0,20}") {
        let open = "/*".repeat(depth);
        let close = "*/".repeat(depth);
        let src = format!("fn f() {{}}\n{open} zzsecret {inner} {close}\nfn g() {{}}\n");
        let scanned = ScannedFile::scan(&src);
        prop_assert!(lexer::find_token(&scanned.masked, "zzsecret").is_empty());
        prop_assert!(!lexer::find_token(&scanned.masked, "g").is_empty());
    }

    /// `#[cfg(test)]` on an `impl` block covers every method in it; code
    /// after the block is back outside the test region.
    #[test]
    fn cfg_test_impl_blocks_cover_methods(n in 1usize..5) {
        let mut methods = String::new();
        for i in 0..n {
            methods.push_str(&format!("    fn m{i}(&self) {{ helper_token(); }}\n"));
        }
        let src = format!(
            "struct S;\n#[cfg(test)]\nimpl S {{\n{methods}}}\nfn outside() {{}}\n"
        );
        let scanned = ScannedFile::scan(&src);
        let inside = lexer::find_token(&scanned.masked, "helper_token");
        prop_assert_eq!(inside.len(), n);
        for off in inside {
            prop_assert!(scanned.in_test_region(off));
        }
        let out = lexer::find_token(&scanned.masked, "outside");
        prop_assert!(!out.is_empty());
        for off in out {
            prop_assert!(!scanned.in_test_region(off));
        }
    }

    /// Comment markers inside string literals neither start a comment (the
    /// comments-only view keeps the literal) nor swallow following code.
    #[test]
    fn comment_markers_inside_strings_are_inert(s in "[a-z]{1,10}") {
        let src = format!("const P: &str = \"// {s} /* x */\";\nfn after() {{}}\n");
        let code = lexer::mask_comments_only(&src);
        prop_assert!(code.contains(&s));
        let scanned = ScannedFile::scan(&src);
        prop_assert!(!lexer::find_token(&scanned.masked, "after").is_empty());
    }

    /// `find_token` matches whole identifiers only — a suffix embedded in a
    /// longer identifier never counts.
    #[test]
    fn find_token_respects_identifier_boundaries(pad in "[a-z]{1,6}") {
        let src = format!("let {pad}_needle = 1; let needle = 2;\n");
        let scanned = ScannedFile::scan(&src);
        prop_assert_eq!(lexer::find_token(&scanned.masked, "needle").len(), 1);
    }
}
