//! Tier-1 integration tests for spamward-lint.
//!
//! Each rule is exercised against checked-in fixtures (one true positive
//! and one true negative per rule), the allowlist round-trips through its
//! parser, the binary's exit codes are verified end to end, and — the
//! gate this crate exists for — the workspace itself must lint clean.

use spamward_lint::{rules, walk, Allowlist, Diagnostic};
use std::path::{Path, PathBuf};
use std::process::Command;

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

/// Lints a fixture as if it lived at `rel_path` in the workspace.
fn diags(rel_path: &str, name: &str) -> Vec<Diagnostic> {
    rules::check_file(rel_path, &fixture(name))
}

fn rules_hit(rel_path: &str, name: &str) -> Vec<&'static str> {
    let mut hit: Vec<&'static str> = diags(rel_path, name).into_iter().map(|d| d.rule).collect();
    hit.dedup();
    hit
}

// Scope choices: D1/D2 apply everywhere, so fixtures are placed in an
// arbitrary product crate; D3 needs a determinism-scoped crate; P1 needs a
// protocol-path crate; P2 applies outside crates/smtp/src/reply.rs.

#[test]
fn d1_fixture_pair() {
    assert_eq!(rules_hit("crates/mta/src/fixture.rs", "d1_violation.rs"), vec!["D1"]);
    assert!(diags("crates/mta/src/fixture.rs", "d1_clean.rs").is_empty());
    // The sanctioned wall-clock module is exempt by construction.
    assert!(diags("crates/sim/src/wall.rs", "d1_violation.rs").is_empty());
}

#[test]
fn d2_fixture_pair() {
    assert_eq!(rules_hit("crates/botnet/src/fixture.rs", "d2_violation.rs"), vec!["D2"]);
    assert!(diags("crates/botnet/src/fixture.rs", "d2_clean.rs").is_empty());
}

#[test]
fn d3_fixture_pair() {
    let hits = diags("crates/greylist/src/fixture.rs", "d3_violation.rs");
    assert!(hits.iter().all(|d| d.rule == "D3"), "{hits:?}");
    assert_eq!(hits.len(), 2, "both the map drain and the set peek: {hits:?}");
    assert!(diags("crates/greylist/src/fixture.rs", "d3_clean.rs").is_empty());
    // Out of the determinism scope, hash iteration is not flagged.
    assert!(diags("crates/lint/src/fixture.rs", "d3_violation.rs").is_empty());
}

#[test]
fn p1_fixture_pair() {
    let hits = diags("crates/smtp/src/fixture.rs", "p1_violation.rs");
    assert_eq!(hits.len(), 3, "unwrap, expect and panic!: {hits:?}");
    assert!(hits.iter().all(|d| d.rule == "P1"), "{hits:?}");
    assert!(diags("crates/smtp/src/fixture.rs", "p1_clean.rs").is_empty());
    // Outside the protocol path the same code is not P1's business.
    assert!(diags("crates/analysis/src/fixture.rs", "p1_violation.rs").is_empty());
}

#[test]
fn p2_fixture_pair() {
    let hits = diags("crates/mta/src/fixture.rs", "p2_violation.rs");
    assert_eq!(hits.len(), 2, "Reply::single and Reply::new: {hits:?}");
    assert!(hits.iter().all(|d| d.rule == "P2"), "{hits:?}");
    assert!(diags("crates/mta/src/fixture.rs", "p2_clean.rs").is_empty());
    // The constants module itself is exempt.
    assert!(diags("crates/smtp/src/reply.rs", "p2_violation.rs").is_empty());
}

#[test]
fn o1_fixture_pair() {
    let hits = diags("crates/mta/src/fixture.rs", "o1_violation.rs");
    assert_eq!(
        hits.len(),
        7,
        "six recorders (registry, time-series, timeline) plus the trace category: {hits:?}"
    );
    assert!(hits.iter().all(|d| d.rule == "O1"), "{hits:?}");
    assert!(diags("crates/mta/src/fixture.rs", "o1_clean.rs").is_empty());
    // The crate metrics module and the obs crate itself are exempt.
    assert!(diags("crates/mta/src/metrics.rs", "o1_violation.rs").is_empty());
    assert!(diags("crates/obs/src/registry.rs", "o1_violation.rs").is_empty());
}

#[test]
fn s1_fixture_pair() {
    let hits = diags("crates/mta/src/fixture.rs", "s1_violation.rs");
    assert_eq!(hits.len(), 3, "the heap import, the heap field and the attempt sort: {hits:?}");
    assert!(hits.iter().all(|d| d.rule == "S1"), "{hits:?}");
    assert!(diags("crates/mta/src/fixture.rs", "s1_clean.rs").is_empty());
    // The engine crate owns the one sanctioned time-ordered queue.
    assert!(diags("crates/sim/src/fixture.rs", "s1_violation.rs").is_empty());
}

#[test]
fn f1_fixture_pair() {
    let hits = diags("crates/core/src/fixture.rs", "f1_violation.rs");
    assert_eq!(hits.len(), 6, "five name literals plus the probability: {hits:?}");
    assert!(hits.iter().all(|d| d.rule == "F1"), "{hits:?}");
    assert!(diags("crates/core/src/fixture.rs", "f1_clean.rs").is_empty());
    // The fault catalog and metrics modules own these literals.
    assert!(diags("crates/net/src/faults.rs", "f1_violation.rs").is_empty());
    assert!(diags("crates/core/src/metrics.rs", "f1_violation.rs").is_empty());
}

#[test]
fn o1_allowlist_suppression() {
    let text = r#"
[[allow]]
rule = "O1"
path = "crates/mta/src/fixture.rs"
contains = "smtp.reject"
justification = "fixture: suppress exactly the trace-category violation"
"#;
    let list = Allowlist::parse(text).expect("valid allowlist");
    let hits = diags("crates/mta/src/fixture.rs", "o1_violation.rs");
    let (suppressed, live): (Vec<_>, Vec<_>) =
        hits.into_iter().partition(|d| list.matches(d.rule, &d.path, &d.line_text).is_some());
    assert_eq!(suppressed.len(), 1, "{suppressed:?}");
    assert_eq!(live.len(), 6, "{live:?}");
}

#[test]
fn allowlist_round_trip_suppresses_fixture_violations() {
    let text = r#"
[[allow]]
rule = "P1"
path = "crates/smtp/src/fixture.rs"
contains = "line.get(..3).unwrap()"
justification = "fixture: suppress exactly one of the three violations"
"#;
    let list = Allowlist::parse(text).expect("valid allowlist");
    assert_eq!(list.entries.len(), 1);

    let hits = diags("crates/smtp/src/fixture.rs", "p1_violation.rs");
    let (suppressed, live): (Vec<_>, Vec<_>) =
        hits.into_iter().partition(|d| list.matches(d.rule, &d.path, &d.line_text).is_some());
    assert_eq!(suppressed.len(), 1, "{suppressed:?}");
    assert_eq!(live.len(), 2, "{live:?}");
    assert!(suppressed[0].line_text.contains("unwrap"));
}

#[test]
fn allowlist_rejects_missing_justification() {
    let text = "[[allow]]\nrule = \"D1\"\npath = \"x.rs\"\n";
    assert!(Allowlist::parse(text).is_err());
}

/// The reason this crate exists: the workspace itself must be clean under
/// its own rules (with the triaged debt in `lint-allow.toml`, none of
/// which may touch D1 in crates/smtp).
#[test]
fn workspace_lints_clean() {
    let root = workspace_root();
    let report = spamward_lint::lint_workspace(&root).expect("lint runs");
    assert!(report.files_scanned > 50, "scan looks too small: {}", report.files_scanned);
    assert!(
        report.diagnostics.is_empty(),
        "workspace has lint violations:\n{}",
        report.diagnostics.iter().map(|d| format!("  {d}")).collect::<Vec<_>>().join("\n")
    );
    // Stale allowlist entries surface as A1 diagnostics, so the emptiness
    // assertion above already covers them.
    // Acceptance criterion: zero allowlisted wall-clock debt in crates/smtp.
    let allowlist = Allowlist::load(&root.join(spamward_lint::ALLOWLIST_FILE)).expect("allowlist");
    assert!(
        !allowlist.entries.iter().any(|e| e.rule == "D1" && e.path.starts_with("crates/smtp/")),
        "crates/smtp must not carry allowlisted wall-clock (D1) debt"
    );
}

#[test]
fn binary_exits_zero_on_clean_workspace_and_one_on_violations() {
    let bin = env!("CARGO_BIN_EXE_spamward-lint");

    // Clean: the real workspace.
    let ok = Command::new(bin).arg(workspace_root()).output().expect("run lint");
    assert!(
        ok.status.success(),
        "expected exit 0, got {:?}\nstdout:\n{}\nstderr:\n{}",
        ok.status.code(),
        String::from_utf8_lossy(&ok.stdout),
        String::from_utf8_lossy(&ok.stderr),
    );

    // Violations: a scratch tree seeded with the D1 fixture.
    let scratch = scratch_dir("seeded");
    std::fs::create_dir_all(scratch.join("src")).expect("mkdir");
    std::fs::write(scratch.join("src/main.rs"), fixture("d1_violation.rs")).expect("seed");
    let bad = Command::new(bin).arg(&scratch).output().expect("run lint");
    assert_eq!(bad.status.code(), Some(1), "stdout:\n{}", String::from_utf8_lossy(&bad.stdout));
    let stdout = String::from_utf8_lossy(&bad.stdout);
    assert!(stdout.contains("[D1]"), "diagnostic names the rule: {stdout}");
    std::fs::remove_dir_all(&scratch).ok();
}

#[test]
fn binary_exits_one_on_stale_allowlist_entry() {
    let bin = env!("CARGO_BIN_EXE_spamward-lint");
    let scratch = scratch_dir("stale");
    std::fs::create_dir_all(scratch.join("src")).expect("mkdir");
    std::fs::write(scratch.join("src/lib.rs"), "pub fn ok() {}\n").expect("seed");
    std::fs::write(
        scratch.join("lint-allow.toml"),
        "[[allow]]\nrule = \"P1\"\npath = \"src/lib.rs\"\njustification = \"matches nothing\"\n",
    )
    .expect("seed allowlist");
    let out = Command::new(bin).arg(&scratch).output().expect("run lint");
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stdout).contains("stale"));
    std::fs::remove_dir_all(&scratch).ok();
}

fn workspace_root() -> PathBuf {
    walk::find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR"))).expect("workspace root")
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("spamward-lint-test-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}
