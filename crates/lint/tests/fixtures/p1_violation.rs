// P1 true positive: panicking operators in protocol-path (non-test) code.
pub fn parse_code(line: &str) -> u16 {
    let head = line.get(..3).unwrap();
    head.parse().expect("three digits")
}

pub fn reject(kind: u8) -> &'static str {
    match kind {
        0 => "not handled",
        _ => panic!("unknown rejection kind"),
    }
}
