// P1 true negative: typed errors in product code; unwrap/expect/panic are
// fine inside #[cfg(test)] regions.
pub fn parse_code(line: &str) -> Result<u16, String> {
    let head = line.get(..3).ok_or_else(|| format!("short line {line:?}"))?;
    head.parse().map_err(|e| format!("bad code: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses() {
        assert_eq!(parse_code("250 OK").unwrap(), 250);
        parse_code("x").expect_err("short line");
    }
}
