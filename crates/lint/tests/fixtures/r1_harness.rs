//! R1 fixture: a minimal experiment registry.

pub trait Experiment {
    fn id(&self) -> &'static str;
}

pub const REGISTRY: [&dyn Experiment; 2] = [&alpha::Alpha, &beta::Beta];

pub mod alpha;
pub mod beta;
