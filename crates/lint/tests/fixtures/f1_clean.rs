//! F1 fixture (clean): fault names flow through the crate's metrics
//! constants and probabilities come from the fault catalog's specs.

use crate::metrics::{
    BREAKER_TRIPS, CRASH_EVENTS, FAULT_LINK_DROPPED, GREYLIST_DEGRADED_FAIL_OPEN,
    RECOVERY_ENTRIES_LOST,
};

pub fn tally(reg: &Registry) -> u64 {
    let dropped = reg.counter(FAULT_LINK_DROPPED).unwrap_or(0);
    let degraded = reg.counter(GREYLIST_DEGRADED_FAIL_OPEN).unwrap_or(0);
    let crashes = reg.counter(CRASH_EVENTS).unwrap_or(0);
    let lost = reg.counter(RECOVERY_ENTRIES_LOST).unwrap_or(0);
    dropped + degraded + crashes + lost + reg.counter(BREAKER_TRIPS).unwrap_or(0)
}

pub fn flaky(spec: &FaultSpec) -> Availability {
    Availability::Flaky { down_prob: spec.down_prob }
}
