//! C2 fixture: reductions routed through the sanctioned helper; integer
//! sums stay order-insensitive and are fine.

use spamward_analysis::reduce::ordered_sum;

pub fn mean(samples: &[f64]) -> f64 {
    ordered_sum(samples.iter().copied()) / samples.len() as f64
}

pub fn event_rate(counts: &[u64], horizon_s: u64) -> f64 {
    counts.iter().sum::<u64>() as f64 / horizon_s as f64
}
