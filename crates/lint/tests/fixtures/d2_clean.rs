// D2 true negative: all randomness flows through the seeded, fork-labelled
// DetRng from spamward-sim.
use spamward_sim::DetRng;

pub fn jitter_ms(rng: &mut DetRng) -> u64 {
    rng.next_u64() % 1000
}
