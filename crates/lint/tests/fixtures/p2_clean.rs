// P2 true negative: codes come from the named constants (or a dedicated
// constructor); literals inside #[cfg(test)] regions are fine.
use spamward_smtp::reply::codes;
use spamward_smtp::Reply;

pub fn too_big() -> Reply {
    Reply::single(codes::SIZE_EXCEEDED, "5.3.4 message too big")
}

pub fn queued() -> Reply {
    Reply::ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_match() {
        assert_eq!(too_big(), Reply::single(552, "5.3.4 message too big"));
    }
}
