// D3 true negative: BTree collections iterate in key order, and pure
// lookups into hash collections are fine.
use std::collections::{BTreeMap, HashMap};

pub fn drain_in_key_order(queue: BTreeMap<u32, String>) -> Vec<String> {
    queue.into_values().collect()
}

pub fn lookup_only(index: &HashMap<u32, String>, key: u32) -> Option<&String> {
    index.get(&key)
}
