//! O2 fixture (metrics module): unique, live constants plus a dynamic-name
//! prefix.

/// Messages the gate accepted.
pub const GATE_ACCEPTED: &str = "gate.accepted";
/// Messages the gate deferred.
pub const GATE_DEFERRED: &str = "gate.deferred";
/// Per-sender counters: `gate.sender.` followed by the sender slug.
pub const GATE_SENDER_PREFIX: &str = "gate.sender.";

/// Records the gate counters.
pub fn collect(reg: &mut Vec<(String, u64)>, accepted: u64, deferred: u64, slug: &str) {
    reg.push((GATE_ACCEPTED.to_string(), accepted));
    reg.push((GATE_DEFERRED.to_string(), deferred));
    reg.push((format!("{GATE_SENDER_PREFIX}{slug}"), accepted + deferred));
}
