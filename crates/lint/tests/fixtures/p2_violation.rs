// P2 true positive: inline SMTP reply-code literals in product code.
use spamward_smtp::Reply;

pub fn too_big() -> Reply {
    Reply::single(552, "5.3.4 message too big")
}

pub fn greeting(lines: Vec<String>) -> Reply {
    Reply::new(250, lines)
}
