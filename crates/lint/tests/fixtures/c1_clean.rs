//! C1 fixture: single-threaded world code; concurrency only in tests.

pub fn fan_out(items: Vec<u64>) -> u64 {
    items.iter().sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    #[test]
    fn concurrency_in_tests_is_not_c1s_business() {
        let guard = Mutex::new(());
        let _held = guard.lock().unwrap();
        assert_eq!(fan_out(vec![1, 2, 3]), 6);
    }
}
