//! O2 fixture (metrics module): one duplicate value, one dead constant.

/// Messages the gate accepted.
pub const GATE_ACCEPTED: &str = "gate.accepted";
/// Duplicate of [`GATE_ACCEPTED`] under another name.
pub const GATE_PASSED: &str = "gate.accepted";
/// Declared but recorded nowhere.
pub const GATE_ORPHAN: &str = "gate.orphan";

/// Records the gate counters.
pub fn collect(reg: &mut Vec<(String, u64)>, accepted: u64) {
    reg.push((GATE_ACCEPTED.to_string(), accepted));
    reg.push((GATE_PASSED.to_string(), accepted));
}
