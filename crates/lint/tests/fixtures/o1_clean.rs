//! O1 fixture (clean): names flow through constants from the crate's
//! metrics module; single-argument record() calls carry no category.

use crate::metrics::{RECV_COMMANDS, STORE_SIZE, TRACE_SMTP_REJECT};

pub fn export(reg: &mut Registry, stats: &Stats) {
    reg.record_counter(RECV_COMMANDS, stats.commands);
    reg.record_gauge(STORE_SIZE, stats.store as i64);
    reg.record_span(crate::metrics::SPAN_EXCHANGE, &stats.exchange);
}

pub fn note(trace: &mut Tracer, now: SimTime, span: &mut SpanStats, d: SimDuration) {
    trace.record(now, TRACE_SMTP_REJECT, "550 no such user".to_string());
    span.record(d);
}

pub fn sample(samples: &mut TimeSeries, timeline: &mut Timeline, now: SimTime) {
    samples.record_point(crate::metrics::SAMPLE_RECV_ACCEPTED, now, 1);
    timeline.record_event(crate::metrics::TL_EMIT, now, "msg-1", String::new());
}
