//! O2 fixture (greylist consumer): backend/policy literals that resolve.

pub fn note(reg: &mut Vec<(String, u64)>) {
    // Declared constant values: resolve.
    reg.push(("greylist.backend.ops".to_string(), 1));
    reg.push(("greylist.policy.client_nets".to_string(), 1));
}
