//! O2 fixture (greylist consumer): literals in the declared
//! `greylist.backend.*` / `greylist.policy.*` namespaces that resolve to
//! no constant.

pub fn note(reg: &mut Vec<(String, u64)>) {
    // The namespace is declared but no metrics module knows this name —
    // a renamed counter left behind at a recording site.
    reg.push(("greylist.backend.requests".to_string(), 1));
    // Same for the policy gauge family.
    reg.push(("greylist.policy.netmask".to_string(), 1));
}
