//! O2 fixture (consumer): a literal in a declared namespace that resolves
//! to no constant.

pub fn note(reg: &mut Vec<(String, u64)>) {
    // "gate.rejected" shares the declared `gate.*` roots but no metrics
    // module declares it.
    reg.push(("gate.rejected".to_string(), 1));
}
