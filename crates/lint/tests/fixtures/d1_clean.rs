// D1 true negative: virtual time only; `Duration` (a span, not a clock
// read) is fine, and clock reads in comments or strings don't count:
// Instant::now() must not be flagged here.
use std::time::Duration;

pub fn virtual_deadline(now_micros: u64, timeout: Duration) -> u64 {
    let msg = "calling Instant::now() would be a D1 violation";
    let _ = msg;
    now_micros + timeout.as_micros() as u64
}
