//! R1 fixture: the `alpha` experiment.

use crate::harness::Experiment;

pub struct Alpha;

impl Experiment for Alpha {
    fn id(&self) -> &'static str {
        "alpha"
    }
}
