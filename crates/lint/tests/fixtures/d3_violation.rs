// D3 true positive: iterating a HashMap in a crate that feeds the event
// loop makes run order depend on the hasher.
use std::collections::{HashMap, HashSet};

pub fn drain_in_hash_order(queue: HashMap<u32, String>) -> Vec<String> {
    let mut out = Vec::new();
    for (_, v) in queue.into_iter() {
        out.push(v);
    }
    out
}

pub fn first_peer(peers: &HashSet<u32>) -> Option<u32> {
    peers.iter().copied().next()
}
