//! O2 fixture (consumer): literals that resolve — or are none of O2's
//! business.

pub fn note(reg: &mut Vec<(String, u64)>) {
    // Declared constant value: resolves.
    reg.push(("gate.accepted".to_string(), 1));
    // Extends a declared dynamic-name prefix: resolves.
    reg.push(("gate.sender.mx1".to_string(), 1));
    // A hostname shares the dotted shape but not a declared namespace.
    let _host = "smtp.example.net";
}
