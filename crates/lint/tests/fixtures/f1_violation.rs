//! F1 fixture: fault-injection literals scattered through product code —
//! metric names from the fault namespaces and a hard-coded probability.

const TRIPS: &str = "mta.breaker.trips";

pub fn tally(reg: &Registry) -> u64 {
    let dropped = reg.counter("net.fault.link_dropped").unwrap_or(0);
    let degraded = reg.counter("greylist.degraded.fail_open").unwrap_or(0);
    let crashes = reg.counter("mta.crash.events").unwrap_or(0);
    let lost = reg.counter("greylist.recovery.entries_lost").unwrap_or(0);
    dropped + degraded + crashes + lost + reg.counter(TRIPS).unwrap_or(0)
}

pub fn flaky() -> Availability {
    Availability::Flaky { down_prob: 0.25 }
}
