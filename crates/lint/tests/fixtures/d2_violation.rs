// D2 true positive: ambient randomness instead of the seeded DetRng.
pub fn jitter_ms() -> u64 {
    let mut rng = rand::thread_rng();
    let _ = &mut rng;
    rand::random::<u64>() % 1000
}
