// D1 true positive: reads the host clock outside the sanctioned module.
use std::time::{Duration, Instant};

pub fn elapsed_wall() -> Duration {
    let start = Instant::now();
    start.elapsed()
}

pub fn wall_seconds() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}
