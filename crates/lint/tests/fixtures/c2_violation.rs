//! C2 fixture: ad-hoc f64 accumulation in experiment code.

pub fn mean(samples: &[f64]) -> f64 {
    samples.iter().sum::<f64>() / samples.len() as f64
}

pub fn weighted_total(weights: &[(u64, f64)]) -> f64 {
    let mut total = 0.0;
    for (_, w) in weights {
        total += *w;
    }
    total
}
