//! O2 fixture (greylist store metrics): the `greylist.backend.*` and
//! `greylist.policy.*` namespaces the pluggable-store stack exports.

/// Store requests the active backend answered.
pub const BACKEND_OPS: &str = "greylist.backend.ops";
/// Store requests refused inside a fault window.
pub const BACKEND_UNAVAILABLE: &str = "greylist.backend.unavailable";
/// Distinct client networks the key policy currently tracks.
pub const POLICY_CLIENT_NETS: &str = "greylist.policy.client_nets";

/// Records the backend counters and the policy gauge.
pub fn collect(reg: &mut Vec<(String, u64)>, ops: u64, refused: u64, nets: u64) {
    reg.push((BACKEND_OPS.to_string(), ops));
    reg.push((BACKEND_UNAVAILABLE.to_string(), refused));
    reg.push((POLICY_CLIENT_NETS.to_string(), nets));
}
