//! C1 fixture: concurrency primitives in world code.

use std::sync::mpsc;
use std::sync::Mutex;

pub fn fan_out(items: Vec<u64>) -> u64 {
    let total = Mutex::new(0u64);
    let (tx, rx) = mpsc::channel();
    std::thread::scope(|s| {
        for chunk in items.chunks(8) {
            let tx = tx.clone();
            s.spawn(move || {
                tx.send(chunk.iter().sum::<u64>()).ok();
            });
        }
    });
    drop(tx);
    while let Ok(part) = rx.recv() {
        *total.lock().unwrap() += part;
    }
    total.into_inner().unwrap()
}
