//! O1 fixture: metric and trace name literals bound outside the crate's
//! `metrics.rs`/`obs` module.

pub fn export(reg: &mut Registry, stats: &Stats) {
    reg.record_counter("smtp.server.commands", stats.commands);
    reg.record_gauge("greylist.store.size", stats.store as i64);
    reg.record_histogram("mta.send.delivery_delay_s", &stats.delays);
    reg.record_span("smtp.wire.exchange", &stats.exchange);
}

pub fn note(trace: &mut Tracer, now: SimTime) {
    trace.record(now, "smtp.reject", "550 no such user".to_string());
}

pub fn sample(samples: &mut TimeSeries, timeline: &mut Timeline, now: SimTime) {
    samples.record_point("obs.sample.recv.accepted", now, 1);
    timeline.record_event("timeline.emit", now, "msg-1", String::new());
}
