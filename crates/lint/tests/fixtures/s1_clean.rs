//! S1 fixture (clean): heaps and sorts that order nothing temporal.

use std::collections::BinaryHeap;

pub fn largest(sizes: &mut BinaryHeap<u64>) -> Option<u64> {
    sizes.pop()
}

pub fn order_mx(mut records: Vec<(u16, u32)>) -> Vec<(u16, u32)> {
    records.sort_by_key(|r| r.0);
    records
}
