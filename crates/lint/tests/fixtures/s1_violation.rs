//! S1 fixture (violation): a hand-rolled event queue and a by-timestamp
//! scheduler pass outside the engine crate.

use spamward_sim::SimTime;
use std::collections::BinaryHeap;

pub struct PendingDeliveries {
    queue: BinaryHeap<(SimTime, u64)>,
}

pub fn order_attempts(mut attempts: Vec<(SimTime, u64)>) -> Vec<(SimTime, u64)> {
    attempts.sort_by_key(|a| a.0);
    attempts
}
