//! R1 fixture: the `beta` experiment.

use crate::harness::Experiment;

pub struct Beta;

impl Experiment for Beta {
    fn id(&self) -> &'static str {
        "beta"
    }
}
