//! CLI contract for `spamward-lint` (mirrors `repro_cli.rs`): exit codes,
//! stderr shape, `--explain`, and the pinned `--json` schema.
//!
//! Exit codes: 0 clean, 1 diagnostics (violations or stale allow entries),
//! 2 the lint itself failed (bad arguments, malformed allowlist). The JSON
//! schema (version 1) is frozen here: fixed key order, diagnostics sorted
//! by `(path, line, rule)`, byte-stable across runs.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_spamward-lint")
}

fn run(args: &[&str]) -> Output {
    Command::new(bin()).args(args).output().expect("spawn spamward-lint")
}

fn workspace_root() -> PathBuf {
    spamward_lint::walk::find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root")
}

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("spamward-lint-cli-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

#[test]
fn json_on_clean_workspace_exits_zero() {
    let root = workspace_root();
    let out = run(&["--json", root.to_str().expect("utf8 root")]);
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8(out.stdout).expect("json output is utf8");
    assert!(stdout.starts_with("{\n  \"version\": 1,\n  \"clean\": true,\n"), "{stdout}");
    assert!(stdout.contains("\"diagnostics\": []"), "{stdout}");
    assert!(stdout.ends_with("}\n"), "single trailing newline: {stdout:?}");
    // Human summary stays on stderr, never polluting the JSON document.
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.starts_with("spamward-lint:"), "{stderr}");
    assert!(stderr.contains("violation(s)"), "{stderr}");
}

#[test]
fn json_output_is_byte_stable_across_runs() {
    let root = workspace_root();
    let root = root.to_str().expect("utf8 root");
    let a = run(&["--json", root]);
    let b = run(&["--json", root]);
    assert_eq!(a.stdout, b.stdout, "same tree must produce identical JSON bytes");
}

/// Deliberately breaking a cross-file invariant (a `Mutex` in world code)
/// produces the diagnostic in both text and `--json` output, with exit 1.
#[test]
fn broken_cross_file_invariant_reports_in_text_and_json() {
    let scratch = scratch_dir("c1");
    std::fs::create_dir_all(scratch.join("crates/mta/src")).expect("mkdir");
    std::fs::write(scratch.join("crates/mta/src/lib.rs"), fixture("c1_violation.rs"))
        .expect("seed");
    let scratch_s = scratch.to_str().expect("utf8 scratch");

    let text = run(&[scratch_s]);
    assert_eq!(text.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&text.stdout);
    assert!(stdout.contains("[C1]"), "{stdout}");

    let json = run(&["--json", scratch_s]);
    assert_eq!(json.status.code(), Some(1));
    let stdout = String::from_utf8(json.stdout).expect("utf8");
    assert!(stdout.contains("\"clean\": false"), "{stdout}");
    assert!(stdout.contains("\"rule\": \"C1\""), "{stdout}");
    // Pinned diagnostic shape: fixed key order within each object.
    let diag_start = stdout.find("{\"rule\":").expect("a diagnostic object");
    let diag = &stdout[diag_start..];
    let order = ["\"rule\":", "\"path\":", "\"line\":", "\"message\":", "\"line_text\":"];
    let mut last = 0;
    for key in order {
        let at = diag.find(key).unwrap_or_else(|| panic!("{key} missing in {diag}"));
        assert!(at >= last, "key {key} out of pinned order in {diag}");
        last = at;
    }
    std::fs::remove_dir_all(&scratch).ok();
}

#[test]
fn stale_allow_entry_is_an_a1_diagnostic() {
    let scratch = scratch_dir("a1");
    std::fs::create_dir_all(scratch.join("src")).expect("mkdir");
    std::fs::write(scratch.join("src/lib.rs"), "pub fn ok() {}\n").expect("seed");
    std::fs::write(
        scratch.join("lint-allow.toml"),
        "[[allow]]\nrule = \"P1\"\npath = \"src/lib.rs\"\njustification = \"rotted\"\n",
    )
    .expect("seed allowlist");
    let scratch_s = scratch.to_str().expect("utf8 scratch");

    let out = run(&[scratch_s]);
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("[A1]"), "{stdout}");
    assert!(stdout.contains("remove this entry"), "{stdout}");

    let json = run(&["--json", scratch_s]);
    let stdout = String::from_utf8_lossy(&json.stdout);
    assert!(stdout.contains("\"rule\": \"A1\""), "{stdout}");
    assert!(stdout.contains("\"path\": \"lint-allow.toml\""), "{stdout}");
    std::fs::remove_dir_all(&scratch).ok();
}

#[test]
fn bad_arguments_exit_two_with_clean_stdout() {
    let out = run(&["--bogus"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(out.stdout.is_empty(), "errors go to stderr only");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--bogus"), "{stderr}");

    // A root that is not a directory is a lint failure, not a finding.
    let out = run(&["/nonexistent/spamward-root"]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn explain_prints_rationale_and_rejects_unknown_rules() {
    for rule in spamward_lint::rules::RULE_IDS {
        let out = run(&["--explain", rule]);
        assert_eq!(out.status.code(), Some(0), "--explain {rule}");
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(stdout.contains(rule), "--explain {rule} names the rule: {stdout}");
    }
    let out = run(&["--explain", "Z9"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown rule"));

    let out = run(&["--explain"]);
    assert_eq!(out.status.code(), Some(2), "--explain without a rule is a usage error");
}
