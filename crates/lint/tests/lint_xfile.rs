//! Cross-file rules (C1/C2/O2/R1) against synthetic workspace models.
//!
//! [`WorkspaceModel::from_sources`] is pure, so every test assembles a
//! mini-workspace in memory from checked-in fixtures and runs pass 2
//! directly — one true-positive and one true-negative model per rule.

use spamward_lint::rules_xfile::check_workspace;
use spamward_lint::{Diagnostic, WorkspaceModel};
use std::path::Path;

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

fn model(sources: &[(&str, &str)], design_md: Option<String>) -> WorkspaceModel {
    WorkspaceModel::from_sources(
        sources.iter().map(|(p, s)| (p.to_string(), s.to_string())).collect(),
        Vec::new(),
        design_md,
    )
}

fn rules_hit(diags: &[Diagnostic]) -> Vec<&'static str> {
    let mut hit: Vec<&'static str> = diags.iter().map(|d| d.rule).collect();
    hit.dedup();
    hit
}

#[test]
fn c1_fixture_pair() {
    let bad = model(&[("crates/mta/src/fanout.rs", &fixture("c1_violation.rs"))], None);
    let hits = check_workspace(&bad);
    assert_eq!(rules_hit(&hits), vec!["C1"], "{hits:?}");
    assert!(hits.len() >= 3, "the Mutex, mpsc and thread uses: {hits:?}");

    let clean = model(&[("crates/mta/src/fanout.rs", &fixture("c1_clean.rs"))], None);
    assert!(check_workspace(&clean).is_empty());

    // The sanctioned fan-out module may use the same primitives.
    let pool = model(&[("crates/sim/src/shard.rs", &fixture("c1_violation.rs"))], None);
    assert!(check_workspace(&pool).is_empty());
}

#[test]
fn c2_fixture_pair() {
    let path = "crates/core/src/experiments/fixture.rs";
    let bad = model(&[(path, &fixture("c2_violation.rs"))], None);
    let hits = check_workspace(&bad);
    assert_eq!(rules_hit(&hits), vec!["C2"], "{hits:?}");
    assert_eq!(hits.len(), 2, "the .sum::<f64>() and the += accumulator: {hits:?}");

    let clean = model(&[(path, &fixture("c2_clean.rs"))], None);
    assert!(check_workspace(&clean).is_empty());

    // Outside experiment/metrics scope the same code is not C2's business.
    let elsewhere = model(&[("crates/dns/src/zone.rs", &fixture("c2_violation.rs"))], None);
    assert!(check_workspace(&elsewhere).is_empty());
}

#[test]
fn o2_fixture_pair() {
    let bad = model(
        &[
            ("crates/gate/src/metrics.rs", &fixture("o2_metrics_violation.rs")),
            ("crates/gate/src/record.rs", &fixture("o2_user_violation.rs")),
        ],
        None,
    );
    let hits = check_workspace(&bad);
    assert!(hits.iter().all(|d| d.rule == "O2"), "{hits:?}");
    assert!(
        hits.iter().any(|d| d.message.contains("duplicate metric name")),
        "GATE_PASSED duplicates GATE_ACCEPTED: {hits:?}"
    );
    assert!(
        hits.iter().any(|d| d.message.contains("dead metric constant `GATE_ORPHAN`")),
        "{hits:?}"
    );
    assert!(
        hits.iter().any(|d| d.message.contains("unresolved metric literal \"gate.rejected\"")),
        "{hits:?}"
    );

    let clean = model(
        &[
            ("crates/gate/src/metrics.rs", &fixture("o2_metrics_clean.rs")),
            ("crates/gate/src/record.rs", &fixture("o2_user_clean.rs")),
        ],
        None,
    );
    let hits = check_workspace(&clean);
    assert!(hits.is_empty(), "hostnames and prefix extensions must not trip O2: {hits:?}");
}

#[test]
fn o2_covers_greylist_backend_and_policy_namespaces() {
    // The pluggable-store namespaces ride the same contract: a literal in
    // `greylist.backend.*` / `greylist.policy.*` must resolve to a
    // constant in some metrics module.
    let metrics = ("crates/greylist/src/metrics.rs", fixture("o2_greylist_metrics.rs"));
    let bad = model(
        &[
            (metrics.0, &metrics.1),
            ("crates/greylist/src/backend.rs", &fixture("o2_greylist_user_violation.rs")),
        ],
        None,
    );
    let hits = check_workspace(&bad);
    assert!(hits.iter().all(|d| d.rule == "O2"), "{hits:?}");
    assert!(
        hits.iter()
            .any(|d| d.message.contains("unresolved metric literal \"greylist.backend.requests\"")),
        "{hits:?}"
    );
    assert!(
        hits.iter()
            .any(|d| d.message.contains("unresolved metric literal \"greylist.policy.netmask\"")),
        "{hits:?}"
    );

    let clean = model(
        &[
            (metrics.0, &metrics.1),
            ("crates/greylist/src/backend.rs", &fixture("o2_greylist_user_clean.rs")),
        ],
        None,
    );
    let hits = check_workspace(&clean);
    assert!(hits.is_empty(), "declared backend/policy names must resolve: {hits:?}");
}

#[test]
fn r1_fixture_pair() {
    let sources: Vec<(&str, String)> = vec![
        ("crates/core/src/harness.rs", fixture("r1_harness.rs")),
        ("crates/core/src/experiments/alpha.rs", fixture("r1_experiment_alpha.rs")),
        ("crates/core/src/experiments/beta.rs", fixture("r1_experiment_beta.rs")),
    ];
    let as_refs: Vec<(&str, &str)> = sources.iter().map(|(p, s)| (*p, s.as_str())).collect();

    let clean = model(&as_refs, Some(fixture("r1_design_clean.md")));
    let hits = check_workspace(&clean);
    assert!(hits.is_empty(), "{hits:?}");

    let bad = model(&as_refs, Some(fixture("r1_design_violation.md")));
    let hits = check_workspace(&bad);
    assert_eq!(rules_hit(&hits), vec!["R1"], "{hits:?}");
    assert!(
        hits.iter().any(|d| d.message.contains("per-experiment index is out of sync")),
        "{hits:?}"
    );
    assert!(hits.iter().any(|d| d.message.contains("rules table is out of sync")), "{hits:?}");
}

#[test]
fn r1_skips_when_inputs_absent() {
    // No DESIGN.md and no registry: R1 has nothing to check — scratch
    // trees (CLI tests, seeded fixtures) must stay lintable.
    let m = model(&[("src/lib.rs", "pub fn ok() {}\n")], None);
    assert!(check_workspace(&m).is_empty());
}

#[test]
fn r1_flags_unresolvable_registry_entry() {
    // Registry names a module whose file is missing from the model.
    let m = model(
        &[("crates/core/src/harness.rs", &fixture("r1_harness.rs"))],
        Some(fixture("r1_design_clean.md")),
    );
    let hits = check_workspace(&m);
    assert!(
        hits.iter().any(|d| d.rule == "R1" && d.message.contains("does not resolve")),
        "{hits:?}"
    );
}

#[test]
fn diagnostics_are_sorted_and_deduplicated() {
    let bad = model(
        &[
            ("crates/mta/src/fanout.rs", &fixture("c1_violation.rs")),
            ("crates/core/src/experiments/fixture.rs", &fixture("c2_violation.rs")),
        ],
        None,
    );
    let hits = check_workspace(&bad);
    let keys: Vec<(&str, usize, &str)> =
        hits.iter().map(|d| (d.path.as_str(), d.line, d.rule)).collect();
    let mut sorted = keys.clone();
    sorted.sort();
    sorted.dedup();
    assert_eq!(keys, sorted, "stable (path, line, rule) order with no duplicates");
}
