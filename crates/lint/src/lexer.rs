//! A lightweight Rust source scanner.
//!
//! The rules in this crate match *token text*, so the scanner's job is to
//! blank out everything that merely *looks* like code — comments (including
//! doc comments, and therefore doctests) and string/char literal contents —
//! while preserving byte offsets and line structure exactly. It also maps
//! out `#[cfg(test)]` / `#[test]` regions so rules can exempt test code.
//!
//! This is deliberately not a full parser: the workspace pins the few
//! constructs the heuristics cannot see (e.g. `Instant :: now` with interior
//! whitespace) through rustfmt, which normalizes them away.

/// A scanned source file.
#[derive(Debug)]
pub struct ScannedFile {
    /// The source with comment and literal bytes replaced by spaces
    /// (newlines kept), byte-for-byte aligned with the original.
    pub masked: String,
    /// Byte offset of the start of each line.
    line_starts: Vec<usize>,
    /// Byte ranges covered by `#[cfg(test)]` / `#[test]` items.
    test_regions: Vec<(usize, usize)>,
}

impl ScannedFile {
    /// Scans `source`.
    pub fn scan(source: &str) -> ScannedFile {
        let masked = mask(source);
        let line_starts = std::iter::once(0)
            .chain(masked.bytes().enumerate().filter(|&(_, b)| b == b'\n').map(|(i, _)| i + 1))
            .collect();
        let test_regions = find_test_regions(&masked);
        ScannedFile { masked, line_starts, test_regions }
    }

    /// The 1-based line number containing byte `offset`.
    pub fn line_of(&self, offset: usize) -> usize {
        self.line_starts.partition_point(|&s| s <= offset)
    }

    /// The masked text of the (1-based) line — used for allowlist matching
    /// against what the rule actually saw.
    pub fn line_text<'a>(&self, original: &'a str, line: usize) -> &'a str {
        let start = self.line_starts[line - 1];
        let end =
            self.line_starts.get(line).map(|&e| e.saturating_sub(1)).unwrap_or(original.len());
        original[start..end].trim_end_matches('\r')
    }

    /// Whether byte `offset` falls inside a test-only region.
    pub fn in_test_region(&self, offset: usize) -> bool {
        self.test_regions.iter().any(|&(s, e)| (s..=e).contains(&offset))
    }
}

/// Replaces comment bytes with spaces but keeps string/char literals
/// intact, byte-for-byte aligned with the original.
///
/// Rules that must *see* quoted names in code (F1 fault namespaces, the
/// O2 metric-literal resolution) scan this view, so prose mentions of the
/// same names in comments cannot match. Raw strings, nested block
/// comments and escaped quotes are handled exactly as in [`ScannedFile`]'s
/// full mask; the only difference is which side of the literal boundary
/// gets blanked.
pub fn mask_comments_only(source: &str) -> String {
    mask_with(source, false)
}

/// Replaces comment and string/char-literal bytes with spaces.
fn mask(source: &str) -> String {
    mask_with(source, true)
}

fn mask_with(source: &str, blank_literals: bool) -> String {
    let bytes = source.as_bytes();
    let mut out = bytes.to_vec();
    let mut i = 0;

    while i < bytes.len() {
        match bytes[i] {
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    out[i] = b' ';
                    i += 1;
                }
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                let mut depth = 1;
                out[i] = b' ';
                out[i + 1] = b' ';
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        out[i] = b' ';
                        out[i + 1] = b' ';
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        out[i] = b' ';
                        out[i + 1] = b' ';
                        i += 2;
                    } else {
                        if bytes[i] != b'\n' {
                            out[i] = b' ';
                        }
                        i += 1;
                    }
                }
            }
            b'r' | b'b' if is_raw_string_start(bytes, i) => {
                // r"..", r#".."#, br".." etc.
                let mut j = i;
                while bytes[j] != b'#' && bytes[j] != b'"' {
                    j += 1; // skip the r / br prefix
                }
                let mut hashes = 0;
                while bytes.get(j) == Some(&b'#') {
                    hashes += 1;
                    j += 1;
                }
                debug_assert_eq!(bytes.get(j), Some(&b'"'));
                j += 1;
                // Find the closing quote followed by `hashes` hashes.
                loop {
                    match bytes.get(j) {
                        None => break,
                        Some(&b'"')
                            if bytes[j + 1..].iter().take(hashes).all(|&b| b == b'#')
                                && bytes[j + 1..].len() >= hashes =>
                        {
                            j += 1 + hashes;
                            break;
                        }
                        Some(_) => j += 1,
                    }
                }
                if blank_literals {
                    for b in &mut out[i..j.min(bytes.len())] {
                        if *b != b'\n' {
                            *b = b' ';
                        }
                    }
                }
                i = j;
            }
            b'"' => {
                if blank_literals {
                    out[i] = b' ';
                }
                i += 1;
                while i < bytes.len() {
                    match bytes[i] {
                        b'\\' => {
                            if blank_literals {
                                out[i] = b' ';
                                if i + 1 < bytes.len() && bytes[i + 1] != b'\n' {
                                    out[i + 1] = b' ';
                                }
                            }
                            i += 2;
                        }
                        b'"' => {
                            if blank_literals {
                                out[i] = b' ';
                            }
                            i += 1;
                            break;
                        }
                        b => {
                            if blank_literals && b != b'\n' {
                                out[i] = b' ';
                            }
                            i += 1;
                        }
                    }
                }
            }
            b'\'' => {
                // Char literal vs lifetime. A char literal closes with a
                // quote within a few bytes; a lifetime never closes.
                if let Some(len) = char_literal_len(bytes, i) {
                    if blank_literals {
                        for b in &mut out[i..i + len] {
                            *b = b' ';
                        }
                    }
                    i += len;
                } else {
                    i += 1; // lifetime tick; leave the identifier as code
                }
            }
            _ => i += 1,
        }
    }

    // Masking only writes ASCII spaces over existing bytes and never splits
    // multi-byte sequences mid-way (string/comment contents are fully
    // blanked), so the result is still valid UTF-8.
    match String::from_utf8(out) {
        Ok(masked) => masked,
        Err(e) => String::from_utf8_lossy(&e.into_bytes()).into_owned(),
    }
}

/// Is `bytes[i..]` the start of a raw (or raw-byte) string literal, rather
/// than an identifier like `r` or `broker`?
fn is_raw_string_start(bytes: &[u8], i: usize) -> bool {
    if i > 0 && (bytes[i - 1].is_ascii_alphanumeric() || bytes[i - 1] == b'_') {
        return false;
    }
    let rest = &bytes[i..];
    let after_prefix = if rest.starts_with(b"br") || rest.starts_with(b"rb") {
        &rest[2..]
    } else if rest.starts_with(b"r") || rest.starts_with(b"b") {
        &rest[1..]
    } else {
        return false;
    };
    // b"..." (non-raw byte string) is handled by the '"' arm; only claim
    // raw strings here, which require r and optional hashes.
    if rest[0] == b'b' && !rest.starts_with(b"br") {
        return false;
    }
    let mut j = 0;
    while after_prefix.get(j) == Some(&b'#') {
        j += 1;
    }
    after_prefix.get(j) == Some(&b'"')
}

/// If `bytes[i]` opens a char literal, its total byte length; `None` for
/// lifetimes.
fn char_literal_len(bytes: &[u8], i: usize) -> Option<usize> {
    debug_assert_eq!(bytes[i], b'\'');
    let rest = &bytes[i + 1..];
    match rest.first()? {
        b'\\' => {
            // Escaped char: find the closing quote (handles \n, \x41, \u{..}).
            let close = rest.iter().skip(1).position(|&b| b == b'\'')?;
            Some(2 + close + 2 - 1)
        }
        _ => {
            // `'a'` is a char; `'a` (no closing quote right after one char,
            // possibly multi-byte) is a lifetime.
            let ch_len = utf8_len(rest[0]);
            if rest.get(ch_len) == Some(&b'\'') {
                Some(1 + ch_len + 1)
            } else {
                None
            }
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        b if b < 0x80 => 1,
        b if b >= 0xF0 => 4,
        b if b >= 0xE0 => 3,
        _ => 2,
    }
}

/// Finds boundary-checked occurrences of `pat` in `masked`: the byte before
/// must not be an identifier character (path separators `:` are allowed so
/// qualified forms still match), and the byte after must not continue an
/// identifier.
pub fn find_token(masked: &str, pat: &str) -> Vec<usize> {
    let mut hits = Vec::new();
    let bytes = masked.as_bytes();
    let mut from = 0;
    while let Some(pos) = masked[from..].find(pat) {
        let start = from + pos;
        let end = start + pat.len();
        let first = pat.as_bytes()[0];
        let ok_before = !(first.is_ascii_alphanumeric() || first == b'_') || start == 0 || {
            let b = bytes[start - 1];
            !(b.is_ascii_alphanumeric() || b == b'_')
        };
        let last = pat.as_bytes()[pat.len() - 1];
        let ok_after = !(last.is_ascii_alphanumeric() || last == b'_')
            || end >= bytes.len()
            || !(bytes[end].is_ascii_alphanumeric() || bytes[end] == b'_');
        if ok_before && ok_after {
            hits.push(start);
        }
        from = start + 1;
    }
    hits
}

/// Locates `#[cfg(test)]`- and `#[test]`-covered byte ranges in masked text.
fn find_test_regions(masked: &str) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    for marker in ["#[cfg(test)]", "#[test]"] {
        let mut from = 0;
        while let Some(pos) = masked[from..].find(marker) {
            let start = from + pos;
            let end = item_end(masked.as_bytes(), start + marker.len());
            regions.push((start, end));
            from = start + marker.len();
        }
    }
    regions.sort_unstable();
    regions
}

/// Byte offset of the end of the item starting after an attribute: the
/// matching `}` of its first brace block, or the first top-level `;`.
fn item_end(bytes: &[u8], mut i: usize) -> usize {
    // Skip further attributes (e.g. `#[test]\n#[should_panic]`), tracking
    // bracket depth so `)]` inside them doesn't confuse the item scan.
    let mut depth: i32 = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'{' if depth == 0 => break,
            b';' if depth == 0 => return i,
            b'(' | b'[' => depth += 1,
            b')' | b']' => depth -= 1,
            _ => {}
        }
        i += 1;
    }
    // Brace-match the body.
    let mut braces = 0usize;
    while i < bytes.len() {
        match bytes[i] {
            b'{' => braces += 1,
            b'}' => {
                braces -= 1;
                if braces == 0 {
                    return i;
                }
            }
            _ => {}
        }
        i += 1;
    }
    bytes.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_comments_and_strings() {
        let src = "let x = \"Instant::now()\"; // Instant::now()\nInstant::now();\n";
        let s = ScannedFile::scan(src);
        assert_eq!(s.masked.matches("Instant::now").count(), 1);
        assert_eq!(s.line_of(s.masked.find("Instant").unwrap()), 2);
    }

    #[test]
    fn masks_doc_comments_and_doctests() {
        let src = "/// ```\n/// x.unwrap();\n/// ```\nfn f() {}\n";
        let s = ScannedFile::scan(src);
        assert!(!s.masked.contains("unwrap"));
    }

    #[test]
    fn masks_nested_block_comments() {
        let src = "/* a /* b */ panic!( */ ok();";
        let s = ScannedFile::scan(src);
        assert!(!s.masked.contains("panic!("));
        assert!(s.masked.contains("ok()"));
    }

    #[test]
    fn masks_raw_strings() {
        let src = r##"let p = r#"thread_rng()"#; call();"##;
        let s = ScannedFile::scan(src);
        assert!(!s.masked.contains("thread_rng"));
        assert!(s.masked.contains("call()"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x } let c = 'x'; let nl = '\\n';";
        let s = ScannedFile::scan(src);
        assert!(s.masked.contains("'a str"), "lifetimes survive masking");
        assert!(!s.masked.contains("'x'"), "char literals are masked");
    }

    #[test]
    fn cfg_test_region_covers_module() {
        let src = "fn prod() { a(); }\n#[cfg(test)]\nmod tests {\n    fn t() { b(); }\n}\nfn prod2() {}\n";
        let s = ScannedFile::scan(src);
        let a = s.masked.find("a()").unwrap();
        let b = s.masked.find("b()").unwrap();
        let p2 = s.masked.find("prod2").unwrap();
        assert!(!s.in_test_region(a));
        assert!(s.in_test_region(b));
        assert!(!s.in_test_region(p2));
    }

    #[test]
    fn test_attr_region_covers_fn_only() {
        let src = "#[test]\nfn t() { x(); }\nfn prod() { y(); }\n";
        let s = ScannedFile::scan(src);
        assert!(s.in_test_region(s.masked.find("x()").unwrap()));
        assert!(!s.in_test_region(s.masked.find("y()").unwrap()));
    }

    #[test]
    fn cfg_test_region_covers_impl_block() {
        let src = "struct S;\n#[cfg(test)]\nimpl S {\n    fn helper(&self) { h(); }\n}\nfn prod() { p(); }\n";
        let s = ScannedFile::scan(src);
        assert!(s.in_test_region(s.masked.find("h()").unwrap()));
        assert!(!s.in_test_region(s.masked.find("p()").unwrap()));
    }

    #[test]
    fn comments_only_mask_keeps_literals() {
        let src = "let x = \"net.fault.a\"; // \"net.fault.b\"\n/* \"net.fault.c\" */ let y = r#\"net.fault.d\"#;";
        let code = mask_comments_only(src);
        assert!(code.contains("\"net.fault.a\""), "{code}");
        assert!(code.contains("net.fault.d"), "{code}");
        assert!(!code.contains("net.fault.b"), "{code}");
        assert!(!code.contains("net.fault.c"), "{code}");
        assert_eq!(code.len(), src.len(), "byte alignment preserved");
    }

    #[test]
    fn comments_only_mask_survives_comment_markers_inside_strings() {
        let src = "let url = \"http://x\"; still_code();";
        let code = mask_comments_only(src);
        assert!(code.contains("still_code()"), "{code}");
    }

    #[test]
    fn line_numbers_are_stable() {
        let src = "a\nbb\nccc\n";
        let s = ScannedFile::scan(src);
        assert_eq!(s.line_of(0), 1);
        assert_eq!(s.line_of(2), 2);
        assert_eq!(s.line_of(5), 3);
        assert_eq!(s.line_text(src, 3), "ccc");
    }
}
