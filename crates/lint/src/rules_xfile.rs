//! Pass 2: cross-file rules running against the [`WorkspaceModel`].
//!
//! These are the invariants a per-file scan cannot see — where concurrency
//! is allowed to live, which reductions stay order-stable when one world
//! becomes N shards, whether the metric namespace and the docs agree with
//! the code. Rules:
//!
//! * **C1 shard-safety** — nondeterministic concurrency primitives are
//!   confined to the sanctioned fan-out modules;
//! * **C2 float-order** — f64 accumulation in experiment/metrics code goes
//!   through the one ordered-reduction helper;
//! * **O2 metric hygiene** — metric-name constants are unique and alive,
//!   and metric-shaped literals resolve to declared constants;
//! * **R1 doc-sync** — `RULE_IDS` ↔ DESIGN.md rules table, and the
//!   experiment registry ↔ DESIGN.md per-experiment index.

use crate::lexer::find_token;
use crate::model::WorkspaceModel;
use crate::rules::{self, Diagnostic};
use std::collections::BTreeMap;

/// Modules sanctioned to use concurrency primitives: the deterministic
/// shard executor, which every parallel path (the multi-seed `runner`
/// pool, dataset resolution, `repro --shards`) routes through. World code
/// stays single-threaded; parallelism happens across whole deterministic
/// shards whose outputs merge byte-stably.
const C1_SANCTIONED: &[&str] = &["crates/sim/src/shard.rs"];

/// Concurrency primitives C1 looks for. Token-matched against masked
/// source, so comments and strings never trip it.
const C1_PATTERNS: &[&str] = &[
    "std::thread",
    "thread::spawn",
    "rayon",
    "crossbeam",
    "Mutex",
    "RwLock",
    "Condvar",
    "mpsc",
    "AtomicBool",
    "AtomicUsize",
    "AtomicIsize",
    "AtomicU8",
    "AtomicU16",
    "AtomicU32",
    "AtomicU64",
    "AtomicI8",
    "AtomicI16",
    "AtomicI32",
    "AtomicI64",
    "AtomicPtr",
];

/// Path prefixes whose f64 reductions feed reproduced numbers; rule C2
/// applies to their sources (plus every `metrics.rs` module).
const C2_SCOPE: &[&str] =
    &["crates/core/src/experiments/", "crates/analysis/src/", "crates/obs/src/"];

/// The one sanctioned ordered-reduction module (exempt from C2).
const C2_REDUCE_MODULE: &str = "crates/analysis/src/reduce.rs";

/// Where the experiment registry lives; R1 parses its `REGISTRY` array.
const REGISTRY_FILE: &str = "crates/core/src/harness.rs";

/// Where the per-module experiment implementations live.
const EXPERIMENTS_DIR: &str = "crates/core/src/experiments";

/// Runs every cross-file rule over the model. Diagnostics come back
/// deduplicated per (path, line, rule) and sorted.
pub fn check_workspace(model: &WorkspaceModel) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    check_c1(model, &mut out);
    check_c2(model, &mut out);
    check_o2(model, &mut out);
    check_r1(model, &mut out);
    out.sort_by(|a, b| (a.path.as_str(), a.line, a.rule).cmp(&(b.path.as_str(), b.line, b.rule)));
    out.dedup_by(|a, b| a.rule == b.rule && a.path == b.path && a.line == b.line);
    out
}

/// C1 — shard-safety: concurrency primitives outside the sanctioned
/// fan-out modules. ROADMAP item 1 multiplies worlds into deterministic
/// shards; a stray `Mutex` or spawned thread in world code makes event
/// order host-scheduled and silently breaks the byte-identical merge
/// contract the reproduced numbers rest on.
fn check_c1(model: &WorkspaceModel, out: &mut Vec<Diagnostic>) {
    for (rel, facts) in &model.files {
        if C1_SANCTIONED.contains(&rel.as_str()) || rel.starts_with("crates/lint/") {
            continue;
        }
        for pat in C1_PATTERNS {
            for offset in find_token(&facts.scanned.masked, pat) {
                if facts.scanned.in_test_region(offset) {
                    continue;
                }
                rules::push(
                    out,
                    &facts.scanned,
                    &facts.source,
                    rel,
                    "C1",
                    offset,
                    format!(
                        "concurrency primitive `{pat}` outside the sanctioned fan-out \
                         modules — world code must stay single-threaded-deterministic; \
                         parallelize across whole worlds via the `spamward_sim::shard` \
                         executor (`run_partitioned`/`run_sharded`)"
                    ),
                );
            }
        }
    }
}

/// C2 — float-order: f64 accumulation in experiment/metrics code outside
/// the ordered-reduction helper. f64 addition is not associative; when one
/// world becomes N merged shards, any reduction whose operand order is
/// incidental changes the reproduced numbers. `ordered_sum` is the one
/// place that pins the order.
fn check_c2(model: &WorkspaceModel, out: &mut Vec<Diagnostic>) {
    for (rel, facts) in &model.files {
        let in_scope = C2_SCOPE.iter().any(|p| rel.starts_with(p)) || rel.ends_with("/metrics.rs");
        if !in_scope || rel == C2_REDUCE_MODULE {
            continue;
        }
        let masked = &facts.scanned.masked;
        // `.sum()` reductions producing f64: turbofish `::<f64>`, or a
        // plain `.sum()` whose binding (before the call on the line) is
        // typed f64. `sum::<u64>() as f64` stays order-insensitive and is
        // not flagged.
        for offset in find_token(masked, ".sum") {
            if facts.scanned.in_test_region(offset) {
                continue;
            }
            let after = masked[offset + ".sum".len()..].trim_start();
            let is_f64 = if let Some(rest) = after.strip_prefix("::<") {
                rest.split('>').next().is_some_and(|ty| ty.contains("f64"))
            } else {
                let start = masked[..offset].rfind('\n').map(|p| p + 1).unwrap_or(0);
                masked[start..offset].contains("f64")
            };
            if is_f64 {
                rules::push(
                    out,
                    &facts.scanned,
                    &facts.source,
                    rel,
                    "C2",
                    offset,
                    "f64 `.sum()` reduction — route it through \
                     `spamward_analysis::reduce::ordered_sum` so the reduction order \
                     stays pinned when worlds are sharded"
                        .to_string(),
                );
            }
        }
        // `name += …` accumulators on identifiers declared as f64 (typed
        // `: f64`, or initialized from a float literal).
        for name in f64_idents(masked) {
            for offset in find_token(masked, &name) {
                if facts.scanned.in_test_region(offset) {
                    continue;
                }
                if masked[offset + name.len()..].trim_start().starts_with("+=") {
                    rules::push(
                        out,
                        &facts.scanned,
                        &facts.source,
                        rel,
                        "C2",
                        offset,
                        format!(
                            "f64 accumulator `{name} += …` — collect the addends and \
                             reduce with `spamward_analysis::reduce::ordered_sum` so the \
                             order stays pinned when worlds are sharded"
                        ),
                    );
                }
            }
        }
    }
}

/// Identifiers visibly of type f64 in `masked`: `name: f64` ascriptions
/// (let bindings, fields, params) and `let [mut] name = <float literal>`.
fn f64_idents(masked: &str) -> Vec<String> {
    let mut names = std::collections::BTreeSet::new();
    for offset in find_token(masked, "f64") {
        let before = masked[..offset].trim_end();
        if let Some(prefix) = before.strip_suffix(':') {
            if let Some(name) = trailing_ident(prefix.trim_end()) {
                names.insert(name);
            }
        }
    }
    for offset in find_token(masked, "let") {
        let after = masked[offset + "let".len()..].trim_start();
        let after = after.strip_prefix("mut ").unwrap_or(after).trim_start();
        let name: String =
            after.chars().take_while(|c| c.is_ascii_alphanumeric() || *c == '_').collect();
        if name.is_empty() {
            continue;
        }
        let rest = after[name.len()..].trim_start();
        let Some(value) = rest.strip_prefix('=') else { continue };
        let value = value.trim_start();
        // A float literal: leading digit and a decimal point (`0.0`,
        // `12.5f64`) or an explicit f64 suffix.
        let token: String = value
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '.' || *c == '_')
            .collect();
        if token.starts_with(|c: char| c.is_ascii_digit())
            && (token.contains('.') || token.ends_with("f64"))
        {
            names.insert(name);
        }
    }
    names.into_iter().collect()
}

/// The identifier ending at the end of `s`, if any.
fn trailing_ident(s: &str) -> Option<String> {
    let end = s.len();
    let start =
        s.rfind(|c: char| !c.is_ascii_alphanumeric() && c != '_').map(|i| i + 1).unwrap_or(0);
    if start == end {
        return None;
    }
    let ident = &s[start..end];
    if ident.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        return None;
    }
    Some(ident.to_string())
}

/// O2 — metric hygiene. Declarations come from every `metrics.rs` module
/// (pass 1's string-constant table); three checks:
///
/// 1. every declared metric name is unique workspace-wide;
/// 2. every declared constant is referenced by at least one collection or
///    recording site (dead names rot out of the golden snapshot silently);
/// 3. every metric-shaped string literal in a namespace the workspace
///    declares resolves to a declared constant (or extends a declared
///    dynamic-name prefix), so renames cannot leave stale names behind.
fn check_o2(model: &WorkspaceModel, out: &mut Vec<Diagnostic>) {
    // Pass over declarations: value → (path, line, name) in path order.
    let mut by_value: BTreeMap<&str, Vec<(&str, usize, &str)>> = BTreeMap::new();
    for (rel, facts) in &model.files {
        if !rel.ends_with("/metrics.rs") {
            continue;
        }
        for c in &facts.string_consts {
            by_value.entry(&c.value).or_default().push((rel, c.line, &c.name));
        }
    }

    // (1) duplicates and (2) dead constants.
    for (value, sites) in &by_value {
        if sites.len() > 1 {
            let (first_path, first_line, _) = sites[0];
            for &(rel, line, name) in &sites[1..] {
                push_at(
                    model,
                    out,
                    "O2",
                    rel,
                    line,
                    format!(
                        "duplicate metric name {value:?}: `{name}` collides with the \
                     declaration at {first_path}:{first_line} — metric names must be \
                     unique workspace-wide"
                    ),
                );
            }
        }
        for &(rel, line, name) in sites.iter() {
            if model.ident_uses_excluding(name, rel, line) == 0 {
                push_at(
                    model,
                    out,
                    "O2",
                    rel,
                    line,
                    format!(
                        "dead metric constant `{name}` ({value:?}) — no collect_*/recording \
                     site references it; wire it up or remove it"
                    ),
                );
            }
        }
    }

    // (3) unresolved metric-shaped literals.
    let declared: std::collections::BTreeSet<&str> = by_value.keys().copied().collect();
    let prefixes2: std::collections::BTreeSet<String> = declared
        .iter()
        .filter_map(|v| {
            let mut segs = v.trim_end_matches('.').split('.');
            match (segs.next(), segs.next()) {
                (Some(a), Some(b)) => Some(format!("{a}.{b}")),
                _ => None,
            }
        })
        .collect();
    let dynamic_bases: Vec<&str> = declared.iter().filter(|v| v.ends_with('.')).copied().collect();
    let roots: std::collections::BTreeSet<&str> =
        declared.iter().filter_map(|v| v.split('.').next()).collect();

    for (rel, facts) in &model.files {
        if rel.ends_with("/metrics.rs")
            || rel.starts_with("crates/obs/")
            || rel.starts_with("crates/lint/")
            || rel.starts_with("tests/")
            || rel.contains("/tests/")
        {
            continue;
        }
        for (offset, lit) in string_literals(&facts.code) {
            if facts.scanned.in_test_region(offset) {
                continue;
            }
            if !is_metric_shaped(&lit) {
                continue;
            }
            if declared.contains(lit.as_str()) {
                continue;
            }
            // `DetRng::fork("…")` labels name RNG streams, not metrics —
            // a separate dotted namespace outside O2's contract.
            if facts.code[..offset].trim_end().ends_with("fork(") {
                continue;
            }
            if dynamic_bases.iter().any(|b| lit.starts_with(b)) {
                continue;
            }
            let mut segs = lit.split('.');
            let prefix2 = match (segs.next(), segs.next()) {
                (Some(a), Some(b)) => format!("{a}.{b}"),
                _ => continue,
            };
            // Only namespaces the workspace actually declares are O2's
            // business: hostnames and file names share the dot shape but
            // not a declared `root.family` prefix. Two-segment literals are
            // additionally checked against the declared roots (a truncated
            // or misspelled family cannot hide), while deeper literals need
            // the full `root.family` match so multi-label hostnames under a
            // short root never false-positive.
            let root = lit.split('.').next().unwrap_or("");
            let owned = prefixes2.contains(&prefix2)
                || (lit.split('.').count() == 2 && roots.contains(root));
            if owned {
                push_at(
                    model,
                    out,
                    "O2",
                    rel,
                    facts.scanned.line_of(offset),
                    format!(
                        "unresolved metric literal {lit:?} — no `metrics.rs` module declares \
                     this name; use the declared constant (or declare it) so the \
                     observability contract stays greppable"
                    ),
                );
            }
        }
    }
}

/// Extracts plain `"…"` literal contents (with their byte offsets) from the
/// comments-only view.
fn string_literals(code: &str) -> Vec<(usize, String)> {
    let bytes = code.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'"' {
            let start = i;
            i += 1;
            let mut value = String::new();
            let mut closed = false;
            while i < bytes.len() {
                match bytes[i] {
                    b'\\' => {
                        i += 2;
                    }
                    b'"' => {
                        closed = true;
                        i += 1;
                        break;
                    }
                    b => {
                        if b.is_ascii() {
                            value.push(b as char);
                        }
                        i += 1;
                    }
                }
            }
            if closed {
                out.push((start, value));
            }
        } else {
            i += 1;
        }
    }
    out
}

/// Whether `lit` has the dotted-metric shape: two or more non-empty
/// `[a-z0-9_]` segments, starting with a letter.
fn is_metric_shaped(lit: &str) -> bool {
    let segs: Vec<&str> = lit.split('.').collect();
    segs.len() >= 2
        && lit.starts_with(|c: char| c.is_ascii_lowercase())
        && segs.iter().all(|s| {
            !s.is_empty()
                && s.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
        })
}

/// R1 — doc-sync. The linter is the single checker for catalog ↔ docs
/// agreement: `RULE_IDS` ↔ the DESIGN.md rules table, and the experiment
/// `REGISTRY` (parsed from `crates/core/src/harness.rs`, each entry
/// resolved through its module's `impl Experiment` block to the id the CLI
/// prints) ↔ the DESIGN.md per-experiment index. Checks only run when the
/// artifact they read exists, so scratch trees stay lintable.
fn check_r1(model: &WorkspaceModel, out: &mut Vec<Diagnostic>) {
    if let Some(design) = &model.design_md {
        check_rules_table(design, out);
        if let Some(ids) = registry_ids(model, out) {
            check_experiment_index(design, &ids, out);
        }
    } else if model.files.contains_key(REGISTRY_FILE) {
        out.push(doc_diag(
            1,
            "DESIGN.md is missing but the experiment registry exists — the \
             per-experiment index documents every registry entry"
                .to_string(),
            String::new(),
        ));
    }
}

/// DESIGN.md rules-table rows must equal `RULE_IDS`, in order.
fn check_rules_table(design: &str, out: &mut Vec<Diagnostic>) {
    const SECTION: &str = "## Determinism & panic-safety rules";
    let Some(at) = design.find(SECTION) else { return };
    let line = design[..at].lines().count() + 1;
    let section = design[at..].split("\n## ").next().unwrap_or("");
    let mut rows = Vec::new();
    for row in section.lines() {
        if let Some(rest) = row.strip_prefix("| `") {
            if let Some(id) = rest.split('`').next() {
                rows.push(id.to_owned());
            }
        }
    }
    let expected: Vec<String> = rules::RULE_IDS.iter().map(|r| r.to_string()).collect();
    if rows != expected {
        out.push(doc_diag(
            line,
            format!(
                "DESIGN.md rules table is out of sync with RULE_IDS: table lists \
                 [{}], linter enforces [{}]",
                rows.join(", "),
                expected.join(", ")
            ),
            SECTION.to_string(),
        ));
    }
}

/// Parses the `REGISTRY` array and resolves each `&module::Type` entry to
/// the experiment id its `impl Experiment` block returns from `fn id`.
fn registry_ids(model: &WorkspaceModel, out: &mut Vec<Diagnostic>) -> Option<Vec<String>> {
    let harness = model.files.get(REGISTRY_FILE)?;
    let masked = &harness.scanned.masked;
    let reg_at = find_token(masked, "REGISTRY")
        .into_iter()
        .find(|&o| masked[o + "REGISTRY".len()..].trim_start().starts_with(':'))?;
    // Skip past the type annotation (`: [&dyn Experiment; N] =`) to the
    // initializer's bracket.
    let eq = reg_at + masked[reg_at..].find('=')?;
    let open = eq + masked[eq..].find('[')?;
    let close = open + masked[open..].find(']')?;
    let mut ids = Vec::new();
    for entry in masked[open + 1..close].split(',') {
        let entry = entry.trim();
        let Some(path) = entry.strip_prefix('&') else { continue };
        let mut segs = path.split("::").map(str::trim);
        let (Some(module), Some(ty)) = (segs.next(), segs.next()) else { continue };
        match experiment_id(model, module, ty) {
            Some(id) => ids.push(id),
            None => out.push(Diagnostic {
                rule: "R1",
                path: REGISTRY_FILE.to_string(),
                line: harness.scanned.line_of(open),
                line_text: entry.to_string(),
                message: format!(
                    "registry entry `&{module}::{ty}` does not resolve: expected \
                     `impl Experiment for {ty}` with a literal `fn id` in \
                     {EXPERIMENTS_DIR}/{module}.rs"
                ),
            }),
        }
    }
    Some(ids)
}

/// The id literal returned by `fn id` inside `impl Experiment for Type` in
/// the module's source file.
fn experiment_id(model: &WorkspaceModel, module: &str, ty: &str) -> Option<String> {
    let rel = format!("{EXPERIMENTS_DIR}/{module}.rs");
    let facts = model.files.get(&rel)?;
    let masked = &facts.scanned.masked;
    let needle = format!("impl Experiment for {ty}");
    let at = masked.find(&needle)?;
    let body_open = at + masked[at..].find('{')?;
    let body_close = match_brace(masked.as_bytes(), body_open)?;
    let id_at = body_open + masked[body_open..body_close].find("fn id")?;
    // The returned literal, read from the literal-preserving view.
    let quote = id_at + facts.code[id_at..].find('"')?;
    let end = quote + 1 + facts.code[quote + 1..].find('"')?;
    Some(facts.code[quote + 1..end].to_string())
}

/// Byte offset of the `}` matching the `{` at `open`.
fn match_brace(bytes: &[u8], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (i, &b) in bytes.iter().enumerate().skip(open) {
        match b {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
    }
    None
}

/// DESIGN.md per-experiment index rows must equal the registry ids, in
/// order.
fn check_experiment_index(design: &str, registry: &[String], out: &mut Vec<Diagnostic>) {
    const SECTION: &str = "## Per-experiment index";
    let Some(at) = design.find(SECTION) else {
        out.push(doc_diag(
            1,
            format!(
                "DESIGN.md has no {SECTION:?} section but the registry defines {} \
                 experiments",
                registry.len()
            ),
            String::new(),
        ));
        return;
    };
    let line = design[..at].lines().count() + 1;
    let section = design[at..].split("\n## ").next().unwrap_or("");
    let mut rows = Vec::new();
    for row in section.lines() {
        if let Some(rest) = row.strip_prefix("| `") {
            if let Some(id) = rest.split('`').next() {
                rows.push(id.to_owned());
            }
        }
    }
    if rows != registry {
        out.push(doc_diag(
            line,
            format!(
                "DESIGN.md per-experiment index is out of sync with the registry: \
                 index lists [{}], registry resolves to [{}]",
                rows.join(", "),
                registry.join(", ")
            ),
            SECTION.to_string(),
        ));
    }
}

/// A diagnostic anchored in DESIGN.md.
fn doc_diag(line: usize, message: String, line_text: String) -> Diagnostic {
    Diagnostic { rule: "R1", path: "DESIGN.md".to_string(), line, line_text, message }
}

/// A diagnostic at a known (path, line) in a model file.
fn push_at(
    model: &WorkspaceModel,
    out: &mut Vec<Diagnostic>,
    rule: &'static str,
    rel: &str,
    line: usize,
    message: String,
) {
    let line_text = model
        .files
        .get(rel)
        .map(|f| f.scanned.line_text(&f.source, line).trim().to_string())
        .unwrap_or_default();
    out.push(Diagnostic { rule, path: rel.to_string(), line, line_text, message });
}
