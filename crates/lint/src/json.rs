//! Machine-readable report rendering for `--json`.
//!
//! The schema is deliberately tiny and hand-rendered (the offline build has
//! no serde), frozen by `crates/lint/tests/lint_cli.rs`:
//!
//! ```json
//! {
//!   "version": 1,
//!   "clean": false,
//!   "files_scanned": 120,
//!   "suppressed": 8,
//!   "diagnostics": [
//!     {"rule": "C1", "path": "crates/mta/src/send.rs", "line": 12,
//!      "message": "…", "line_text": "…"}
//!   ]
//! }
//! ```
//!
//! Ordering is stable: diagnostics are sorted by `(path, line, rule)`
//! before the report reaches this module, keys are emitted in a fixed
//! order, and the output ends with a single `\n`. CI archives the output
//! as `lint-report.json`.

use crate::LintReport;

/// Schema version; bump when keys change shape.
pub const SCHEMA_VERSION: u32 = 1;

/// Renders the report as the stable JSON document described above.
pub fn render(report: &LintReport) -> String {
    let mut out = String::with_capacity(256 + report.diagnostics.len() * 160);
    out.push_str("{\n");
    out.push_str(&format!("  \"version\": {SCHEMA_VERSION},\n"));
    out.push_str(&format!("  \"clean\": {},\n", report.is_clean()));
    out.push_str(&format!("  \"files_scanned\": {},\n", report.files_scanned));
    out.push_str(&format!("  \"suppressed\": {},\n", report.suppressed.len()));
    out.push_str("  \"diagnostics\": [");
    for (i, d) in report.diagnostics.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str(&format!(
            "    {{\"rule\": {}, \"path\": {}, \"line\": {}, \"message\": {}, \"line_text\": {}}}",
            escape(d.rule),
            escape(&d.path),
            d.line,
            escape(&d.message),
            escape(&d.line_text)
        ));
    }
    if !report.diagnostics.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

/// JSON string escaping (quotes, backslash, control characters).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Diagnostic;

    #[test]
    fn renders_stable_document() {
        let mut report = LintReport { files_scanned: 2, ..LintReport::default() };
        report.diagnostics.push(Diagnostic {
            rule: "C1",
            path: "crates/mta/src/send.rs".into(),
            line: 3,
            line_text: "use std::sync::Mutex;".into(),
            message: "concurrency \"primitive\"".into(),
        });
        let doc = render(&report);
        assert!(doc.starts_with("{\n  \"version\": 1,\n  \"clean\": false,\n"));
        assert!(doc.contains("\"rule\": \"C1\""));
        assert!(doc.contains("\\\"primitive\\\""));
        assert!(doc.ends_with("]\n}\n"));
        // Deterministic: same input, same bytes.
        assert_eq!(doc, render(&report));
    }

    #[test]
    fn empty_report_is_clean_with_empty_array() {
        let doc = render(&LintReport::default());
        assert!(doc.contains("\"clean\": true"));
        assert!(doc.contains("\"diagnostics\": []"));
    }

    #[test]
    fn escapes_control_characters() {
        assert_eq!(escape("a\nb\t\u{1}"), "\"a\\nb\\t\\u0001\"");
    }
}
