//! Pass 1 of the two-pass analyzer: the workspace semantic model.
//!
//! The per-file rules ([`crate::rules`]) see one file at a time; the
//! cross-file rules ([`crate::rules_xfile`]) need the workspace-wide facts
//! the sharded-world architecture depends on. This module builds that
//! index in a single pass over the already-read sources:
//!
//! * per-file facts — out-of-line `mod` declarations (the module graph),
//!   `use` paths, `const NAME: &str = "…"` string constants, function
//!   names, plus the scanned views of the source;
//! * per-crate facts — package name and dependency edges parsed from each
//!   member `Cargo.toml`;
//! * workspace docs — `DESIGN.md`, for the R1 doc-sync rule.
//!
//! Everything is keyed by repo-relative `/`-separated paths in `BTreeMap`s,
//! so iteration (and therefore diagnostic order) is deterministic — the
//! same discipline the linter enforces on the simulator.

use crate::lexer::{self, ScannedFile};
use std::collections::{BTreeMap, BTreeSet};

/// One out-of-line `mod name;` declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModDecl {
    /// Declared module name.
    pub name: String,
    /// 1-based line of the declaration.
    pub line: usize,
}

/// One `const NAME: &str = "value";` (optionally `pub`) declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StringConst {
    /// The constant's identifier.
    pub name: String,
    /// The literal string value.
    pub value: String,
    /// 1-based line of the declaration.
    pub line: usize,
}

/// One `fn name` item.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnDecl {
    /// The function's identifier.
    pub name: String,
    /// 1-based line of the declaration.
    pub line: usize,
    /// Whether the declaration sits in a `#[cfg(test)]`/`#[test]` region.
    pub in_test: bool,
}

/// Facts extracted from one source file.
#[derive(Debug)]
pub struct FileFacts {
    /// The raw source.
    pub source: String,
    /// The masked/line-indexed scan of the source.
    pub scanned: ScannedFile,
    /// The source with comments blanked but string literals kept,
    /// byte-aligned — the view for rules that must see quoted names.
    pub code: String,
    /// Out-of-line `mod` declarations, in file order.
    pub mods: Vec<ModDecl>,
    /// `use` paths (whitespace-collapsed), in file order.
    pub uses: Vec<String>,
    /// `const NAME: &str = "…"` declarations, in file order.
    pub string_consts: Vec<StringConst>,
    /// `fn` items, in file order.
    pub fns: Vec<FnDecl>,
}

/// Facts extracted from one member `Cargo.toml`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrateInfo {
    /// `[package] name`.
    pub package: String,
    /// Crate directory, repo-relative (`"crates/mta"`; `""` for the root
    /// package).
    pub dir: String,
    /// Names under `[dependencies]`/`[dev-dependencies]` (all of them —
    /// filter with [`WorkspaceModel::internal_deps`] for workspace edges).
    pub deps: BTreeSet<String>,
}

/// The workspace-wide index pass 2 runs against.
#[derive(Debug, Default)]
pub struct WorkspaceModel {
    /// Per-file facts, keyed by repo-relative path.
    pub files: BTreeMap<String, FileFacts>,
    /// Per-crate facts, keyed by crate directory (`""` = root package).
    pub crates: BTreeMap<String, CrateInfo>,
    /// `DESIGN.md` contents, when present at the root.
    pub design_md: Option<String>,
}

impl WorkspaceModel {
    /// Builds the model from in-memory inputs: `(rel_path, source)` pairs
    /// for `.rs` files, `(crate_dir, manifest_text)` pairs for member
    /// `Cargo.toml`s, and the root `DESIGN.md` if any.
    ///
    /// Pure — no filesystem access — so tests can model synthetic
    /// workspaces directly.
    pub fn from_sources(
        sources: Vec<(String, String)>,
        manifests: Vec<(String, String)>,
        design_md: Option<String>,
    ) -> WorkspaceModel {
        let mut files = BTreeMap::new();
        for (rel, source) in sources {
            let facts = FileFacts::extract(source);
            files.insert(rel, facts);
        }
        let mut crates = BTreeMap::new();
        for (dir, text) in manifests {
            if let Some(info) = parse_manifest(&dir, &text) {
                crates.insert(dir, info);
            }
        }
        WorkspaceModel { files, crates, design_md }
    }

    /// The crate directory owning `rel_path` (`"crates/mta"` for
    /// `crates/mta/src/send.rs`; `""` — the root package — for `src/`,
    /// `tests/` and `examples/` files).
    pub fn crate_dir_of(rel_path: &str) -> String {
        let mut parts = rel_path.split('/');
        if parts.next() == Some("crates") {
            if let Some(name) = parts.next() {
                return format!("crates/{name}");
            }
        }
        String::new()
    }

    /// Workspace-internal dependency edges of the crate at `dir`: the
    /// subset of its declared deps whose package name belongs to another
    /// member of this model.
    pub fn internal_deps(&self, dir: &str) -> BTreeSet<String> {
        let packages: BTreeSet<&str> = self.crates.values().map(|c| c.package.as_str()).collect();
        match self.crates.get(dir) {
            Some(info) => {
                info.deps.iter().filter(|d| packages.contains(d.as_str())).cloned().collect()
            }
            None => BTreeSet::new(),
        }
    }

    /// Resolves `rel_path`'s out-of-line `mod` declarations to the files
    /// they name, returning `(module name, resolved path)` edges. Modules
    /// whose file is not in the model (e.g. generated or excluded) are
    /// omitted.
    pub fn module_edges(&self, rel_path: &str) -> Vec<(String, String)> {
        let Some(facts) = self.files.get(rel_path) else { return Vec::new() };
        let (dir, file) = match rel_path.rsplit_once('/') {
            Some((d, f)) => (d, f),
            None => ("", rel_path),
        };
        // lib.rs / main.rs / mod.rs own their directory; foo.rs owns foo/.
        let base = if matches!(file, "lib.rs" | "main.rs" | "mod.rs") {
            dir.to_string()
        } else {
            let stem = file.strip_suffix(".rs").unwrap_or(file);
            if dir.is_empty() {
                stem.to_string()
            } else {
                format!("{dir}/{stem}")
            }
        };
        let mut edges = Vec::new();
        for m in &facts.mods {
            let flat = if base.is_empty() {
                format!("{}.rs", m.name)
            } else {
                format!("{base}/{}.rs", m.name)
            };
            let nested = if base.is_empty() {
                format!("{}/mod.rs", m.name)
            } else {
                format!("{base}/{}/mod.rs", m.name)
            };
            if self.files.contains_key(&flat) {
                edges.push((m.name.clone(), flat));
            } else if self.files.contains_key(&nested) {
                edges.push((m.name.clone(), nested));
            }
        }
        edges
    }

    /// Counts boundary-checked uses of identifier `name` across every file,
    /// excluding occurrences on `(skip_path, skip_line)` (the declaration
    /// itself). Searches the comments-only view so `format!("{NAME}.…")`
    /// interpolations count as uses; comments never do.
    pub fn ident_uses_excluding(&self, name: &str, skip_path: &str, skip_line: usize) -> usize {
        let mut uses = 0;
        for (rel, facts) in &self.files {
            for offset in lexer::find_token(&facts.code, name) {
                if rel == skip_path && facts.scanned.line_of(offset) == skip_line {
                    continue;
                }
                uses += 1;
            }
        }
        uses
    }
}

impl FileFacts {
    /// Extracts all facts from one source file.
    pub fn extract(source: String) -> FileFacts {
        let scanned = ScannedFile::scan(&source);
        let code = lexer::mask_comments_only(&source);
        let mods = extract_mods(&scanned);
        let uses = extract_uses(&scanned.masked);
        let string_consts = extract_string_consts(&scanned, &code);
        let fns = extract_fns(&scanned);
        FileFacts { source, scanned, code, mods, uses, string_consts, fns }
    }
}

/// Out-of-line `mod name;` declarations (`pub`/`pub(crate)` included).
fn extract_mods(scanned: &ScannedFile) -> Vec<ModDecl> {
    let mut out = Vec::new();
    for offset in lexer::find_token(&scanned.masked, "mod") {
        let after = &scanned.masked[offset + "mod".len()..];
        let name: String = after
            .trim_start()
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
            .collect();
        if name.is_empty() {
            continue;
        }
        // Only out-of-line declarations (`mod x;`) are module-graph edges;
        // `mod x { .. }` stays inside this file.
        let rest = after.trim_start()[name.len()..].trim_start();
        if !rest.starts_with(';') {
            continue;
        }
        // `mod` must open the item: the preceding code on its line may only
        // be visibility syntax, which keeps expression text from
        // registering as a declaration.
        let start = scanned.masked[..offset].rfind('\n').map(|p| p + 1).unwrap_or(0);
        let prefix = scanned.masked[start..offset].trim();
        if !(prefix.is_empty() || prefix == "pub" || prefix.ends_with(')')) {
            continue;
        }
        out.push(ModDecl { name, line: scanned.line_of(offset) });
    }
    out
}

/// `use …;` paths with whitespace collapsed.
fn extract_uses(masked: &str) -> Vec<String> {
    let mut out = Vec::new();
    for offset in lexer::find_token(masked, "use") {
        // Item context only: start of line (after trivia), not `.use`.
        let start = masked[..offset].rfind('\n').map(|p| p + 1).unwrap_or(0);
        let prefix = masked[start..offset].trim();
        if !(prefix.is_empty() || prefix == "pub" || prefix.ends_with(')')) {
            continue;
        }
        let rest = &masked[offset + "use".len()..];
        if !rest.starts_with(|c: char| c.is_whitespace()) {
            continue;
        }
        let Some(end) = rest.find(';') else { continue };
        let path: String = rest[..end].split_whitespace().collect::<Vec<_>>().join(" ");
        if !path.is_empty() {
            out.push(path);
        }
    }
    out
}

/// `const NAME: &str = "value";` declarations. The type text must name
/// `str`; the value is read from the comments-only view so the literal
/// bytes are still present.
fn extract_string_consts(scanned: &ScannedFile, code: &str) -> Vec<StringConst> {
    let masked = &scanned.masked;
    let mut out = Vec::new();
    for offset in lexer::find_token(masked, "const") {
        let after = &masked[offset + "const".len()..];
        let name: String = after
            .trim_start()
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
            .collect();
        if name.is_empty() {
            continue;
        }
        let after_name = after.trim_start()[name.len()..].trim_start();
        let Some(ty_and_rest) = after_name.strip_prefix(':') else { continue };
        let Some(eq) = ty_and_rest.find('=') else { continue };
        let ty = &ty_and_rest[..eq];
        if !ty.contains("str") {
            continue;
        }
        // Byte offset of the value expression, in the aligned views.
        let value_at = offset
            + "const".len()
            + (after.len() - after_name.len())
            + 1 // the ':'
            + eq
            + 1; // the '='
        let Some(value) = read_string_literal(&code[value_at..]) else { continue };
        out.push(StringConst { name, value, line: scanned.line_of(offset) });
    }
    out
}

/// Reads the first plain `"…"` literal in `code` (which keeps literals),
/// stopping at `;`. Raw strings and non-literal initializers yield `None`.
fn read_string_literal(code: &str) -> Option<String> {
    let mut chars = code.char_indices();
    let mut start = None;
    for (i, c) in chars.by_ref() {
        match c {
            '"' => {
                start = Some(i + 1);
                break;
            }
            ';' => return None,
            _ => {}
        }
    }
    start?;
    let mut out = String::new();
    let mut escaped = false;
    for (_, c) in chars {
        if escaped {
            match c {
                'n' => out.push('\n'),
                't' => out.push('\t'),
                other => out.push(other),
            }
            escaped = false;
        } else {
            match c {
                '\\' => escaped = true,
                '"' => return Some(out),
                other => out.push(other),
            }
        }
    }
    None
}

/// `fn name` items with their test-region flag.
fn extract_fns(scanned: &ScannedFile) -> Vec<FnDecl> {
    let mut out = Vec::new();
    for offset in lexer::find_token(&scanned.masked, "fn") {
        let after = &scanned.masked[offset + "fn".len()..];
        if !after.starts_with(|c: char| c.is_whitespace()) {
            continue;
        }
        let name: String = after
            .trim_start()
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
            .collect();
        if name.is_empty() {
            continue;
        }
        out.push(FnDecl {
            name,
            line: scanned.line_of(offset),
            in_test: scanned.in_test_region(offset),
        });
    }
    out
}

/// Parses the slice of `Cargo.toml` the model needs: the `[package]` name
/// and the `[dependencies]`/`[dev-dependencies]` keys. Returns `None` when
/// there is no `[package]` section (e.g. a virtual manifest).
fn parse_manifest(dir: &str, text: &str) -> Option<CrateInfo> {
    let mut package = None;
    let mut deps = BTreeSet::new();
    let mut section = String::new();
    for raw in text.lines() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line.starts_with('[') {
            section = line.trim_matches(['[', ']']).to_string();
            continue;
        }
        let Some((key, value)) = line.split_once('=') else { continue };
        let key = key.trim();
        match section.as_str() {
            "package" if key == "name" => {
                package = Some(value.trim().trim_matches('"').to_string());
            }
            "dependencies" | "dev-dependencies" => {
                deps.insert(key.to_string());
            }
            _ => {}
        }
    }
    Some(CrateInfo { package: package?, dir: dir.to_string(), deps })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(files: &[(&str, &str)]) -> WorkspaceModel {
        WorkspaceModel::from_sources(
            files.iter().map(|(p, s)| (p.to_string(), s.to_string())).collect(),
            Vec::new(),
            None,
        )
    }

    #[test]
    fn extracts_mods_uses_consts_and_fns() {
        let src = "pub mod metrics;\nmod helper;\nmod inline { pub fn g() {} }\n\
                   use crate::metrics::NAME;\n\
                   pub const NAME: &str = \"mta.x.y\";\n\
                   const PRIVATE: &'static str = \"a.b\";\n\
                   const COUNT: usize = 3;\n\
                   pub fn collect_all() {}\n\
                   #[cfg(test)]\nmod tests { fn t() {} }\n";
        let m = model(&[("crates/foo/src/lib.rs", src)]);
        let facts = &m.files["crates/foo/src/lib.rs"];
        let mods: Vec<&str> = facts.mods.iter().map(|d| d.name.as_str()).collect();
        assert_eq!(mods, vec!["metrics", "helper"], "inline modules are not graph edges");
        assert_eq!(facts.uses, vec!["crate::metrics::NAME"]);
        let consts: Vec<(&str, &str)> =
            facts.string_consts.iter().map(|c| (c.name.as_str(), c.value.as_str())).collect();
        assert_eq!(consts, vec![("NAME", "mta.x.y"), ("PRIVATE", "a.b")]);
        let fns: Vec<(&str, bool)> =
            facts.fns.iter().map(|f| (f.name.as_str(), f.in_test)).collect();
        assert_eq!(fns, vec![("g", false), ("collect_all", false), ("t", true)]);
    }

    #[test]
    fn module_edges_resolve_flat_and_nested_files() {
        let m = model(&[
            ("crates/foo/src/lib.rs", "pub mod metrics;\npub mod deep;\nmod missing;\n"),
            ("crates/foo/src/metrics.rs", ""),
            ("crates/foo/src/deep/mod.rs", "pub mod inner;\n"),
            ("crates/foo/src/deep/inner.rs", ""),
        ]);
        assert_eq!(
            m.module_edges("crates/foo/src/lib.rs"),
            vec![
                ("metrics".to_string(), "crates/foo/src/metrics.rs".to_string()),
                ("deep".to_string(), "crates/foo/src/deep/mod.rs".to_string()),
            ]
        );
        assert_eq!(
            m.module_edges("crates/foo/src/deep/mod.rs"),
            vec![("inner".to_string(), "crates/foo/src/deep/inner.rs".to_string())]
        );
    }

    #[test]
    fn manifests_yield_internal_dep_edges() {
        let m = WorkspaceModel::from_sources(
            Vec::new(),
            vec![
                (
                    "crates/a".to_string(),
                    "[package]\nname = \"spamward-a\"\n[dependencies]\nspamward-b = { workspace = true }\nserde = { workspace = true }\n".to_string(),
                ),
                (
                    "crates/b".to_string(),
                    "[package]\nname = \"spamward-b\"\n".to_string(),
                ),
            ],
            None,
        );
        assert_eq!(m.crates["crates/a"].package, "spamward-a");
        let internal: Vec<String> = m.internal_deps("crates/a").into_iter().collect();
        assert_eq!(internal, vec!["spamward-b"], "serde is not a workspace member");
    }

    #[test]
    fn crate_dir_mapping() {
        assert_eq!(WorkspaceModel::crate_dir_of("crates/mta/src/send.rs"), "crates/mta");
        assert_eq!(WorkspaceModel::crate_dir_of("src/lib.rs"), "");
        assert_eq!(WorkspaceModel::crate_dir_of("tests/determinism.rs"), "");
    }

    #[test]
    fn ident_use_counting_skips_the_declaration() {
        let m = model(&[
            ("crates/foo/src/metrics.rs", "pub const RECV: &str = \"foo.recv\";\npub fn collect(r: &mut R) { r.counter(RECV); }\n"),
            ("crates/foo/src/other.rs", "use crate::metrics::RECV;\nfn f(r: &mut R) { r.counter(RECV); }\n"),
        ]);
        // Declaration line skipped; the collect use + the import + the call
        // site in other.rs remain.
        assert_eq!(m.ident_uses_excluding("RECV", "crates/foo/src/metrics.rs", 1), 3);
        assert_eq!(m.ident_uses_excluding("NEVER_USED", "crates/foo/src/metrics.rs", 1), 0);
    }

    #[test]
    fn escaped_and_missing_values_handled() {
        let m = model(&[(
            "crates/foo/src/x.rs",
            "const A: &str = \"with \\\"quote\\\"\";\nconst B: &str = concat!(\"a\", \"b\");\nconst C: &str = OTHER;\n",
        )]);
        let consts = &m.files["crates/foo/src/x.rs"].string_consts;
        assert_eq!(consts[0].value, "with \"quote\"");
        // B's first literal is inside concat! — still a string value, fine.
        assert_eq!(consts[1].value, "a");
        // C forwards another constant: no literal before the semicolon.
        assert_eq!(consts.len(), 2);
    }
}
