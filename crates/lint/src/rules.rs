//! The rule catalog: determinism (D1–D3), panic-safety (P1–P2),
//! observability hygiene (O1) and fault-injection hygiene (F1).
//!
//! Every rule here encodes a workspace-specific invariant the stock
//! toolchain cannot express. The catalog is documented for contributors in
//! `DESIGN.md` ("Determinism & panic-safety rules"); keep the two in sync.

use crate::lexer::{find_token, ScannedFile};
use std::collections::BTreeSet;
use std::fmt;

/// All rule identifiers, in report order. D/P/O1/S/F rules are per-file
/// ([`check_file`]); C1/C2/O2/R1 are cross-file rules running against the
/// workspace model ([`crate::rules_xfile`]); A1 is synthesized by the
/// driver for stale allowlist entries.
pub const RULE_IDS: &[&str] =
    &["D1", "D2", "D3", "P1", "P2", "O1", "S1", "F1", "C1", "C2", "O2", "R1", "A1"];

/// One paragraph per rule for `spamward-lint --explain RULE`: what the rule
/// forbids, why the invariant matters, and what to do instead.
pub fn explain(rule: &str) -> Option<&'static str> {
    Some(match rule {
        "D1" => {
            "D1 — wall-clock reads. Every reproduced number must be a pure function of \
             the seed; `Instant::now()`/`SystemTime::now()`/chrono silently couple results \
             to the host. Take time from the sim scheduler, or inject \
             `spamward_sim::wall::WallClock` — the only sanctioned host-clock module is \
             crates/sim/src/wall.rs."
        }
        "D2" => {
            "D2 — unseeded randomness. `thread_rng`, `rand::random`, `from_entropy`, \
             `OsRng` and `getrandom` draw from ambient entropy; every random draw must \
             flow through `spamward_sim::DetRng` (seed + fork label) so runs replay \
             bit-for-bit."
        }
        "D3" => {
            "D3 — hash-order iteration. `HashMap`/`HashSet` iteration order varies run to \
             run; in crates feeding the event loop or analysis output that nondeterminism \
             reaches the reports. Use `BTreeMap`/`BTreeSet`, or collect and sort before \
             iterating."
        }
        "P1" => {
            "P1 — panics on the protocol path. A panic mid-conversation tears down the \
             SMTP session (and, over TCP, the connection). Protocol-path crates (smtp, \
             mta, greylist, dns) return typed errors instead of `unwrap`/`expect`/`panic!`; \
             proven-unreachable cases need a justified lint-allow.toml entry."
        }
        "P2" => {
            "P2 — inline SMTP reply codes. 4xx-retry vs 5xx-reject is the whole \
             greylisting mechanism; codes come from `spamward_smtp::reply::codes` so grep \
             and the type system see every use."
        }
        "O1" => {
            "O1 — metric/trace name literals at recording sites. Registry names, trace \
             categories, time-series names (`TimeSeries::record_point`) and timeline \
             event names (`Timeline::record_event`) are the observability contract; \
             each crate binds them as constants in its `metrics.rs`/`obs.rs` module so \
             the namespace stays greppable and typo-proof."
        }
        "S1" => {
            "S1 — hand-rolled virtual-time ordering. A `BinaryHeap` in a file handling \
             `SimTime`, or a sort keyed on attempt/arrival/due timestamps, is a duplicate \
             event queue; schedule through `spamward_sim::Simulation` (or an actor on top \
             of it). Only crates/sim owns a time-ordered queue."
        }
        "F1" => {
            "F1 — fault-injection literals outside the chaos catalog. Hard-coded fault \
             probabilities and `net.fault.*`/`mta.breaker.*`/`mta.crash.*`/\
             `greylist.degraded.*`/`greylist.recovery.*` name literals fork the fault \
             model; probabilities belong in a `FaultSpec` inside `spamward_net::faults`, \
             names in the owning crate's `metrics.rs`."
        }
        "C1" => {
            "C1 — shard-unsafe concurrency. Threads, rayon, locks, atomics and channels \
             in world code make event order depend on the host scheduler, which breaks \
             the byte-identical shard-merge contract. Concurrency is confined to the \
             sanctioned fan-out module (crates/sim/src/shard.rs, whose \
             run_partitioned/run_sharded executor every parallel path routes through); \
             world code stays single-threaded and parallelism happens across whole \
             deterministic worlds."
        }
        "C2" => {
            "C2 — unordered float accumulation. f64 addition is not associative, so a \
             `+=` loop or `.sum()` whose operand order ever changes (e.g. when one world \
             becomes N merged shards) changes the reproduced numbers. Experiment and \
             metrics code routes reductions through \
             `spamward_analysis::reduce::ordered_sum`, the one place that pins the \
             reduction order."
        }
        "O2" => {
            "O2 — dead, duplicate or unresolved metric names. Every metric-name constant \
             declared in a `metrics.rs` module must be unique workspace-wide and \
             referenced by at least one collection/recording site, and every dotted \
             metric-shaped literal in a namespace the workspace declares must resolve to \
             a declared constant — otherwise names drift out of the golden snapshot \
             silently. The sampled `obs.sample.*` series, the `timeline.*` event names \
             and the greylist store families (`greylist.backend.*` request/fault \
             counters, `greylist.policy.*` keying gauges, `greylist.recovery.*` \
             crash-recovery counters alongside `mta.crash.*`) are part of the same \
             contract and are checked identically."
        }
        "R1" => {
            "R1 — docs out of sync. The linter itself cross-checks the rule catalog \
             (RULE_IDS) against DESIGN.md's rules table, and the experiment registry \
             (crates/core/src/harness.rs REGISTRY order, resolved to experiment ids \
             through each module's `fn id`) against DESIGN.md's per-experiment index, so \
             the documentation cannot rot."
        }
        "A1" => {
            "A1 — stale allowlist entry. A lint-allow.toml entry that matches no \
             diagnostic excuses code that no longer exists; remove the entry. A1 itself \
             cannot be allowlisted."
        }
        _ => return None,
    })
}

/// The one module allowed to read the host clock: experiments must take
/// time from the simulation scheduler, and the real-network transport
/// injects this module's `WallClock` explicitly.
const WALL_CLOCK_MODULE: &str = "crates/sim/src/wall.rs";

/// Crates whose iteration order reaches the event loop or analysis output;
/// rule D3 applies to their sources.
const D3_SCOPE: &[&str] = &[
    "crates/sim/",
    "crates/net/",
    "crates/dns/",
    "crates/smtp/",
    "crates/greylist/",
    "crates/mta/",
    "crates/botnet/",
    "crates/scanner/",
    "crates/analysis/",
    "crates/core/",
    "crates/webmail/",
    "src/",
];

/// Protocol-path crates where a panic means a dropped SMTP conversation;
/// rule P1 applies to their library sources.
const P1_SCOPE: &[&str] =
    &["crates/smtp/src/", "crates/mta/src/", "crates/greylist/src/", "crates/dns/src/"];

/// The module that owns SMTP reply-code constants (exempt from P2).
const REPLY_MODULE: &str = "crates/smtp/src/reply.rs";

/// Crates exempt from rule S1: the engine crate owns the one sanctioned
/// time-ordered queue (`Simulation<S>`), and the lint crate's own sources
/// name the patterns it searches for.
const S1_EXEMPT: &[&str] = &["crates/sim/", "crates/lint/"];

/// Identifier fragments that mark a sort key as virtual time: sorting by
/// an attempt/arrival/due timestamp is scheduling by hand.
const S1_TIME_KEYS: &[&str] = &["attempt", "arrival", "due", "deadline", "next_try", "wake"];

/// One rule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule id (`D1`..`P2`).
    pub rule: &'static str,
    /// Repo-relative `/`-separated path.
    pub path: String,
    /// 1-based line.
    pub line: usize,
    /// The offending source line (trimmed), as matched by the rule.
    pub line_text: String,
    /// What is wrong and what to do instead.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.path, self.line, self.rule, self.message)
    }
}

/// Runs every applicable rule over one file.
pub fn check_file(rel_path: &str, source: &str) -> Vec<Diagnostic> {
    let scanned = ScannedFile::scan(source);
    let mut out = Vec::new();
    check_d1(rel_path, source, &scanned, &mut out);
    check_d2(rel_path, source, &scanned, &mut out);
    check_d3(rel_path, source, &scanned, &mut out);
    check_p1(rel_path, source, &scanned, &mut out);
    check_p2(rel_path, source, &scanned, &mut out);
    check_o1(rel_path, source, &scanned, &mut out);
    check_s1(rel_path, source, &scanned, &mut out);
    check_f1(rel_path, source, &scanned, &mut out);
    dedupe(out)
}

/// D1 — wall-clock reads. Simulation results must be a pure function of the
/// seed; `Instant::now()` et al. silently couple them to the host.
fn check_d1(rel_path: &str, source: &str, scanned: &ScannedFile, out: &mut Vec<Diagnostic>) {
    if rel_path == WALL_CLOCK_MODULE {
        return;
    }
    const PATTERNS: &[&str] = &[
        "Instant::now",
        "SystemTime::now",
        "std::time::Instant",
        "std::time::SystemTime",
        "UNIX_EPOCH",
        "chrono::",
        "Utc::now",
        "Local::now",
    ];
    for pat in PATTERNS {
        for offset in find_token(&scanned.masked, pat) {
            push(
                out,
                scanned,
                source,
                rel_path,
                "D1",
                offset,
                format!(
                    "wall-clock read `{pat}` — take time from the sim scheduler, or inject \
                 `spamward_sim::wall::WallClock` (the only sanctioned host-clock source)"
                ),
            );
        }
    }
    // `use std::time::{.., Instant, ..}` grouped imports.
    for offset in find_token(&scanned.masked, "use std::time::") {
        let rest = &scanned.masked[offset..];
        if let Some(brace) = rest.find('{') {
            let end = rest.find('}').unwrap_or(rest.len());
            if brace < end {
                let group = &rest[brace..end];
                for name in ["Instant", "SystemTime"] {
                    if let Some(pos) = group.find(name) {
                        push(
                            out,
                            scanned,
                            source,
                            rel_path,
                            "D1",
                            offset + brace + pos,
                            format!(
                                "import of `std::time::{name}` — sim-reachable code must not \
                             handle host-clock types; inject a `spamward_sim::Clock` instead"
                            ),
                        );
                    }
                }
            }
        }
    }
}

/// D2 — unseeded randomness. Every random draw must flow through
/// `spamward_sim::DetRng`, which is seeded and fork-labelled.
fn check_d2(rel_path: &str, source: &str, scanned: &ScannedFile, out: &mut Vec<Diagnostic>) {
    const PATTERNS: &[&str] = &["thread_rng", "rand::random", "from_entropy", "OsRng", "getrandom"];
    for pat in PATTERNS {
        for offset in find_token(&scanned.masked, pat) {
            push(
                out,
                scanned,
                source,
                rel_path,
                "D2",
                offset,
                format!(
                    "unseeded randomness `{pat}` — all randomness must flow through \
                 `spamward_sim::DetRng` (seed + fork label)"
                ),
            );
        }
    }
}

/// D3 — iteration over hash collections in determinism-sensitive crates.
/// `HashMap`/`HashSet` iteration order varies run to run; anything that
/// feeds the event loop or analysis output must iterate in sorted order
/// (`BTreeMap`/`BTreeSet`, or collect-and-sort).
fn check_d3(rel_path: &str, source: &str, scanned: &ScannedFile, out: &mut Vec<Diagnostic>) {
    if !D3_SCOPE.iter().any(|p| rel_path.starts_with(p)) {
        return;
    }
    let masked = &scanned.masked;
    let names = hash_collection_names(masked);
    const ITER_SUFFIXES: &[&str] = &[
        ".iter()",
        ".iter_mut()",
        ".keys()",
        ".values()",
        ".values_mut()",
        ".into_iter()",
        ".drain(",
        ".into_keys()",
        ".into_values()",
    ];
    for name in &names {
        for offset in find_token(masked, name) {
            if scanned.in_test_region(offset) {
                continue;
            }
            let after = &masked[offset + name.len()..];
            let iterated = ITER_SUFFIXES.iter().any(|s| after.starts_with(s))
                || is_for_loop_target(masked, offset);
            if iterated {
                push(
                    out,
                    scanned,
                    source,
                    rel_path,
                    "D3",
                    offset,
                    format!(
                        "iteration over hash collection `{name}` — ordering is nondeterministic; \
                     use BTreeMap/BTreeSet or sort before iterating"
                    ),
                );
            }
        }
    }
}

/// P1 — panics in protocol-path crates. A panic mid-conversation tears down
/// the session (and in the TCP transport, the connection); protocol code
/// returns typed errors instead.
fn check_p1(rel_path: &str, source: &str, scanned: &ScannedFile, out: &mut Vec<Diagnostic>) {
    if !P1_SCOPE.iter().any(|p| rel_path.starts_with(p)) {
        return;
    }
    const PATTERNS: &[&str] = &[
        ".unwrap()",
        ".expect(",
        "panic!(",
        "unreachable!(",
        "todo!(",
        "unimplemented!(",
        ".unwrap_unchecked()",
    ];
    for pat in PATTERNS {
        for offset in find_token(&scanned.masked, pat) {
            if scanned.in_test_region(offset) {
                continue;
            }
            push(
                out,
                scanned,
                source,
                rel_path,
                "P1",
                offset,
                format!(
                    "`{}` in protocol-path code — return a typed error or use an infallible \
                 constructor (allowlist with justification only for proven-unreachable cases)",
                    pat.trim_start_matches('.').trim_end_matches('(')
                ),
            );
        }
    }
}

/// P2 — inline SMTP reply-code literals. Codes carry protocol semantics
/// (4xx retry vs 5xx reject is the whole greylisting mechanism); they must
/// come from `spamward_smtp::reply::codes` so grep and the type system see
/// every use.
fn check_p2(rel_path: &str, source: &str, scanned: &ScannedFile, out: &mut Vec<Diagnostic>) {
    if rel_path == REPLY_MODULE {
        return;
    }
    for ctor in ["Reply::new(", "Reply::single("] {
        for offset in find_token(&scanned.masked, ctor) {
            if scanned.in_test_region(offset) {
                continue;
            }
            let args = &scanned.masked[offset + ctor.len()..];
            let first = args.trim_start().chars().next().unwrap_or(' ');
            if first.is_ascii_digit() {
                push(
                    out,
                    scanned,
                    source,
                    rel_path,
                    "P2",
                    offset,
                    format!(
                        "inline SMTP reply code in `{}...)` — use a named constant from \
                     `spamward_smtp::reply::codes` (or a dedicated constructor)",
                        ctor
                    ),
                );
            }
        }
    }
}

/// Files allowed to bind metric/trace name literals: each crate's
/// `metrics.rs`/`obs.rs` module and the instrumentation crate itself.
fn o1_exempt(rel_path: &str) -> bool {
    rel_path.starts_with("crates/obs/")
        || rel_path.ends_with("/metrics.rs")
        || rel_path.ends_with("/obs.rs")
}

/// O1 — metric/trace name string literals outside the crate's
/// `metrics.rs`/`obs` module. Registry names and trace categories are the
/// observability contract; binding them as constants in one module per
/// crate keeps the namespace greppable and typo-proof. Registry recorders
/// take the name as the first argument, `Tracer::record` takes the dotted
/// category as the second.
fn check_o1(rel_path: &str, source: &str, scanned: &ScannedFile, out: &mut Vec<Diagnostic>) {
    if o1_exempt(rel_path) {
        return;
    }
    let masked = &scanned.masked;
    const NAME_FIRST: &[&str] = &[
        ".record_counter(",
        ".record_gauge(",
        ".record_histogram(",
        ".record_span(",
        ".record_point(",
        ".record_event(",
    ];
    for pat in NAME_FIRST {
        for offset in find_token(masked, pat) {
            if scanned.in_test_region(offset) {
                continue;
            }
            if next_nonspace_is_quote(source, offset + pat.len()) {
                push(
                    out,
                    scanned,
                    source,
                    rel_path,
                    "O1",
                    offset,
                    format!(
                        "metric name literal in `{}...)` — bind the name as a constant in the \
                     crate's `metrics.rs`/`obs` module so the namespace stays greppable",
                        pat.trim_start_matches('.').trim_end_matches('(')
                    ),
                );
            }
        }
    }
    for offset in find_token(masked, ".record(") {
        if scanned.in_test_region(offset) {
            continue;
        }
        // Single-argument `.record(..)` calls (e.g. `SpanStats::record`)
        // carry no category and are not O1's business.
        if let Some(second) = second_arg_offset(masked, offset + ".record(".len()) {
            if next_nonspace_is_quote(source, second) {
                push(
                    out,
                    scanned,
                    source,
                    rel_path,
                    "O1",
                    offset,
                    "trace category literal in `record(..)` — bind the dotted category as a \
                     constant in the crate's `metrics.rs`/`obs` module so the namespace stays \
                     greppable"
                        .to_string(),
                );
            }
        }
    }
}

/// S1 — manual virtual-time ordering outside the engine crate. PR 4 made
/// `Simulation<S>` the single execution substrate: anything that needs
/// events in time order schedules them through the engine (or the actor
/// layer on top of it). A `BinaryHeap` in a file that also handles
/// [`SimTime`] is a hand-rolled event queue; a sort keyed on an
/// attempt/arrival/due timestamp is a hand-rolled scheduler pass. Both
/// reintroduce the duplicate delivery loops the engine migration deleted.
fn check_s1(rel_path: &str, source: &str, scanned: &ScannedFile, out: &mut Vec<Diagnostic>) {
    if S1_EXEMPT.iter().any(|p| rel_path.starts_with(p)) {
        return;
    }
    let masked = &scanned.masked;
    // A priority queue is only S1's business when the file also speaks
    // virtual time; a heap of sizes or scores orders nothing temporal.
    if !find_token(masked, "SimTime").is_empty() {
        for offset in find_token(masked, "BinaryHeap") {
            if scanned.in_test_region(offset) {
                continue;
            }
            push(
                out,
                scanned,
                source,
                rel_path,
                "S1",
                offset,
                "`BinaryHeap` in a file handling `SimTime` — a hand-rolled event queue; \
                 schedule through `spamward_sim::Simulation` (or an actor) instead"
                    .to_string(),
            );
        }
    }
    const SORTS: &[&str] =
        &[".sort_by(", ".sort_by_key(", ".sort_unstable_by(", ".sort_unstable_by_key("];
    for pat in SORTS {
        for offset in find_token(masked, pat) {
            if scanned.in_test_region(offset) {
                continue;
            }
            let line = scanned.line_of(offset);
            let text = scanned.line_text(masked, line).to_ascii_lowercase();
            if S1_TIME_KEYS.iter().any(|k| text.contains(k)) {
                push(
                    out,
                    scanned,
                    source,
                    rel_path,
                    "S1",
                    offset,
                    format!(
                        "`{}..)` keyed on a virtual-time field — sorting attempts by timestamp \
                         is scheduling by hand; drive them through `spamward_sim::Simulation`",
                        pat.trim_start_matches('.').trim_end_matches('(')
                    ),
                );
            }
        }
    }
}

/// Files allowed to bind fault-injection literals: the fault catalog
/// itself, per-crate metrics modules (which name the `net.fault.*` /
/// `mta.breaker.*` / `mta.crash.*` / `greylist.degraded.*` /
/// `greylist.recovery.*` exports), the instrumentation
/// crate, the lint's own sources, and integration-test directories.
fn f1_exempt(rel_path: &str) -> bool {
    rel_path == "crates/net/src/faults.rs"
        || rel_path.starts_with("crates/obs/")
        || rel_path.starts_with("crates/lint/")
        || rel_path.ends_with("/metrics.rs")
        || rel_path.ends_with("/obs.rs")
        || rel_path.starts_with("tests/")
        || rel_path.contains("/tests/")
}

/// Metric-name namespaces owned by the fault-injection layer; the leading
/// quote restricts the scan to string literals, which the fully masked
/// text blanks — so F1 scans a comments-only-blanked copy of the source
/// ([`crate::lexer::mask_comments_only`]).
const F1_NAMESPACES: &[&str] =
    &["\"net.fault", "\"mta.breaker", "\"mta.crash", "\"greylist.degraded", "\"greylist.recovery"];

/// F1 — fault-injection literals outside `net::faults` / metrics modules.
/// Fault probabilities scattered through product code are chaos parameters
/// no profile sweep or doc can see, and inline `net.fault.*`-style name
/// literals fork the observability contract the resilience experiment
/// keys on. Probabilities belong in a [`FaultSpec`] inside the catalog;
/// names belong as constants in the owning crate's `metrics.rs`.
fn check_f1(rel_path: &str, source: &str, scanned: &ScannedFile, out: &mut Vec<Diagnostic>) {
    if f1_exempt(rel_path) {
        return;
    }
    let code = crate::lexer::mask_comments_only(source);
    for pat in F1_NAMESPACES {
        let mut from = 0;
        while let Some(pos) = code[from..].find(pat) {
            let offset = from + pos;
            from = offset + 1;
            if scanned.in_test_region(offset) {
                continue;
            }
            push(
                out,
                scanned,
                source,
                rel_path,
                "F1",
                offset,
                format!(
                    "fault metric name literal `{}…` — the fault-injection namespaces are \
                     the observability contract; bind the name as a constant in the crate's \
                     `metrics.rs` and import it",
                    &pat[1..]
                ),
            );
        }
    }
    // A `…prob:` field initialized with a numeric literal is a hard-coded
    // chaos parameter. The masked text keeps numbers but blanks strings
    // and comments, so prose mentions of probabilities cannot match.
    let masked = &scanned.masked;
    let bytes = masked.as_bytes();
    let mut from = 0;
    while let Some(pos) = masked[from..].find("prob") {
        let offset = from + pos;
        from = offset + 1;
        let end = offset + "prob".len();
        // The containing identifier must end exactly at `…prob`.
        if bytes.get(end).is_some_and(|&b| b.is_ascii_alphanumeric() || b == b'_') {
            continue;
        }
        // …and be initialized with a numeric literal (`prob: 0.3`), not a
        // type ascription (`prob: f64`) or a forwarded value.
        let rest = masked[end..].trim_start();
        let Some(value) = rest.strip_prefix(':') else { continue };
        if !value.trim_start().starts_with(|c: char| c.is_ascii_digit()) {
            continue;
        }
        if scanned.in_test_region(offset) {
            continue;
        }
        push(
            out,
            scanned,
            source,
            rel_path,
            "F1",
            offset,
            "fault probability literal — declare it in a `FaultSpec` inside the \
             `spamward_net::faults` catalog so profile sweeps and docs see it"
                .to_string(),
        );
    }
}

/// Byte offset just past the first top-level comma after `open`, or `None`
/// if the argument list closes first. Operates on masked text, so commas
/// inside string literals are already blanked out.
fn second_arg_offset(masked: &str, open: usize) -> Option<usize> {
    let bytes = masked.as_bytes();
    let mut depth = 0usize;
    for (i, &b) in bytes.iter().enumerate().skip(open) {
        match b {
            b'(' | b'[' | b'{' => depth += 1,
            b')' | b']' | b'}' => {
                if depth == 0 {
                    return None;
                }
                depth -= 1;
            }
            b',' if depth == 0 => return Some(i + 1),
            _ => {}
        }
    }
    None
}

/// Whether the first non-whitespace character of the ORIGINAL source at or
/// after `from` is a double quote. The masked text blanks string literals,
/// so literal detection must look at the raw bytes.
fn next_nonspace_is_quote(source: &str, from: usize) -> bool {
    source[from..].chars().find(|c| !c.is_whitespace()) == Some('"')
}

/// Collects identifiers declared as `HashMap`/`HashSet` in `masked` — let
/// bindings, struct fields, and fn params (`name: HashMap<..>`), plus
/// `name = HashMap::new()` / `with_capacity` initializations.
fn hash_collection_names(masked: &str) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for ty in ["HashMap", "HashSet"] {
        for offset in find_token(masked, ty) {
            // Skip over reference sigils so `name: &HashSet<..>` and
            // `name: &mut HashMap<..>` still yield `name`.
            let before = masked[..offset].trim_end();
            // Qualified forms (`name: std::collections::HashMap<..>`) still
            // point back at `name:` once the path prefix is stripped.
            let before = before.strip_suffix("std::collections::").unwrap_or(before).trim_end();
            let before = before.strip_suffix("collections::").unwrap_or(before).trim_end();
            let before = before.strip_suffix("&mut").unwrap_or(before);
            let before = before.strip_suffix('&').unwrap_or(before);
            let before = before.trim_end();
            if let Some(prefix) = before.strip_suffix(':') {
                // `name: HashMap<..>` (skip `::` paths like std::collections::HashMap
                // by stripping a second colon and falling through to ident capture —
                // `use std::collections::HashMap` yields no trailing ident).
                let prefix = prefix.strip_suffix(':').unwrap_or(prefix);
                if let Some(name) = trailing_ident(prefix) {
                    if name != "collections" && name != "std" {
                        names.insert(name);
                    }
                }
            } else if let Some(prefix) = before.strip_suffix('=') {
                // `name = HashMap::new()` / `+=`-style ops end with non-ident, fine.
                if let Some(name) = trailing_ident(prefix.trim_end()) {
                    if name != "mut" {
                        names.insert(name);
                    }
                }
            }
        }
    }
    names
}

/// The identifier ending at the end of `s`, if any.
fn trailing_ident(s: &str) -> Option<String> {
    let end = s.len();
    let start =
        s.rfind(|c: char| !c.is_ascii_alphanumeric() && c != '_').map(|i| i + 1).unwrap_or(0);
    if start == end {
        return None;
    }
    let ident = &s[start..end];
    if ident.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        return None;
    }
    Some(ident.to_string())
}

/// Whether the token at `offset` is the sequence of a `for .. in` loop
/// (`in name`, `in &name`, `in &mut name`).
fn is_for_loop_target(masked: &str, offset: usize) -> bool {
    let before = masked[..offset].trim_end();
    let before = before.strip_suffix("&mut").unwrap_or(before.strip_suffix('&').unwrap_or(before));
    let before = before.trim_end();
    before.ends_with(" in") || before.ends_with("\nin") || before == "in"
}

pub(crate) fn push(
    out: &mut Vec<Diagnostic>,
    scanned: &ScannedFile,
    source: &str,
    rel_path: &str,
    rule: &'static str,
    offset: usize,
    message: String,
) {
    let line = scanned.line_of(offset);
    out.push(Diagnostic {
        rule,
        path: rel_path.to_string(),
        line,
        line_text: scanned.line_text(source, line).trim().to_string(),
        message,
    });
}

/// One diagnostic per (rule, line), sorted by line then rule.
pub(crate) fn dedupe(mut diags: Vec<Diagnostic>) -> Vec<Diagnostic> {
    diags.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    diags.dedup_by(|a, b| a.rule == b.rule && a.line == b.line);
    diags
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_hit(rel: &str, src: &str) -> Vec<&'static str> {
        check_file(rel, src).into_iter().map(|d| d.rule).collect()
    }

    #[test]
    fn d1_flags_instant_now_outside_wall_module() {
        let src = "fn f() { let t = std::time::Instant::now(); }";
        assert!(rules_hit("crates/smtp/src/x.rs", src).contains(&"D1"));
        assert!(rules_hit("crates/sim/src/wall.rs", src).is_empty());
    }

    #[test]
    fn d1_flags_grouped_import() {
        let src = "use std::time::{Duration, Instant};";
        assert!(rules_hit("crates/mta/src/x.rs", src).contains(&"D1"));
        let clean = "use std::time::Duration;";
        assert!(rules_hit("crates/mta/src/x.rs", clean).is_empty());
    }

    #[test]
    fn d2_flags_thread_rng() {
        let src = "fn f() { let r = rand::thread_rng(); }";
        assert_eq!(rules_hit("crates/core/src/x.rs", src), vec!["D2"]);
    }

    #[test]
    fn d3_flags_hash_iteration_in_scope() {
        let src = "fn f(m: HashMap<u32, u32>) { for (k, v) in &m { use_it(k, v); } }";
        assert_eq!(rules_hit("crates/analysis/src/x.rs", src), vec!["D3"]);
        // Same code outside D3 scope is fine.
        assert!(rules_hit("crates/lint/src/x.rs", src).is_empty());
        // Lookup-only use is fine.
        let lookup = "fn f(m: HashMap<u32, u32>) { let _ = m.get(&1); }";
        assert!(rules_hit("crates/analysis/src/x.rs", lookup).is_empty());
    }

    #[test]
    fn d3_sees_through_qualified_paths() {
        let src = "fn f() { let m: std::collections::HashMap<u32, u32> = Default::default(); \
                   for (_, v) in m.iter() { use_it(v); } }";
        assert_eq!(rules_hit("crates/mta/src/x.rs", src), vec!["D3"]);
    }

    #[test]
    fn d3_flags_method_iteration() {
        let src = "struct S { m: HashSet<u32> }\nimpl S { fn g(&self) -> Vec<u32> { self.m.iter().copied().collect() } }";
        assert_eq!(rules_hit("crates/core/src/x.rs", src), vec!["D3"]);
    }

    #[test]
    fn p1_flags_unwrap_in_protocol_crates_only() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() }";
        assert_eq!(rules_hit("crates/smtp/src/x.rs", src), vec!["P1"]);
        assert!(rules_hit("crates/analysis/src/x.rs", src).is_empty());
    }

    #[test]
    fn p1_ignores_tests_and_docs() {
        let src = "/// ```\n/// x.unwrap();\n/// ```\nfn f() {}\n#[cfg(test)]\nmod tests { fn t() { None::<u8>.unwrap(); } }";
        assert!(rules_hit("crates/smtp/src/x.rs", src).is_empty());
    }

    #[test]
    fn p2_flags_inline_reply_codes() {
        let src = "fn f() -> Reply { Reply::single(554, \"no\") }";
        assert_eq!(rules_hit("crates/mta/src/x.rs", src), vec!["P2"]);
        let named = "fn f() -> Reply { Reply::single(codes::TRANSACTION_FAILED, \"no\") }";
        assert!(rules_hit("crates/mta/src/x.rs", named).is_empty());
        assert!(rules_hit("crates/smtp/src/reply.rs", src).is_empty());
    }

    #[test]
    fn o1_flags_name_literals_outside_metrics_modules() {
        let src = "fn f(reg: &mut Registry) { reg.record_counter(\"smtp.cmd\", 1); }";
        assert_eq!(rules_hit("crates/smtp/src/wire.rs", src), vec!["O1"]);
        // The crate's metrics module and the obs crate itself are exempt.
        assert!(rules_hit("crates/smtp/src/metrics.rs", src).is_empty());
        assert!(rules_hit("crates/obs/src/registry.rs", src).is_empty());
        // Constant names are the sanctioned form.
        let clean = "fn f(reg: &mut Registry) { reg.record_counter(COMMANDS, 1); }";
        assert!(rules_hit("crates/smtp/src/wire.rs", clean).is_empty());
    }

    #[test]
    fn o1_flags_trace_category_literals_only() {
        let src = "fn f(t: &mut Tracer) { t.record(now, \"smtp.reject\", detail); }";
        assert_eq!(rules_hit("crates/mta/src/world.rs", src), vec!["O1"]);
        let constant = "fn f(t: &mut Tracer) { t.record(now, TRACE_SMTP_REJECT, detail); }";
        assert!(rules_hit("crates/mta/src/world.rs", constant).is_empty());
        // Single-argument record() calls (span stats) carry no category.
        let span = "fn f(s: &mut SpanStats) { s.record(elapsed); }";
        assert!(rules_hit("crates/mta/src/world.rs", span).is_empty());
    }

    #[test]
    fn s1_flags_heap_only_alongside_simtime() {
        let heap = "fn f(q: &mut BinaryHeap<(SimTime, u64)>) { q.pop(); }";
        assert_eq!(rules_hit("crates/mta/src/x.rs", heap), vec!["S1"]);
        // The engine crate owns the sanctioned time-ordered queue.
        assert!(rules_hit("crates/sim/src/event.rs", heap).is_empty());
        // A heap with no virtual time in sight orders nothing temporal.
        let sizes = "fn f(q: &mut BinaryHeap<u64>) { q.pop(); }";
        assert!(rules_hit("crates/mta/src/x.rs", sizes).is_empty());
    }

    #[test]
    fn s1_flags_timestamp_keyed_sorts() {
        let src = "fn f(attempts: &mut Vec<(u64, u64)>) { attempts.sort_by_key(|a| a.0); }";
        assert_eq!(rules_hit("crates/botnet/src/x.rs", src), vec!["S1"]);
        // Sorting by a non-temporal key is not scheduling.
        let prefs = "fn f(mxs: &mut Vec<(u16, u32)>) { mxs.sort_by_key(|m| m.0); }";
        assert!(rules_hit("crates/botnet/src/x.rs", prefs).is_empty());
    }

    #[test]
    fn token_boundaries_respected() {
        // `MyInstant::nowhere` must not trip D1.
        let src = "fn f() { MyInstant::nowhere(); }";
        assert!(rules_hit("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn f1_flags_fault_name_literals_outside_sanctioned_modules() {
        let src = "const TRIPS: &str = \"mta.breaker.trips\";";
        assert_eq!(rules_hit("crates/core/src/x.rs", src), vec!["F1"]);
        // The fault catalog, metrics modules and the obs crate are exempt.
        assert!(rules_hit("crates/net/src/faults.rs", src).is_empty());
        assert!(rules_hit("crates/core/src/metrics.rs", src).is_empty());
        assert!(rules_hit("crates/obs/src/registry.rs", src).is_empty());
        // Importing the constant is the sanctioned form.
        let clean = "use crate::metrics::BREAKER_TRIPS;\nfn f(reg: &Registry) { let _ = reg.counter(BREAKER_TRIPS); }";
        assert!(rules_hit("crates/core/src/x.rs", clean).is_empty());
    }

    #[test]
    fn f1_covers_all_five_fault_namespaces() {
        for name in [
            "net.fault.outage",
            "mta.breaker.trips",
            "mta.crash.events",
            "greylist.degraded.fail_open",
            "greylist.recovery.entries_lost",
        ] {
            let src = format!("fn f(reg: &Registry) {{ let _ = reg.counter(\"{name}\"); }}");
            assert_eq!(rules_hit("crates/mta/src/x.rs", &src), vec!["F1"], "{name}");
        }
        // Neighboring namespaces are O1's business, not F1's.
        let other = "const X: &str = \"smtp.cmd.total\";";
        assert!(rules_hit("crates/core/src/x.rs", other).is_empty());
    }

    #[test]
    fn f1_flags_probability_literals_but_not_ascriptions() {
        let src = "fn f() -> Availability { Availability::Flaky { down_prob: 0.3 } }";
        assert_eq!(rules_hit("crates/core/src/x.rs", src), vec!["F1"]);
        // Type ascriptions and forwarded values are not hard-coded chaos.
        let decl = "pub struct S { pub down_prob: f64 }";
        assert!(rules_hit("crates/core/src/x.rs", decl).is_empty());
        let forwarded = "fn f(spec: &Spec) -> Availability { Availability::Flaky { down_prob: spec.down_prob } }";
        assert!(rules_hit("crates/core/src/x.rs", forwarded).is_empty());
        // `prob` mid-identifier is not a probability field.
        let prose = "fn f() { let problem_count: u32 = 3; use_it(problem_count); }";
        assert!(rules_hit("crates/core/src/x.rs", prose).is_empty());
    }

    #[test]
    fn f1_ignores_tests_and_comments() {
        let src = "// documented as \"net.fault.boundary_events\" with prob: 0.5\n\
                   #[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        \
                   let _ = (\"net.fault.x\", Availability::Flaky { down_prob: 0.9 });\n    }\n}";
        assert!(rules_hit("crates/core/src/x.rs", src).is_empty());
        // Integration-test directories are out of scope entirely.
        let lit = "const X: &str = \"net.fault.outage_timeouts\";";
        assert!(rules_hit("tests/determinism.rs", lit).is_empty());
        assert!(rules_hit("crates/bench/tests/cli.rs", lit).is_empty());
    }
}
