//! The checked-in violation allowlist (`lint-allow.toml`).
//!
//! Existing debt is triaged *explicitly*: every suppressed diagnostic needs
//! an entry naming the rule, the file, and a human justification. Entries
//! without a justification are themselves errors, and entries that stop
//! matching anything are reported so the list cannot rot.
//!
//! The file is parsed with a small built-in reader for the subset of TOML
//! the allowlist uses (`[[allow]]` tables of string keys) — the offline
//! build has no `toml` crate, and the format is frozen by tests.

use std::fmt;
use std::path::Path;

/// One `[[allow]]` entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    /// Rule id, e.g. `"P1"`.
    pub rule: String,
    /// Repo-relative `/`-separated path the suppression applies to.
    pub path: String,
    /// Optional substring that must appear in the flagged source line;
    /// empty matches any line in the file.
    pub contains: String,
    /// Mandatory human-readable reason.
    pub justification: String,
    /// 1-based line in `lint-allow.toml`, for error reporting.
    pub defined_at: usize,
}

impl fmt::Display for AllowEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.rule, self.path)?;
        if !self.contains.is_empty() {
            write!(f, " (contains {:?})", self.contains)?;
        }
        Ok(())
    }
}

/// The parsed allowlist.
#[derive(Debug, Default)]
pub struct Allowlist {
    /// Entries in file order.
    pub entries: Vec<AllowEntry>,
}

/// A malformed allowlist file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowlistError {
    /// 1-based line of the problem.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for AllowlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lint-allow.toml:{}: {}", self.line, self.message)
    }
}

impl std::error::Error for AllowlistError {}

impl Allowlist {
    /// Loads `path`; a missing file is an empty allowlist.
    pub fn load(path: &Path) -> Result<Allowlist, AllowlistError> {
        match std::fs::read_to_string(path) {
            Ok(text) => Self::parse(&text),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Allowlist::default()),
            Err(e) => {
                Err(AllowlistError { line: 0, message: format!("cannot read allowlist: {e}") })
            }
        }
    }

    /// Parses the TOML-subset allowlist text.
    pub fn parse(text: &str) -> Result<Allowlist, AllowlistError> {
        let mut entries: Vec<AllowEntry> = Vec::new();
        let mut current: Option<AllowEntry> = None;

        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if line == "[[allow]]" {
                if let Some(done) = current.take() {
                    validate(&done)?;
                    entries.push(done);
                }
                current = Some(AllowEntry {
                    rule: String::new(),
                    path: String::new(),
                    contains: String::new(),
                    justification: String::new(),
                    defined_at: lineno,
                });
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(AllowlistError {
                    line: lineno,
                    message: format!("expected `key = \"value\"`, got {line:?}"),
                });
            };
            let Some(entry) = current.as_mut() else {
                return Err(AllowlistError {
                    line: lineno,
                    message: "key outside an [[allow]] table".into(),
                });
            };
            let value = parse_string(value.trim()).ok_or_else(|| AllowlistError {
                line: lineno,
                message: format!("expected a double-quoted string value in {line:?}"),
            })?;
            match key.trim() {
                "rule" => entry.rule = value,
                "path" => entry.path = value,
                "contains" => entry.contains = value,
                "justification" => entry.justification = value,
                other => {
                    return Err(AllowlistError {
                        line: lineno,
                        message: format!(
                            "unknown key {other:?} (expected rule/path/contains/justification)"
                        ),
                    });
                }
            }
        }
        if let Some(done) = current.take() {
            validate(&done)?;
            entries.push(done);
        }
        Ok(Allowlist { entries })
    }

    /// Indices of entries matching a diagnostic, or `None` if unsuppressed.
    pub fn matches(&self, rule: &str, path: &str, line_text: &str) -> Option<usize> {
        self.entries.iter().position(|e| {
            e.rule == rule
                && e.path == path
                && (e.contains.is_empty() || line_text.contains(&e.contains))
        })
    }
}

fn validate(entry: &AllowEntry) -> Result<(), AllowlistError> {
    let missing = |what: &str| AllowlistError {
        line: entry.defined_at,
        message: format!("[[allow]] entry is missing a non-empty `{what}`"),
    };
    if entry.rule.is_empty() {
        return Err(missing("rule"));
    }
    if entry.path.is_empty() {
        return Err(missing("path"));
    }
    if entry.justification.trim().is_empty() {
        return Err(missing("justification"));
    }
    if !crate::rules::RULE_IDS.contains(&entry.rule.as_str()) {
        return Err(AllowlistError {
            line: entry.defined_at,
            message: format!(
                "unknown rule {:?} (known: {})",
                entry.rule,
                crate::rules::RULE_IDS.join(", ")
            ),
        });
    }
    // A1 reports this file's own stale entries; allowing it would let the
    // allowlist suppress its own rot detection.
    if entry.rule == "A1" {
        return Err(AllowlistError {
            line: entry.defined_at,
            message: "rule \"A1\" (stale allow entry) cannot itself be allowlisted — \
                      remove the stale entry instead"
                .into(),
        });
    }
    Ok(())
}

/// Parses a double-quoted TOML basic string with `\"` and `\\` escapes.
fn parse_string(s: &str) -> Option<String> {
    let inner = s.strip_prefix('"')?;
    let mut out = String::with_capacity(inner.len());
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => {
                // Only trailing comments may follow the closing quote.
                let rest = chars.as_str().trim();
                if rest.is_empty() || rest.starts_with('#') {
                    return Some(out);
                }
                return None;
            }
            '\\' => match chars.next()? {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                'n' => out.push('\n'),
                't' => out.push('\t'),
                _ => return None,
            },
            c => out.push(c),
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_entries_with_comments() {
        let text = r#"
# file-level comment
[[allow]]
rule = "P1"
path = "crates/mta/src/send.rs"
contains = "expect(\"queue\")" # trailing comment
justification = "queue invariant: drained before shutdown"

[[allow]]
rule = "D3"
path = "crates/dns/src/resolver.rs"
justification = "lookup-only map, never iterated for output"
"#;
        let list = Allowlist::parse(text).expect("parse");
        assert_eq!(list.entries.len(), 2);
        assert_eq!(list.entries[0].contains, "expect(\"queue\")");
        assert_eq!(list.entries[1].contains, "");
        assert!(list.matches("P1", "crates/mta/src/send.rs", "x.expect(\"queue\")").is_some());
        assert!(list.matches("P1", "crates/mta/src/send.rs", "x.unwrap()").is_none());
        assert!(list.matches("D3", "crates/dns/src/resolver.rs", "anything").is_some());
    }

    #[test]
    fn justification_is_mandatory() {
        let text = "[[allow]]\nrule = \"P1\"\npath = \"a.rs\"\n";
        let err = Allowlist::parse(text).expect_err("must fail");
        assert!(err.message.contains("justification"), "{err}");
    }

    #[test]
    fn unknown_rule_is_rejected() {
        let text = "[[allow]]\nrule = \"Z9\"\npath = \"a.rs\"\njustification = \"x\"\n";
        let err = Allowlist::parse(text).expect_err("must fail");
        assert!(err.message.contains("unknown rule"), "{err}");
    }

    #[test]
    fn a1_cannot_be_allowlisted() {
        let text = "[[allow]]\nrule = \"A1\"\npath = \"lint-allow.toml\"\njustification = \"x\"\n";
        let err = Allowlist::parse(text).expect_err("must fail");
        assert!(err.message.contains("A1"), "{err}");
    }

    #[test]
    fn missing_file_is_empty() {
        let list = Allowlist::load(Path::new("/nonexistent/lint-allow.toml")).expect("empty");
        assert!(list.entries.is_empty());
    }
}
