//! Workspace file discovery (std-only stand-in for `walkdir`).

use std::io;
use std::path::{Path, PathBuf};

/// Directories at the workspace root that are in scope for linting.
const SCAN_ROOTS: &[&str] = &["crates", "src", "tests", "examples"];

/// Path prefixes (relative, `/`-separated) excluded from the scan:
/// `stubs/` shims third-party APIs (see `stubs/README.md`) and the lint's own
/// fixtures contain deliberate violations used as test inputs.
const EXCLUDED_PREFIXES: &[&str] = &["stubs/", "crates/lint/tests/fixtures/"];

/// Collects every in-scope `.rs` file under `root`, sorted by relative path
/// so diagnostics (and therefore CI output) are deterministic.
pub fn workspace_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    for dir in SCAN_ROOTS {
        let abs = root.join(dir);
        if abs.is_dir() {
            collect(&abs, &mut files)?;
        }
    }
    let mut rel: Vec<PathBuf> = files
        .into_iter()
        .filter_map(|f| f.strip_prefix(root).ok().map(PathBuf::from))
        .filter(|f| {
            let s = rel_str(f);
            !EXCLUDED_PREFIXES.iter().any(|p| s.starts_with(p))
        })
        .collect();
    rel.sort();
    Ok(rel)
}

/// A path rendered relative with forward slashes, the form used in
/// diagnostics and `lint-allow.toml` entries.
pub fn rel_str(path: &Path) -> String {
    let mut s = String::new();
    for comp in path.components() {
        if !s.is_empty() {
            s.push('/');
        }
        s.push_str(&comp.as_os_str().to_string_lossy());
    }
    s
}

fn collect(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> =
        std::fs::read_dir(dir)?.map(|e| e.map(|e| e.path())).collect::<io::Result<_>>()?;
    entries.sort();
    for path in entries {
        let name = path.file_name().map(|n| n.to_string_lossy().into_owned()).unwrap_or_default();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Walks upward from `start` to the directory whose `Cargo.toml` declares
/// `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(dir);
                }
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_this_workspace() {
        let here = std::env::current_dir().expect("cwd");
        let root = find_workspace_root(&here).expect("workspace root");
        assert!(root.join("crates/lint").is_dir());
    }

    #[test]
    fn scan_excludes_stubs_and_fixtures() {
        let here = std::env::current_dir().expect("cwd");
        let root = find_workspace_root(&here).expect("workspace root");
        let files = workspace_files(&root).expect("walk");
        assert!(!files.is_empty());
        for f in &files {
            let s = rel_str(f);
            assert!(!s.starts_with("stubs/"), "{s} should be excluded");
            assert!(!s.contains("tests/fixtures/"), "{s} should be excluded");
        }
    }
}
