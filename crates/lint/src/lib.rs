//! # spamward-lint
//!
//! Workspace-wide determinism & panic-safety static analysis.
//!
//! The simulation's headline claim — same seed, same result — and the
//! protocol stack's no-panic discipline are invariants the stock toolchain
//! cannot check. This crate parses every workspace source (a masking
//! scanner, not a full parser; see [`lexer`]) and enforces:
//!
//! | rule | invariant |
//! |------|-----------|
//! | D1   | no wall-clock reads outside `crates/sim/src/wall.rs` |
//! | D2   | no unseeded randomness — everything flows through `spamward_sim::DetRng` |
//! | D3   | no iteration over `HashMap`/`HashSet` in crates feeding the event loop or analysis output |
//! | P1   | no `unwrap`/`expect`/`panic!` in protocol-path crates outside tests |
//! | P2   | SMTP reply codes come from `spamward_smtp::reply::codes`, never inline literals |
//! | O1   | metric/trace name literals live only in each crate's `metrics.rs`/`obs` module |
//! | S1   | no hand-rolled virtual-time ordering (`BinaryHeap` + `SimTime`, timestamp-keyed sorts) outside `crates/sim` |
//!
//! Known debt is suppressed via `lint-allow.toml` ([`allow`]); every entry
//! carries a mandatory justification, and entries that stop matching are
//! reported as stale so the list cannot rot.
//!
//! Run it with `cargo run -p spamward-lint`; exit status 0 means clean,
//! 1 means violations (or stale allowlist entries), 2 means the lint
//! itself failed (unreadable files, malformed allowlist).

pub mod allow;
pub mod lexer;
pub mod rules;
pub mod walk;

pub use allow::{AllowEntry, Allowlist, AllowlistError};
pub use rules::Diagnostic;

use std::fmt;
use std::path::Path;

/// Name of the allowlist file at the workspace root.
pub const ALLOWLIST_FILE: &str = "lint-allow.toml";

/// Outcome of a lint run.
#[derive(Debug, Default)]
pub struct LintReport {
    /// Violations not covered by any allowlist entry, in path/line order.
    pub diagnostics: Vec<Diagnostic>,
    /// Violations suppressed by the allowlist, with the entry index used.
    pub suppressed: Vec<(Diagnostic, usize)>,
    /// Allowlist entries that matched nothing — stale debt records.
    pub stale_entries: Vec<AllowEntry>,
    /// Number of files scanned.
    pub files_scanned: usize,
}

impl LintReport {
    /// True when there is nothing to fix: no live violations and no stale
    /// allowlist entries.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty() && self.stale_entries.is_empty()
    }
}

/// A failure of the lint itself (not a finding).
#[derive(Debug)]
pub enum LintError {
    /// A source file could not be read.
    Io(String, std::io::Error),
    /// `lint-allow.toml` is malformed.
    Allowlist(AllowlistError),
}

impl fmt::Display for LintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LintError::Io(path, e) => write!(f, "{path}: {e}"),
            LintError::Allowlist(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for LintError {}

impl From<AllowlistError> for LintError {
    fn from(e: AllowlistError) -> Self {
        LintError::Allowlist(e)
    }
}

/// Lints the workspace rooted at `root`: discovers in-scope sources, loads
/// `lint-allow.toml`, and applies every rule.
pub fn lint_workspace(root: &Path) -> Result<LintReport, LintError> {
    if !root.is_dir() {
        return Err(LintError::Io(
            root.display().to_string(),
            std::io::Error::new(std::io::ErrorKind::NotFound, "lint root is not a directory"),
        ));
    }
    let allowlist = Allowlist::load(&root.join(ALLOWLIST_FILE))?;
    let files =
        walk::workspace_files(root).map_err(|e| LintError::Io(root.display().to_string(), e))?;

    let mut report = LintReport::default();
    let mut used = vec![false; allowlist.entries.len()];

    for rel in &files {
        let abs = root.join(rel);
        let source = std::fs::read_to_string(&abs)
            .map_err(|e| LintError::Io(abs.display().to_string(), e))?;
        let rel = walk::rel_str(rel);
        for diag in rules::check_file(&rel, &source) {
            match allowlist.matches(diag.rule, &diag.path, &diag.line_text) {
                Some(idx) => {
                    used[idx] = true;
                    report.suppressed.push((diag, idx));
                }
                None => report.diagnostics.push(diag),
            }
        }
        report.files_scanned += 1;
    }

    report.stale_entries =
        allowlist.entries.iter().zip(&used).filter(|&(_, &u)| !u).map(|(e, _)| e.clone()).collect();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_clean_requires_no_stale_entries() {
        let mut r = LintReport::default();
        assert!(r.is_clean());
        r.stale_entries.push(AllowEntry {
            rule: "P1".into(),
            path: "x.rs".into(),
            contains: String::new(),
            justification: "gone".into(),
            defined_at: 1,
        });
        assert!(!r.is_clean());
    }
}
