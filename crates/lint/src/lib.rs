//! # spamward-lint
//!
//! Workspace-wide determinism & panic-safety static analysis.
//!
//! The simulation's headline claim — same seed, same result — and the
//! protocol stack's no-panic discipline are invariants the stock toolchain
//! cannot check. This crate parses every workspace source (a masking
//! scanner, not a full parser; see [`lexer`]) in two passes: pass 1 builds
//! a [`model::WorkspaceModel`] (module graph, string-constant table,
//! function table, crate dependency edges) while the per-file rules run;
//! pass 2 runs cross-file rules against that model. Enforced:
//!
//! | rule | invariant |
//! |------|-----------|
//! | D1   | no wall-clock reads outside `crates/sim/src/wall.rs` |
//! | D2   | no unseeded randomness — everything flows through `spamward_sim::DetRng` |
//! | D3   | no iteration over `HashMap`/`HashSet` in crates feeding the event loop or analysis output |
//! | P1   | no `unwrap`/`expect`/`panic!` in protocol-path crates outside tests |
//! | P2   | SMTP reply codes come from `spamward_smtp::reply::codes`, never inline literals |
//! | O1   | metric/trace name literals live only in each crate's `metrics.rs`/`obs` module |
//! | S1   | no hand-rolled virtual-time ordering (`BinaryHeap` + `SimTime`, timestamp-keyed sorts) outside `crates/sim` |
//! | F1   | fault-plan string literals resolve to `spamward_sim::fault` constants |
//! | C1   | concurrency primitives confined to the sanctioned fan-out modules (cross-file) |
//! | C2   | f64 accumulation in experiment/metrics code uses `ordered_sum` (cross-file) |
//! | O2   | metric constants unique + alive; metric literals resolve to declarations (cross-file) |
//! | R1   | RULE_IDS ↔ DESIGN.md rules table, registry ↔ DESIGN.md index (cross-file) |
//! | A1   | `lint-allow.toml` entries must still match something — stale debt fails the run |
//!
//! Known debt is suppressed via `lint-allow.toml` ([`allow`]); every entry
//! carries a mandatory justification, and entries that stop matching are
//! reported as `A1` diagnostics so the list cannot rot.
//!
//! Run it with `cargo run -p spamward-lint`; exit status 0 means clean,
//! 1 means violations, 2 means the lint itself failed (unreadable files,
//! malformed allowlist). `--json` emits the stable machine-readable report
//! ([`json`]); `--explain RULE` prints a rule's rationale.

pub mod allow;
pub mod json;
pub mod lexer;
pub mod model;
pub mod rules;
pub mod rules_xfile;
pub mod walk;

pub use allow::{AllowEntry, Allowlist, AllowlistError};
pub use model::WorkspaceModel;
pub use rules::Diagnostic;

use std::fmt;
use std::path::Path;

/// Name of the allowlist file at the workspace root.
pub const ALLOWLIST_FILE: &str = "lint-allow.toml";

/// Outcome of a lint run.
#[derive(Debug, Default)]
pub struct LintReport {
    /// Violations not covered by any allowlist entry — including `A1`
    /// stale-allow findings — sorted by `(path, line, rule)`.
    pub diagnostics: Vec<Diagnostic>,
    /// Violations suppressed by the allowlist, with the entry index used.
    pub suppressed: Vec<(Diagnostic, usize)>,
    /// Number of files scanned.
    pub files_scanned: usize,
}

impl LintReport {
    /// True when there is nothing to fix.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }
}

/// A failure of the lint itself (not a finding).
#[derive(Debug)]
pub enum LintError {
    /// A source file could not be read.
    Io(String, std::io::Error),
    /// `lint-allow.toml` is malformed.
    Allowlist(AllowlistError),
}

impl fmt::Display for LintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LintError::Io(path, e) => write!(f, "{path}: {e}"),
            LintError::Allowlist(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for LintError {}

impl From<AllowlistError> for LintError {
    fn from(e: AllowlistError) -> Self {
        LintError::Allowlist(e)
    }
}

/// Lints the workspace rooted at `root`: discovers in-scope sources, builds
/// the semantic model, runs per-file then cross-file rules, and applies
/// `lint-allow.toml`.
pub fn lint_workspace(root: &Path) -> Result<LintReport, LintError> {
    if !root.is_dir() {
        return Err(LintError::Io(
            root.display().to_string(),
            std::io::Error::new(std::io::ErrorKind::NotFound, "lint root is not a directory"),
        ));
    }
    let allowlist = Allowlist::load(&root.join(ALLOWLIST_FILE))?;
    let files =
        walk::workspace_files(root).map_err(|e| LintError::Io(root.display().to_string(), e))?;

    // Pass 1: read every source and build the workspace model.
    let mut sources = Vec::with_capacity(files.len());
    for rel in &files {
        let abs = root.join(rel);
        let source = std::fs::read_to_string(&abs)
            .map_err(|e| LintError::Io(abs.display().to_string(), e))?;
        sources.push((walk::rel_str(rel), source));
    }
    let model = WorkspaceModel::from_sources(sources, read_manifests(root), read_design_md(root));

    // Per-file rules over the model's sources, then pass 2 cross-file rules.
    let mut raw = Vec::new();
    for (rel, facts) in &model.files {
        raw.extend(rules::check_file(rel, &facts.source));
    }
    raw.extend(rules_xfile::check_workspace(&model));

    let mut report = LintReport { files_scanned: model.files.len(), ..LintReport::default() };
    let mut used = vec![false; allowlist.entries.len()];
    for diag in raw {
        match allowlist.matches(diag.rule, &diag.path, &diag.line_text) {
            Some(idx) => {
                used[idx] = true;
                report.suppressed.push((diag, idx));
            }
            None => report.diagnostics.push(diag),
        }
    }

    // A1: entries that matched nothing are themselves findings.
    for (entry, _) in allowlist.entries.iter().zip(&used).filter(|&(_, &u)| !u) {
        report.diagnostics.push(Diagnostic {
            rule: "A1",
            path: ALLOWLIST_FILE.to_string(),
            line: entry.defined_at,
            line_text: entry.to_string(),
            message: format!("stale allow entry {entry} — matches nothing; remove this entry"),
        });
    }

    report
        .diagnostics
        .sort_by(|a, b| (a.path.as_str(), a.line, a.rule).cmp(&(b.path.as_str(), b.line, b.rule)));
    Ok(report)
}

/// Member manifests for the model: the root `Cargo.toml` plus every
/// `crates/*/Cargo.toml`, in deterministic path order.
fn read_manifests(root: &Path) -> Vec<(String, String)> {
    let mut out = Vec::new();
    if let Ok(text) = std::fs::read_to_string(root.join("Cargo.toml")) {
        out.push((String::new(), text));
    }
    let mut dirs: Vec<_> = std::fs::read_dir(root.join("crates"))
        .map(|rd| rd.flatten().map(|e| e.path()).collect())
        .unwrap_or_default();
    dirs.sort();
    for dir in dirs {
        if let Ok(text) = std::fs::read_to_string(dir.join("Cargo.toml")) {
            if let Some(name) = dir.file_name().and_then(|n| n.to_str()) {
                out.push((format!("crates/{name}"), text));
            }
        }
    }
    out
}

/// The root `DESIGN.md`, when present.
fn read_design_md(root: &Path) -> Option<String> {
    std::fs::read_to_string(root.join("DESIGN.md")).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_clean_requires_no_diagnostics() {
        let mut r = LintReport::default();
        assert!(r.is_clean());
        r.diagnostics.push(Diagnostic {
            rule: "A1",
            path: ALLOWLIST_FILE.into(),
            line: 1,
            line_text: "[P1] x.rs".into(),
            message: "stale".into(),
        });
        assert!(!r.is_clean());
    }
}
