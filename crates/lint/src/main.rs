//! CLI driver: `cargo run -p spamward-lint [--quiet] [--json] [ROOT]`,
//! plus `--explain RULE` to print one rule's rationale.
//!
//! Exit status: 0 clean, 1 violations (including stale allowlist entries),
//! 2 the lint itself failed (unreadable files, malformed `lint-allow.toml`,
//! bad arguments). `--json` writes the stable machine-readable report
//! (schema in [`spamward_lint::json`]) to stdout; the human summary stays
//! on stderr either way.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut quiet = false;
    let mut json = false;
    let mut root_arg: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quiet" | "-q" => quiet = true,
            "--json" => json = true,
            "--explain" => {
                let Some(rule) = args.next() else {
                    eprintln!("spamward-lint: --explain needs a rule id (e.g. --explain C1)");
                    return ExitCode::from(2);
                };
                match spamward_lint::rules::explain(&rule) {
                    Some(text) => {
                        println!("{text}");
                        return ExitCode::SUCCESS;
                    }
                    None => {
                        eprintln!(
                            "spamward-lint: unknown rule {rule:?} (known: {})",
                            spamward_lint::rules::RULE_IDS.join(", ")
                        );
                        return ExitCode::from(2);
                    }
                }
            }
            "--help" | "-h" => {
                println!("usage: spamward-lint [--quiet] [--json] [ROOT]");
                println!("       spamward-lint --explain RULE");
                println!("Checks per-file rules (D1-D3, P1-P2, O1, S1, F1) and cross-file");
                println!("rules (C1, C2, O2, R1) over the workspace semantic model;");
                println!("stale lint-allow.toml entries are reported as A1.");
                println!("See DESIGN.md \"Determinism & panic-safety rules\".");
                return ExitCode::SUCCESS;
            }
            other if !other.starts_with('-') => root_arg = Some(PathBuf::from(other)),
            other => {
                eprintln!("spamward-lint: unknown flag {other:?}");
                return ExitCode::from(2);
            }
        }
    }

    let root = match root_arg.or_else(|| {
        std::env::current_dir().ok().and_then(|d| spamward_lint::walk::find_workspace_root(&d))
    }) {
        Some(r) => r,
        None => {
            eprintln!(
                "spamward-lint: could not locate the workspace root (pass it as an argument)"
            );
            return ExitCode::from(2);
        }
    };

    let report = match spamward_lint::lint_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("spamward-lint: error: {e}");
            return ExitCode::from(2);
        }
    };

    if json {
        print!("{}", spamward_lint::json::render(&report));
    } else {
        for diag in &report.diagnostics {
            println!("{diag}");
            if !quiet {
                println!("    {}", diag.line_text);
            }
        }
    }

    if !quiet {
        eprintln!(
            "spamward-lint: {} file(s), {} violation(s), {} suppressed",
            report.files_scanned,
            report.diagnostics.len(),
            report.suppressed.len(),
        );
    }

    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
