//! CLI driver: `cargo run -p spamward-lint [--quiet] [ROOT]`.
//!
//! Exit status: 0 clean, 1 violations or stale allowlist entries, 2 the
//! lint itself failed (unreadable files, malformed `lint-allow.toml`).

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut quiet = false;
    let mut root_arg: Option<PathBuf> = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--quiet" | "-q" => quiet = true,
            "--help" | "-h" => {
                println!("usage: spamward-lint [--quiet] [ROOT]");
                println!("Checks determinism (D1-D3) and panic-safety (P1-P2) rules.");
                println!("See DESIGN.md \"Determinism & panic-safety rules\".");
                return ExitCode::SUCCESS;
            }
            other if !other.starts_with('-') => root_arg = Some(PathBuf::from(other)),
            other => {
                eprintln!("spamward-lint: unknown flag {other:?}");
                return ExitCode::from(2);
            }
        }
    }

    let root = match root_arg.or_else(|| {
        std::env::current_dir().ok().and_then(|d| spamward_lint::walk::find_workspace_root(&d))
    }) {
        Some(r) => r,
        None => {
            eprintln!(
                "spamward-lint: could not locate the workspace root (pass it as an argument)"
            );
            return ExitCode::from(2);
        }
    };

    let report = match spamward_lint::lint_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("spamward-lint: error: {e}");
            return ExitCode::from(2);
        }
    };

    for diag in &report.diagnostics {
        println!("{diag}");
        if !quiet {
            println!("    {}", diag.line_text);
        }
    }
    for entry in &report.stale_entries {
        println!(
            "lint-allow.toml:{}: stale entry {} — matches nothing; remove it",
            entry.defined_at, entry
        );
    }

    if !quiet {
        eprintln!(
            "spamward-lint: {} file(s), {} violation(s), {} suppressed, {} stale allow entr(ies)",
            report.files_scanned,
            report.diagnostics.len(),
            report.suppressed.len(),
            report.stale_entries.len()
        );
    }

    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
