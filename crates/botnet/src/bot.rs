//! A running bot sample: executes campaigns against a mail world.

use crate::behavior::RetryBehavior;
use crate::campaign::Campaign;
use crate::family::MalwareFamily;
use spamward_dns::DomainName;
use spamward_mta::{MailWorld, MxStrategy, WorldSim};
use spamward_sim::{Actor, DetRng, SimDuration, SimTime, Wake};
use spamward_smtp::{Dialect, EmailAddress, Envelope, Message, ReversePath};
use std::net::Ipv4Addr;

/// One delivery attempt a bot made (the raw series behind Figs. 3 and 4).
#[derive(Debug, Clone)]
pub struct BotAttempt {
    /// The victim of this attempt.
    pub recipient: EmailAddress,
    /// 1-based attempt number for this victim.
    pub attempt: u32,
    /// When the attempt happened.
    pub at: SimTime,
    /// Delay since the bot's *first* attempt for this victim.
    pub since_first: SimDuration,
    /// Whether the message was accepted.
    pub delivered: bool,
}

/// The outcome of running one sample against one campaign.
#[derive(Debug, Clone, Default)]
pub struct BotRunReport {
    /// Every attempt, in chronological order.
    pub attempts: Vec<BotAttempt>,
    /// Victims that received the message.
    pub delivered: Vec<EmailAddress>,
    /// Victims the bot gave up on.
    pub failed: Vec<EmailAddress>,
    /// Connection attempts per MX preference rank: entry `k` counts how
    /// often the bot tried the victim's rank-`k` exchanger (0 = primary).
    /// The shape of this vector *is* the family's [`MxStrategy`]
    /// (`spamward_mta::MxStrategy`) as observed from the victim side —
    /// nolisting works exactly when entry 0 is the only non-zero entry.
    pub mx_rank_attempts: Vec<u64>,
}

impl BotRunReport {
    /// Fraction of victims reached.
    pub fn delivery_rate(&self) -> f64 {
        let total = self.delivered.len() + self.failed.len();
        if total == 0 {
            return 0.0;
        }
        self.delivered.len() as f64 / total as f64
    }

    /// Whether *any* spam got through — the paper's Table II criterion
    /// (a ✓ means the defense blocked everything).
    pub fn any_delivered(&self) -> bool {
        !self.delivered.is_empty()
    }
}

/// One recipient's delivery chain as a self-rescheduling engine actor:
/// every wake-up is one SMTP attempt, and the family's retry ladder
/// ([`RetryBehavior`]) schedules the next wake-up. Shared by
/// [`BotSample`] and [`crate::AdaptiveBot`], which differ only in how
/// they rotate source hosts.
pub(crate) struct ChainActor {
    pub(crate) name: &'static str,
    pub(crate) hosts: Vec<Ipv4Addr>,
    pub(crate) host_cursor: usize,
    pub(crate) dialect: Dialect,
    pub(crate) strategy: MxStrategy,
    pub(crate) behavior: RetryBehavior,
    pub(crate) sender: ReversePath,
    pub(crate) message: Message,
    pub(crate) rcpt: EmailAddress,
    pub(crate) domain: DomainName,
    pub(crate) rng: DetRng,
    pub(crate) record_mx_ranks: bool,
    pub(crate) first_at: SimTime,
    pub(crate) attempt_no: u32,
    pub(crate) attempts: Vec<BotAttempt>,
    pub(crate) mx_rank_attempts: Vec<u64>,
    pub(crate) delivered: bool,
}

impl Actor<MailWorld> for ChainActor {
    fn name(&self) -> &str {
        self.name
    }

    fn wake(&mut self, now: SimTime, world: &mut MailWorld) -> Wake {
        self.attempt_no += 1;
        let source_ip = self.hosts[self.host_cursor % self.hosts.len()];
        self.host_cursor += 1;
        let envelope = Envelope::builder()
            .client_ip(source_ip)
            .helo(&self.dialect.helo_argument(source_ip))
            .mail_from(self.sender.clone())
            .rcpt(self.rcpt.clone())
            .build();
        let attempt = world.attempt_delivery(
            now,
            &self.dialect,
            self.strategy,
            &self.domain,
            envelope,
            self.message.clone(),
        );
        if self.record_mx_ranks {
            for mx in &attempt.mx_trail {
                let rank = mx.preference_rank;
                if self.mx_rank_attempts.len() <= rank {
                    self.mx_rank_attempts.resize(rank + 1, 0);
                }
                self.mx_rank_attempts[rank] += 1;
            }
        }
        let delivered = attempt.outcome.is_delivered();
        self.attempts.push(BotAttempt {
            recipient: self.rcpt.clone(),
            attempt: self.attempt_no,
            at: now,
            since_first: now.elapsed_since(self.first_at),
            delivered,
        });
        if delivered {
            self.delivered = true;
            return Wake::Idle;
        }
        match self.behavior.nth_retry_delay(self.attempt_no, &mut self.rng) {
            Some(delay) => Wake::At(self.first_at + delay),
            None => Wake::Idle,
        }
    }
}

/// One executable malware sample.
///
/// Samples of the same family share behaviour (the paper found no
/// intra-family variation); the per-sample seed only jitters retry timing.
///
/// # Example
///
/// ```
/// use spamward_botnet::{BotSample, MalwareFamily};
/// use std::net::Ipv4Addr;
///
/// let bot = BotSample::new(MalwareFamily::Kelihos, 0, Ipv4Addr::new(203, 0, 113, 77));
/// assert_eq!(bot.family(), MalwareFamily::Kelihos);
/// ```
#[derive(Debug, Clone)]
pub struct BotSample {
    family: MalwareFamily,
    sample_idx: u32,
    ip: Ipv4Addr,
    rng: DetRng,
}

impl BotSample {
    /// Creates sample `sample_idx` of `family`, sending from `ip`.
    pub fn new(family: MalwareFamily, sample_idx: u32, ip: Ipv4Addr) -> Self {
        let rng =
            DetRng::seed(0x0B07).fork(family.name()).fork_idx("sample", u64::from(sample_idx));
        BotSample { family, sample_idx, ip, rng }
    }

    /// The sample's family.
    pub fn family(&self) -> MalwareFamily {
        self.family
    }

    /// The sample's index within its family (0-based).
    pub fn sample_idx(&self) -> u32 {
        self.sample_idx
    }

    /// The infected machine's address.
    pub fn ip(&self) -> Ipv4Addr {
        self.ip
    }

    /// Runs the whole campaign to completion against `world`, starting at
    /// `start` and giving up at `horizon` (the paper ran samples for 30
    /// minutes; Fig. 4 needed ~25 hours).
    ///
    /// Each victim is attempted independently — one SMTP transaction per
    /// recipient, the fire-and-forget pattern — as its own engine episode
    /// ([`WorldSim::episode`]): the chain is a [`ChainActor`] whose retry
    /// ladder self-reschedules until delivery, give-up, or the horizon.
    pub fn run_campaign(
        &mut self,
        world: &mut MailWorld,
        campaign: &Campaign,
        start: SimTime,
        horizon: SimTime,
    ) -> BotRunReport {
        let mut report = BotRunReport::default();
        let strategy = self.family.mx_strategy();
        let dialect = self.family.dialect();
        let behavior = self.family.retry_behavior();

        for rcpt in &campaign.recipients {
            let domain: DomainName = match rcpt.domain().parse() {
                Ok(d) => d,
                Err(_) => {
                    report.failed.push(rcpt.clone());
                    continue;
                }
            };
            let chain = ChainActor {
                name: crate::metrics::ACTOR_BOTNET_CHAIN,
                hosts: vec![self.ip],
                host_cursor: 0,
                dialect: dialect.clone(),
                strategy,
                behavior: behavior.clone(),
                sender: campaign.sender.clone(),
                message: campaign.message.clone(),
                rcpt: rcpt.clone(),
                domain,
                rng: self.rng.fork_idx("msg", report.attempts.len() as u64),
                record_mx_ranks: true,
                first_at: start,
                attempt_no: 0,
                attempts: Vec::new(),
                mx_rank_attempts: Vec::new(),
                delivered: false,
            };
            let (chain, _outcome, _end) = WorldSim::episode(world, chain, start, Some(horizon));
            for (rank, n) in chain.mx_rank_attempts.iter().enumerate() {
                if report.mx_rank_attempts.len() <= rank {
                    report.mx_rank_attempts.resize(rank + 1, 0);
                }
                report.mx_rank_attempts[rank] += n;
            }
            report.attempts.extend(chain.attempts);
            if chain.delivered {
                report.delivered.push(rcpt.clone());
            } else {
                report.failed.push(rcpt.clone());
            }
        }
        report
    }

    /// Builds the full sample roster of Table I: 3 Cutwail, 6 Kelihos,
    /// 1 Darkmailer, 1 Darkmailer v3 — eleven bots, each on its own
    /// infected host address drawn from `pool_base`.
    pub fn table_i_roster(pool_base: Ipv4Addr) -> Vec<BotSample> {
        let mut pool = spamward_net::IpPool::new(pool_base);
        let mut out = Vec::new();
        for family in MalwareFamily::ALL {
            for idx in 0..family.sample_count() {
                out.push(BotSample::new(family, idx, pool.next_ip()));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spamward_dns::Zone;
    use spamward_greylist::{Greylist, GreylistConfig};
    use spamward_mta::ReceivingMta;
    use spamward_net::{PortState, SMTP_PORT};

    const VICTIM_DOMAIN: &str = "victim.example";

    fn plain_world() -> (MailWorld, Ipv4Addr) {
        let mut w = MailWorld::new(33);
        let mx = Ipv4Addr::new(192, 0, 2, 10);
        w.install_server(ReceivingMta::new("mail.victim.example", mx));
        w.dns.publish(Zone::single_mx(VICTIM_DOMAIN.parse().unwrap(), mx));
        (w, mx)
    }

    fn nolisting_world() -> (MailWorld, Ipv4Addr) {
        let mut w = MailWorld::new(34);
        let dead = Ipv4Addr::new(192, 0, 2, 20);
        let live = Ipv4Addr::new(192, 0, 2, 21);
        w.network.host("smtp.victim.example").ip(dead).port(SMTP_PORT, PortState::Closed).build();
        w.install_server(ReceivingMta::new("smtp1.victim.example", live));
        w.dns.publish(Zone::nolisting(VICTIM_DOMAIN.parse().unwrap(), dead, live));
        (w, live)
    }

    fn greylist_world(delay_secs: u64) -> (MailWorld, Ipv4Addr) {
        let mut w = MailWorld::new(35);
        let mx = Ipv4Addr::new(192, 0, 2, 30);
        w.install_server(
            ReceivingMta::new("mail.victim.example", mx).with_greylist(Greylist::new(
                GreylistConfig::with_delay(SimDuration::from_secs(delay_secs))
                    .without_auto_whitelist(),
            )),
        );
        w.dns.publish(Zone::single_mx(VICTIM_DOMAIN.parse().unwrap(), mx));
        (w, mx)
    }

    fn campaign(n: usize) -> Campaign {
        let mut rng = DetRng::seed(77).fork("test-campaign");
        Campaign::synthetic(VICTIM_DOMAIN, n, &mut rng)
    }

    fn run(family: MalwareFamily, world: &mut MailWorld, horizon_secs: u64) -> BotRunReport {
        let mut bot = BotSample::new(family, 0, Ipv4Addr::new(203, 0, 113, 50));
        bot.run_campaign(world, &campaign(5), SimTime::ZERO, SimTime::from_secs(horizon_secs))
    }

    #[test]
    fn all_families_deliver_against_unprotected_server() {
        for family in MalwareFamily::ALL {
            let (mut w, mx) = plain_world();
            let report = run(family, &mut w, 1_800);
            assert_eq!(report.delivery_rate(), 1.0, "{family} blocked by nothing?");
            assert_eq!(w.server(mx).unwrap().mailbox().len(), 5);
        }
    }

    #[test]
    fn nolisting_blocks_kelihos_only() {
        // Table II, nolisting column.
        for family in MalwareFamily::ALL {
            let (mut w, _) = nolisting_world();
            let report = run(family, &mut w, 200_000);
            let expected_blocked = family == MalwareFamily::Kelihos;
            assert_eq!(
                !report.any_delivered(),
                expected_blocked,
                "{family}: nolisting expected blocked={expected_blocked}"
            );
        }
    }

    #[test]
    fn greylisting_blocks_all_but_kelihos() {
        // Table II, greylisting column (300 s threshold, 25 h horizon).
        for family in MalwareFamily::ALL {
            let (mut w, _) = greylist_world(300);
            let report = run(family, &mut w, 90_000);
            let expected_blocked = family != MalwareFamily::Kelihos;
            assert_eq!(
                !report.any_delivered(),
                expected_blocked,
                "{family}: greylisting expected blocked={expected_blocked}"
            );
        }
    }

    #[test]
    fn kelihos_delivers_on_first_retry_at_300s_threshold() {
        let (mut w, _) = greylist_world(300);
        let report = run(MalwareFamily::Kelihos, &mut w, 90_000);
        assert!(report.any_delivered());
        for rcpt_attempts in report
            .delivered
            .iter()
            .map(|r| report.attempts.iter().filter(|a| &a.recipient == r).collect::<Vec<_>>())
        {
            assert_eq!(rcpt_attempts.len(), 2, "greylisted once, then delivered on retry 1");
            let final_delay = rcpt_attempts.last().unwrap().since_first;
            assert!(final_delay >= SimDuration::from_secs(300));
            assert!(final_delay < SimDuration::from_secs(600));
        }
    }

    #[test]
    fn kelihos_needs_third_retry_at_21600s_threshold() {
        // Fig. 4: only the 80–90 ks peak clears a six-hour threshold.
        let (mut w, _) = greylist_world(21_600);
        let report = run(MalwareFamily::Kelihos, &mut w, 100_000);
        assert!(report.any_delivered(), "Kelihos eventually clears 6 h greylisting");
        let delivered_attempts: Vec<_> = report.attempts.iter().filter(|a| a.delivered).collect();
        for a in &delivered_attempts {
            assert_eq!(a.attempt, 4, "initial + 3 retries");
            assert!(a.since_first >= SimDuration::from_secs(80_000));
            assert!(a.since_first < SimDuration::from_secs(90_000));
        }
        // Failed attempts cluster in the documented peaks (blue dots).
        let failed: Vec<SimDuration> = report
            .attempts
            .iter()
            .filter(|a| !a.delivered && a.attempt > 1)
            .map(|a| a.since_first)
            .collect();
        assert!(failed
            .iter()
            .all(|d| (*d >= SimDuration::from_secs(300) && *d < SimDuration::from_secs(600))
                || (*d >= SimDuration::from_secs(4_500) && *d < SimDuration::from_secs(5_500))));
    }

    #[test]
    fn kelihos_gives_up_within_30_minute_run() {
        // The paper's standard 30-minute observation window is too short
        // for Kelihos to pass a 6 h greylist — the long-run experiment
        // exists precisely because of this.
        let (mut w, _) = greylist_world(21_600);
        let report = run(MalwareFamily::Kelihos, &mut w, 1_800);
        assert!(!report.any_delivered());
        // Only the first-attempt + possibly the 300–600 s retry fit.
        assert!(report.attempts.iter().all(|a| a.attempt <= 2));
    }

    #[test]
    fn cutwail_attempts_once_per_victim() {
        let (mut w, _) = greylist_world(300);
        let report = run(MalwareFamily::Cutwail, &mut w, 90_000);
        assert_eq!(report.attempts.len(), 5, "fire-and-forget: one attempt per victim");
        assert!(report.attempts.iter().all(|a| a.attempt == 1));
        assert_eq!(report.delivery_rate(), 0.0);
    }

    #[test]
    fn roster_matches_table_i() {
        let roster = BotSample::table_i_roster(Ipv4Addr::new(203, 0, 113, 1));
        assert_eq!(roster.len(), 11);
        let kelihos = roster.iter().filter(|b| b.family() == MalwareFamily::Kelihos).count();
        assert_eq!(kelihos, 6);
        // All on distinct IPs.
        let mut ips: Vec<Ipv4Addr> = roster.iter().map(|b| b.ip()).collect();
        ips.sort();
        ips.dedup();
        assert_eq!(ips.len(), 11);
    }

    #[test]
    fn campaign_records_engine_stats_per_chain() {
        let (mut w, _) = greylist_world(300);
        let report = run(MalwareFamily::Kelihos, &mut w, 90_000);
        assert!(report.any_delivered());
        // One episode per recipient chain, each delivering on retry 1.
        assert_eq!(w.engine_stats.actor_events["botnet.chain"], vec![2u64; 5]);
        assert_eq!(w.engine_stats.events, 10);
        assert_eq!(w.engine_stats.outcomes.drained, 5);
    }

    #[test]
    fn samples_of_same_family_share_behaviour() {
        // Same outcome class for every Kelihos sample (jitter differs).
        for idx in 0..3 {
            let (mut w, _) = greylist_world(300);
            let mut bot =
                BotSample::new(MalwareFamily::Kelihos, idx, Ipv4Addr::new(203, 0, 113, 60));
            let report =
                bot.run_campaign(&mut w, &campaign(2), SimTime::ZERO, SimTime::from_secs(90_000));
            assert!(report.any_delivered(), "sample {idx} must behave like its family");
        }
    }
}
