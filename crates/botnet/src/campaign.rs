//! Spam campaigns: the jobs a botmaster hands to its bots.

use spamward_sim::DetRng;
use spamward_smtp::{EmailAddress, Message, ReversePath};

/// One spam job: a single message to a list of victims.
///
/// Greylisting's one-spam-task control (§V-A) depends on the message being
/// *identical* across recipients and across retries; campaigns therefore
/// carry exactly one [`Message`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Campaign {
    /// The (spoofed) envelope sender.
    pub sender: ReversePath,
    /// The victims, in delivery order.
    pub recipients: Vec<EmailAddress>,
    /// The one message of this spam task.
    pub message: Message,
}

impl Campaign {
    /// Starts building a campaign.
    pub fn builder() -> CampaignBuilder {
        CampaignBuilder::default()
    }

    /// A ready-made pharmacy-spam campaign against `n` victims at
    /// `victim_domain`, deterministically derived from `rng`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn synthetic(victim_domain: &str, n: usize, rng: &mut DetRng) -> Campaign {
        assert!(n > 0, "campaign needs at least one recipient");
        let sender_id = rng.below(1_000_000);
        let sender: EmailAddress = format!("promo{sender_id}@pharma-deals.example")
            .parse()
            .expect("synthetic sender is valid");
        let recipients = (0..n)
            .map(|i| {
                format!("user{i:04}@{victim_domain}").parse().expect("synthetic recipient is valid")
            })
            .collect();
        let message = Message::builder()
            .header("From", &sender.to_string())
            .header("Subject", "Best prices on meds !!!")
            .header("X-Mailer", "totally-legit-mailer 1.0")
            .body(&format!(
                "Click now: http://pharma-deals.example/?cid={:08x}",
                rng.below(u64::from(u32::MAX))
            ))
            .build();
        Campaign { sender: ReversePath::Address(sender), recipients, message }
    }

    /// Number of victims.
    pub fn len(&self) -> usize {
        self.recipients.len()
    }

    /// Whether the campaign has no victims (never true for built ones).
    pub fn is_empty(&self) -> bool {
        self.recipients.is_empty()
    }
}

/// Builder for [`Campaign`].
#[derive(Debug, Default)]
pub struct CampaignBuilder {
    sender: Option<ReversePath>,
    recipients: Vec<EmailAddress>,
    message: Option<Message>,
}

impl CampaignBuilder {
    /// Sets the envelope sender.
    pub fn sender(mut self, sender: impl Into<ReversePath>) -> Self {
        self.sender = Some(sender.into());
        self
    }

    /// Adds one victim.
    pub fn recipient(mut self, address: EmailAddress) -> Self {
        self.recipients.push(address);
        self
    }

    /// Adds many victims.
    pub fn recipients(mut self, addresses: impl IntoIterator<Item = EmailAddress>) -> Self {
        self.recipients.extend(addresses);
        self
    }

    /// Sets the message.
    pub fn message(mut self, message: Message) -> Self {
        self.message = Some(message);
        self
    }

    /// Finishes the campaign.
    ///
    /// # Panics
    ///
    /// Panics when sender, message, or all recipients are missing.
    pub fn build(self) -> Campaign {
        assert!(!self.recipients.is_empty(), "campaign needs at least one recipient");
        Campaign {
            sender: self.sender.expect("campaign needs a sender"),
            recipients: self.recipients,
            message: self.message.expect("campaign needs a message"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_is_deterministic_and_identical_message() {
        let mut r1 = DetRng::seed(5).fork("campaign");
        let mut r2 = DetRng::seed(5).fork("campaign");
        let a = Campaign::synthetic("foo.net", 10, &mut r1);
        let b = Campaign::synthetic("foo.net", 10, &mut r2);
        assert_eq!(a, b);
        assert_eq!(a.len(), 10);
        assert_eq!(a.message.digest(), b.message.digest(), "one spam task = one message");
        assert!(a.recipients.iter().all(|r| r.domain() == "foo.net"));
    }

    #[test]
    fn different_seeds_differ() {
        let mut r1 = DetRng::seed(5).fork("campaign");
        let mut r2 = DetRng::seed(6).fork("campaign");
        let a = Campaign::synthetic("foo.net", 3, &mut r1);
        let b = Campaign::synthetic("foo.net", 3, &mut r2);
        assert_ne!(a.message.digest(), b.message.digest());
    }

    #[test]
    fn builder_happy_path() {
        let c = Campaign::builder()
            .sender("spam@bot.example".parse::<EmailAddress>().unwrap())
            .recipient("a@foo.net".parse().unwrap())
            .recipients(vec!["b@foo.net".parse().unwrap()])
            .message(Message::builder().body("x").build())
            .build();
        assert_eq!(c.len(), 2);
        assert!(!c.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one recipient")]
    fn builder_requires_recipients() {
        let _ = Campaign::builder()
            .sender("spam@bot.example".parse::<EmailAddress>().unwrap())
            .message(Message::builder().body("x").build())
            .build();
    }

    #[test]
    #[should_panic(expected = "at least one recipient")]
    fn synthetic_requires_recipients() {
        let mut rng = DetRng::seed(1);
        let _ = Campaign::synthetic("foo.net", 0, &mut rng);
    }
}
