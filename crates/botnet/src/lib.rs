//! Behavioral models of the spam malware families studied by the paper.
//!
//! The paper ran live binaries of the four families responsible for 93.02%
//! of 2014 botnet spam (Table I) inside an instrumented VM and observed two
//! behavioural axes per family:
//!
//! | Family          | botnet-spam share | MX selection    | Greylist retry |
//! |-----------------|-------------------|-----------------|----------------|
//! | Cutwail         | 46.90%            | secondary only  | never          |
//! | Kelihos         | 36.33%            | primary only    | ≥300 s ladder  |
//! | Darkmailer      | 7.21%             | RFC compliant   | never          |
//! | Darkmailer v3   | 2.58%             | RFC compliant   | never          |
//!
//! Those two axes are precisely what nolisting and greylisting test, and
//! the models here make them executable (the substitution DESIGN.md
//! documents): a [`BotSample`] drives real SMTP sessions through
//! [`spamward_mta::MailWorld`], selecting MX targets per
//! [`MalwareFamily::mx_strategy`] and retrying per [`RetryBehavior`] — for
//! Kelihos, the empirically observed attempt peaks at 300–600 s, ~5 000 s
//! and 80 000–90 000 s that Figs. 3 and 4 plot.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adaptive;
mod behavior;
mod bot;
mod campaign;
mod family;
pub mod metrics;

pub use adaptive::{synthetic_recipients, AdaptiveBot};
pub use behavior::{BotRetrySchedule, RetryBehavior};
pub use bot::{BotAttempt, BotRunReport, BotSample};
pub use campaign::{Campaign, CampaignBuilder};
pub use family::{FamilyShare, MalwareFamily, BOTNET_FRACTION_OF_GLOBAL_SPAM};
