//! Metric names and collectors for the botnet crate.
//!
//! All `botnet.*` registry names live here (the O1 lint rule). Campaign
//! runs accumulate plain counters on [`BotRunReport`]; collection labels
//! them per family and per MX preference rank — the observable shape of
//! the paper's four-way MX-selection taxonomy (§IV-B).

use crate::bot::BotRunReport;
use crate::family::MalwareFamily;
use spamward_obs::Registry;

/// Delivery attempts a family made (SMTP transactions, counting retries).
pub const PREFIX_ATTEMPTS: &str = "botnet.attempts";
/// Victims a family reached.
pub const PREFIX_DELIVERED: &str = "botnet.delivered";
/// Victims a family gave up on.
pub const PREFIX_FAILED: &str = "botnet.failed";
/// Connection attempts per MX preference rank (`rank0` = primary).
pub const PREFIX_MX_RANK: &str = "botnet.mx_rank";

/// Actor name of a fixed-dialect bot chain on the engine — the suffix its
/// episode histogram gets under `sim.engine.episode_events.`.
pub const ACTOR_BOTNET_CHAIN: &str = "botnet.chain";
/// Actor name of the adaptive (dialect-switching) bot chain.
pub const ACTOR_BOTNET_ADAPTIVE: &str = "botnet.adaptive";

/// Canonical metric-name segment for a family: lowercase alphanumerics,
/// runs of anything else collapsed to `_` ("Darkmailer(v3)" → `darkmailer_v3`).
pub fn family_slug(family: MalwareFamily) -> String {
    let mut slug = String::new();
    for c in family.name().chars() {
        if c.is_ascii_alphanumeric() {
            slug.push(c.to_ascii_lowercase());
        } else if !slug.ends_with('_') && !slug.is_empty() {
            slug.push('_');
        }
    }
    slug.trim_end_matches('_').to_owned()
}

/// Exports one campaign run under per-family names:
/// `botnet.attempts.<family>`, `botnet.delivered.<family>`,
/// `botnet.failed.<family>`, and `botnet.mx_rank.<family>.rank<k>`.
pub fn collect_run(family: MalwareFamily, report: &BotRunReport, reg: &mut Registry) {
    let slug = family_slug(family);
    reg.record_counter(&format!("{PREFIX_ATTEMPTS}.{slug}"), report.attempts.len() as u64);
    reg.record_counter(&format!("{PREFIX_DELIVERED}.{slug}"), report.delivered.len() as u64);
    reg.record_counter(&format!("{PREFIX_FAILED}.{slug}"), report.failed.len() as u64);
    for (rank, count) in report.mx_rank_attempts.iter().enumerate() {
        if *count > 0 {
            reg.record_counter(&format!("{PREFIX_MX_RANK}.{slug}.rank{rank}"), *count);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bot::BotSample;
    use crate::campaign::Campaign;
    use spamward_dns::Zone;
    use spamward_mta::ReceivingMta;
    use spamward_net::{PortState, SMTP_PORT};
    use spamward_sim::{DetRng, SimTime};
    use std::net::Ipv4Addr;

    #[test]
    fn family_slugs_are_name_safe() {
        assert_eq!(family_slug(MalwareFamily::Cutwail), "cutwail");
        assert_eq!(family_slug(MalwareFamily::DarkmailerV3), "darkmailer_v3");
    }

    #[test]
    fn secondary_only_bot_counts_only_rank_one() {
        // A nolisting victim: dead primary, live secondary. Cutwail skips
        // the primary outright, so only rank 1 accumulates.
        let mut w = spamward_mta::MailWorld::new(3);
        let dead = Ipv4Addr::new(192, 0, 2, 20);
        let live = Ipv4Addr::new(192, 0, 2, 21);
        w.network.host("smtp.victim.example").ip(dead).port(SMTP_PORT, PortState::Closed).build();
        w.install_server(ReceivingMta::new("smtp1.victim.example", live));
        w.dns.publish(Zone::nolisting("victim.example".parse().unwrap(), dead, live));

        let mut rng = DetRng::seed(5).fork("metrics-test");
        let campaign = Campaign::synthetic("victim.example", 3, &mut rng);
        let mut bot = BotSample::new(MalwareFamily::Cutwail, 0, Ipv4Addr::new(203, 0, 113, 50));
        let report = bot.run_campaign(&mut w, &campaign, SimTime::ZERO, SimTime::from_secs(1_800));

        assert_eq!(report.mx_rank_attempts, vec![0, 3]);
        let mut reg = Registry::new();
        collect_run(MalwareFamily::Cutwail, &report, &mut reg);
        assert_eq!(reg.counter("botnet.mx_rank.cutwail.rank1"), Some(3));
        assert_eq!(reg.counter("botnet.mx_rank.cutwail.rank0"), None);
        assert_eq!(reg.counter("botnet.delivered.cutwail"), Some(3));
        assert_eq!(reg.counter("botnet.attempts.cutwail"), Some(3));
    }
}
