//! The four families of Table I and their published spam shares.

use crate::behavior::{BotRetrySchedule, RetryBehavior};
use serde::{Deserialize, Serialize};
use spamward_mta::MxStrategy;
use spamward_smtp::{Dialect, HeloStyle};
use std::fmt;

/// Fraction of 2014 world spam sent from botnets (Symantec ISTR, via the
/// paper: "76% of the world spam was sent from botnets").
pub const BOTNET_FRACTION_OF_GLOBAL_SPAM: f64 = 0.76;

/// The malware families of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MalwareFamily {
    /// Cutwail — 46.90% of botnet spam; skips straight to the lowest-
    /// priority MX; never retries a greylisted message.
    Cutwail,
    /// Kelihos — 36.33%; targets only the primary MX; retries greylisted
    /// messages on a ladder starting no earlier than ~300 s.
    Kelihos,
    /// Darkmailer — 7.21%; RFC-compliant MX walking; never retries.
    Darkmailer,
    /// Darkmailer v3 — 2.58%; same protocol behaviour as Darkmailer.
    DarkmailerV3,
}

impl fmt::Display for MalwareFamily {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One row of Table I.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FamilyShare {
    /// The family.
    pub family: MalwareFamily,
    /// Percentage of 2014 botnet spam (Table I column 2).
    pub botnet_spam_pct: f64,
    /// Number of samples the paper analyzed (Table I column 3).
    pub samples: u32,
}

impl MalwareFamily {
    /// All four families, in Table I row order.
    pub const ALL: [MalwareFamily; 4] = [
        MalwareFamily::Cutwail,
        MalwareFamily::Kelihos,
        MalwareFamily::Darkmailer,
        MalwareFamily::DarkmailerV3,
    ];

    /// The family's display name.
    pub fn name(self) -> &'static str {
        match self {
            MalwareFamily::Cutwail => "Cutwail",
            MalwareFamily::Kelihos => "Kelihos",
            MalwareFamily::Darkmailer => "Darkmailer",
            MalwareFamily::DarkmailerV3 => "Darkmailer(v3)",
        }
    }

    /// Percentage of 2014 botnet spam attributed to the family (Table I).
    pub fn botnet_spam_pct(self) -> f64 {
        match self {
            MalwareFamily::Cutwail => 46.90,
            MalwareFamily::Kelihos => 36.33,
            MalwareFamily::Darkmailer => 7.21,
            MalwareFamily::DarkmailerV3 => 2.58,
        }
    }

    /// Number of distinct samples the paper collected (Table I).
    pub fn sample_count(self) -> u32 {
        match self {
            MalwareFamily::Cutwail => 3,
            MalwareFamily::Kelihos => 6,
            MalwareFamily::Darkmailer => 1,
            MalwareFamily::DarkmailerV3 => 1,
        }
    }

    /// Which MX records the family targets (§IV-B taxonomy).
    pub fn mx_strategy(self) -> MxStrategy {
        match self {
            MalwareFamily::Cutwail => MxStrategy::SecondaryOnly,
            MalwareFamily::Kelihos => MxStrategy::PrimaryOnly,
            MalwareFamily::Darkmailer | MalwareFamily::DarkmailerV3 => MxStrategy::RfcCompliant,
        }
    }

    /// How the family reacts to 4xx deferrals (§V-A observations).
    pub fn retry_behavior(self) -> RetryBehavior {
        match self {
            MalwareFamily::Kelihos => RetryBehavior::Scheduled(BotRetrySchedule::kelihos()),
            _ => RetryBehavior::FireAndForget,
        }
    }

    /// The family's SMTP session dialect. All four are bot routines, not
    /// full MTAs, but the Darkmailers speak noticeably better SMTP.
    pub fn dialect(self) -> Dialect {
        match self {
            MalwareFamily::Cutwail => Dialect {
                name: "cutwail".into(),
                uses_ehlo: false,
                helo_style: HeloStyle::AddressLiteral,
                quits_on_failure: false,
                aborts_on_first_rcpt_error: true,
                resets_between_messages: false,
                waits_for_banner: false,
            },
            MalwareFamily::Kelihos => Dialect {
                name: "kelihos".into(),
                uses_ehlo: false,
                helo_style: HeloStyle::Fixed("localhost".into()),
                quits_on_failure: false,
                aborts_on_first_rcpt_error: true,
                resets_between_messages: false,
                waits_for_banner: false,
            },
            MalwareFamily::Darkmailer | MalwareFamily::DarkmailerV3 => Dialect {
                name: if self == MalwareFamily::Darkmailer { "darkmailer" } else { "darkmailer3" }
                    .into(),
                uses_ehlo: true,
                helo_style: HeloStyle::Fixed("mail.local".into()),
                quits_on_failure: true,
                aborts_on_first_rcpt_error: false,
                resets_between_messages: false,
                // The Darkmailers speak near-correct SMTP and do wait.
                waits_for_banner: true,
            },
        }
    }

    /// The family's share of *global* spam (botnet share × botnet fraction
    /// of world spam).
    pub fn global_spam_pct(self) -> f64 {
        self.botnet_spam_pct() * BOTNET_FRACTION_OF_GLOBAL_SPAM
    }

    /// Table I as data: one [`FamilyShare`] per family plus the totals the
    /// paper reports (93.02% of botnet spam, 70.69% of global spam).
    pub fn table_i() -> Vec<FamilyShare> {
        Self::ALL
            .iter()
            .map(|&family| FamilyShare {
                family,
                botnet_spam_pct: family.botnet_spam_pct(),
                samples: family.sample_count(),
            })
            .collect()
    }

    /// Sum of the four families' botnet-spam shares (the paper's 93.02%).
    pub fn total_botnet_pct() -> f64 {
        Self::ALL.iter().map(|f| f.botnet_spam_pct()).sum()
    }

    /// Sum of the four families' global-spam shares (the paper's 70.69%).
    pub fn total_global_pct() -> f64 {
        Self::total_botnet_pct() * BOTNET_FRACTION_OF_GLOBAL_SPAM
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_i_totals_match_paper() {
        assert!((MalwareFamily::total_botnet_pct() - 93.02).abs() < 1e-9);
        // 93.02 × 0.76 = 70.6952 ≈ the paper's 70.69%.
        assert!((MalwareFamily::total_global_pct() - 70.69).abs() < 0.01);
        let samples: u32 = MalwareFamily::ALL.iter().map(|f| f.sample_count()).sum();
        assert_eq!(samples, 11, "Table I lists 11 samples");
    }

    #[test]
    fn mx_strategies_match_section_iv() {
        assert_eq!(MalwareFamily::Cutwail.mx_strategy(), MxStrategy::SecondaryOnly);
        assert_eq!(MalwareFamily::Kelihos.mx_strategy(), MxStrategy::PrimaryOnly);
        assert_eq!(MalwareFamily::Darkmailer.mx_strategy(), MxStrategy::RfcCompliant);
        assert_eq!(MalwareFamily::DarkmailerV3.mx_strategy(), MxStrategy::RfcCompliant);
    }

    #[test]
    fn only_kelihos_retries() {
        for f in MalwareFamily::ALL {
            let retries = matches!(f.retry_behavior(), RetryBehavior::Scheduled(_));
            assert_eq!(retries, f == MalwareFamily::Kelihos, "{f}");
        }
    }

    #[test]
    fn dialects_are_bot_like() {
        for f in MalwareFamily::ALL {
            let d = f.dialect();
            assert!(!d.resets_between_messages, "{f} should not RSET like a real MTA");
        }
        assert!(!MalwareFamily::Cutwail.dialect().uses_ehlo);
        assert!(MalwareFamily::Darkmailer.dialect().uses_ehlo);
    }

    #[test]
    fn display_names_match_table_i() {
        assert_eq!(MalwareFamily::Cutwail.to_string(), "Cutwail");
        assert_eq!(MalwareFamily::DarkmailerV3.to_string(), "Darkmailer(v3)");
    }

    #[test]
    fn table_i_rows() {
        let rows = MalwareFamily::table_i();
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[0].family, MalwareFamily::Cutwail);
        assert_eq!(rows[1].samples, 6);
    }
}
