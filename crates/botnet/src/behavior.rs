//! Bot retry behaviour against greylisting deferrals.

use serde::{Deserialize, Serialize};
use spamward_sim::{DetRng, SimDuration};

/// A bot's reaction to a 4xx deferral.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RetryBehavior {
    /// Fire and forget: never retry; move on to the next victim. The
    /// assumption greylisting exploits.
    FireAndForget,
    /// Retry on a jittered ladder of delay windows.
    Scheduled(BotRetrySchedule),
}

impl RetryBehavior {
    /// The delay (since the *first* attempt) of retry `n` (1-based), with
    /// per-message jitter from `rng`; `None` when the bot has given up.
    pub fn nth_retry_delay(&self, n: u32, rng: &mut DetRng) -> Option<SimDuration> {
        match self {
            RetryBehavior::FireAndForget => None,
            RetryBehavior::Scheduled(schedule) => schedule.nth_retry_delay(n, rng),
        }
    }

    /// Whether this behaviour ever retries.
    pub fn retries(&self) -> bool {
        matches!(self, RetryBehavior::Scheduled(_))
    }
}

/// A ladder of retry *windows*: retry `n` fires uniformly at random inside
/// window `n`.
///
/// Windows (rather than fixed offsets) are how Fig. 4 reads: the Kelihos
/// retransmissions cluster in *peaks* — 300–600 s, around 5 000 s, and
/// 80 000–90 000 s — rather than at sharp instants, because each bot
/// instance jitters independently.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BotRetrySchedule {
    windows: Vec<(SimDuration, SimDuration)>,
}

impl BotRetrySchedule {
    /// Builds a schedule from `(lo, hi)` windows.
    ///
    /// # Panics
    ///
    /// Panics if a window is empty (`hi <= lo`) or the windows are not
    /// strictly increasing.
    pub fn from_windows(windows: Vec<(SimDuration, SimDuration)>) -> Self {
        let mut prev_hi = SimDuration::ZERO;
        for &(lo, hi) in &windows {
            assert!(lo < hi, "retry window must be non-empty: {lo}..{hi}");
            assert!(lo >= prev_hi, "retry windows must be increasing");
            prev_hi = hi;
        }
        BotRetrySchedule { windows }
    }

    /// The Kelihos ladder observed in §V-A: a first retry no earlier than
    /// ~300 s (which is why the 5 s and 300 s CDFs of Fig. 3 coincide), a
    /// second around 5 000 s, and a third in the 80 000–90 000 s band that
    /// finally clears even a 6-hour threshold (Fig. 4's red dots).
    pub fn kelihos() -> Self {
        BotRetrySchedule::from_windows(vec![
            (SimDuration::from_secs(300), SimDuration::from_secs(600)),
            (SimDuration::from_secs(4_500), SimDuration::from_secs(5_500)),
            (SimDuration::from_secs(80_000), SimDuration::from_secs(90_000)),
        ])
    }

    /// Number of retries before the bot gives up.
    pub fn max_retries(&self) -> u32 {
        self.windows.len() as u32
    }

    /// The delay of retry `n` (1-based), jittered within its window.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn nth_retry_delay(&self, n: u32, rng: &mut DetRng) -> Option<SimDuration> {
        assert!(n >= 1, "retry indices are 1-based");
        let (lo, hi) = *self.windows.get((n - 1) as usize)?;
        let span = (hi - lo).as_micros();
        Some(lo + SimDuration::from_micros(rng.below(span.max(1))))
    }

    /// The windows themselves (for plotting expected peaks).
    pub fn windows(&self) -> &[(SimDuration, SimDuration)] {
        &self.windows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn fire_and_forget_never_retries() {
        let mut rng = DetRng::seed(1);
        let b = RetryBehavior::FireAndForget;
        assert!(!b.retries());
        assert_eq!(b.nth_retry_delay(1, &mut rng), None);
    }

    #[test]
    fn kelihos_first_retry_never_before_300s() {
        let schedule = BotRetrySchedule::kelihos();
        let mut rng = DetRng::seed(7);
        for _ in 0..1_000 {
            let d = schedule.nth_retry_delay(1, &mut rng).unwrap();
            assert!(d >= SimDuration::from_secs(300), "retry at {d} < 300 s");
            assert!(d < SimDuration::from_secs(600));
        }
    }

    #[test]
    fn kelihos_three_peaks_then_gives_up() {
        let schedule = BotRetrySchedule::kelihos();
        let mut rng = DetRng::seed(9);
        assert_eq!(schedule.max_retries(), 3);
        let d2 = schedule.nth_retry_delay(2, &mut rng).unwrap();
        assert!(d2 >= SimDuration::from_secs(4_500) && d2 < SimDuration::from_secs(5_500));
        let d3 = schedule.nth_retry_delay(3, &mut rng).unwrap();
        assert!(d3 >= SimDuration::from_secs(80_000) && d3 < SimDuration::from_secs(90_000));
        assert_eq!(schedule.nth_retry_delay(4, &mut rng), None);
    }

    #[test]
    fn third_kelihos_retry_clears_six_hour_threshold() {
        // The crux of Fig. 4: 80 000 s > 21 600 s, so Kelihos eventually
        // delivers even against the paper's extreme threshold.
        let schedule = BotRetrySchedule::kelihos();
        let mut rng = DetRng::seed(3);
        let d3 = schedule.nth_retry_delay(3, &mut rng).unwrap();
        assert!(d3 > SimDuration::from_secs(21_600));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_window_rejected() {
        let _ = BotRetrySchedule::from_windows(vec![(
            SimDuration::from_secs(10),
            SimDuration::from_secs(10),
        )]);
    }

    #[test]
    #[should_panic(expected = "increasing")]
    fn overlapping_windows_rejected() {
        let _ = BotRetrySchedule::from_windows(vec![
            (SimDuration::from_secs(10), SimDuration::from_secs(30)),
            (SimDuration::from_secs(20), SimDuration::from_secs(40)),
        ]);
    }

    proptest! {
        #[test]
        fn prop_retries_strictly_increase(seed in any::<u64>()) {
            let schedule = BotRetrySchedule::kelihos();
            let mut rng = DetRng::seed(seed);
            let d1 = schedule.nth_retry_delay(1, &mut rng).unwrap();
            let d2 = schedule.nth_retry_delay(2, &mut rng).unwrap();
            let d3 = schedule.nth_retry_delay(3, &mut rng).unwrap();
            prop_assert!(d1 < d2 && d2 < d3);
        }
    }
}
