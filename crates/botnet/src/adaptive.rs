//! Hypothetical next-generation bots — the paper's §VI warning made
//! executable.
//!
//! The paper closes by noting that both defenses work only because current
//! malware is lazy, and that "the effectiveness of these two techniques
//! can change in the future". This module models the obvious adaptations a
//! bot author could ship, so the suite can measure *when* each defense
//! becomes obsolete:
//!
//! * [`AdaptiveBot::full_compliance`] — walks MXs per RFC 5321 **and**
//!   retries like an MTA: defeats nolisting, greylisting, and their stack.
//! * [`AdaptiveBot::distributed_retry`] — retries, but each attempt comes
//!   from a *different* infected host (cheap for a botnet). Against
//!   triplet-keyed greylisting this is self-defeating: every attempt looks
//!   new, nothing ever ages past the delay.
//! * [`AdaptiveBot::subnet_botnet`] — distributed retry from hosts that
//!   share a /24 (a compromised campus or hosting range): Postgrey's
//!   default netmask keying treats them as one client, so the botnet
//!   passes. Exact-IP keying stops it — the sharpest argument the suite
//!   offers for reconsidering the /24 default.

use crate::behavior::{BotRetrySchedule, RetryBehavior};
use crate::bot::{BotRunReport, ChainActor};
use crate::campaign::Campaign;
use spamward_dns::DomainName;
use spamward_mta::{MailWorld, MxStrategy, WorldSim};
use spamward_sim::{DetRng, SimTime};
use spamward_smtp::{Dialect, EmailAddress};
use std::net::Ipv4Addr;

/// A configurable hypothetical bot.
#[derive(Debug, Clone)]
pub struct AdaptiveBot {
    /// Human-readable model name.
    pub name: String,
    /// Which MXs it targets.
    pub mx_strategy: MxStrategy,
    /// How it reacts to deferrals.
    pub retry: RetryBehavior,
    /// The infected hosts available; attempts rotate through them.
    pub hosts: Vec<Ipv4Addr>,
    /// Session dialect.
    pub dialect: Dialect,
    rng: DetRng,
}

impl AdaptiveBot {
    /// A bot that behaves exactly like a legitimate MTA at the protocol
    /// level and retries on a Kelihos-grade ladder. No SMTP-level defense
    /// in this suite stops it.
    pub fn full_compliance(ip: Ipv4Addr) -> Self {
        AdaptiveBot {
            name: "full-compliance".into(),
            mx_strategy: MxStrategy::RfcCompliant,
            retry: RetryBehavior::Scheduled(BotRetrySchedule::kelihos()),
            hosts: vec![ip],
            dialect: Dialect::compliant_mta("relay.legit-looking.example"),
            rng: DetRng::seed(0xADA9).fork("full-compliance"),
        }
    }

    /// A bot that retries each message from a different infected host.
    ///
    /// # Panics
    ///
    /// Panics if `hosts` is empty.
    pub fn distributed_retry(hosts: Vec<Ipv4Addr>) -> Self {
        assert!(!hosts.is_empty(), "a botnet needs at least one host");
        AdaptiveBot {
            name: "distributed-retry".into(),
            mx_strategy: MxStrategy::RfcCompliant,
            retry: RetryBehavior::Scheduled(BotRetrySchedule::kelihos()),
            hosts,
            dialect: Dialect::minimal_bot("distributed"),
            rng: DetRng::seed(0xADA9).fork("distributed"),
        }
    }

    /// [`AdaptiveBot::distributed_retry`] with all hosts inside one /24,
    /// `n` hosts starting at `base`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `n > 200` (must stay inside one /24).
    pub fn subnet_botnet(base: Ipv4Addr, n: usize) -> Self {
        assert!(n > 0 && n <= 200, "subnet botnet size {n} out of range");
        let base_bits = u32::from(base);
        let hosts = (0..n as u32).map(|i| Ipv4Addr::from(base_bits + i)).collect();
        AdaptiveBot { name: "subnet-botnet".into(), ..Self::distributed_retry(hosts) }
    }

    /// Runs a campaign, rotating source hosts per attempt.
    ///
    /// Mirrors [`crate::BotSample::run_campaign`] — one engine episode per
    /// recipient chain — but the host-rotation cursor persists *across*
    /// chains, which is what makes distributed retry expressible.
    pub fn run_campaign(
        &mut self,
        world: &mut MailWorld,
        campaign: &Campaign,
        start: SimTime,
        horizon: SimTime,
    ) -> BotRunReport {
        let mut report = BotRunReport::default();
        let mut host_cursor = 0usize;

        for rcpt in &campaign.recipients {
            let domain: DomainName = match rcpt.domain().parse() {
                Ok(d) => d,
                Err(_) => {
                    report.failed.push(rcpt.clone());
                    continue;
                }
            };
            let chain = ChainActor {
                name: crate::metrics::ACTOR_BOTNET_ADAPTIVE,
                hosts: self.hosts.clone(),
                host_cursor,
                dialect: self.dialect.clone(),
                strategy: self.mx_strategy,
                behavior: self.retry.clone(),
                sender: campaign.sender.clone(),
                message: campaign.message.clone(),
                rcpt: rcpt.clone(),
                domain,
                rng: self.rng.fork_idx("msg", report.attempts.len() as u64),
                record_mx_ranks: false,
                first_at: start,
                attempt_no: 0,
                attempts: Vec::new(),
                mx_rank_attempts: Vec::new(),
                delivered: false,
            };
            let (chain, _outcome, _end) = WorldSim::episode(world, chain, start, Some(horizon));
            host_cursor = chain.host_cursor;
            report.attempts.extend(chain.attempts);
            if chain.delivered {
                report.delivered.push(rcpt.clone());
            } else {
                report.failed.push(rcpt.clone());
            }
        }
        report
    }
}

/// Convenience: distinct recipients as [`EmailAddress`]es for tests.
pub fn synthetic_recipients(domain: &str, n: usize) -> Vec<EmailAddress> {
    (0..n).map(|i| format!("user{i:04}@{domain}").parse().expect("valid recipient")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use spamward_dns::Zone;
    use spamward_greylist::{Greylist, GreylistConfig};
    use spamward_mta::ReceivingMta;
    use spamward_net::{PortState, SMTP_PORT};
    use spamward_sim::SimDuration;

    const VICTIM: &str = "victim.example";

    fn campaign() -> Campaign {
        let mut rng = DetRng::seed(4).fork("adaptive-test");
        Campaign::synthetic(VICTIM, 3, &mut rng)
    }

    fn greylist_world(netmask: u8) -> (MailWorld, Ipv4Addr) {
        let mut cfg =
            GreylistConfig::with_delay(SimDuration::from_secs(300)).without_auto_whitelist();
        cfg.netmask = netmask;
        let mut w = MailWorld::new(88);
        let mx = Ipv4Addr::new(192, 0, 2, 40);
        w.install_server(
            ReceivingMta::new("mail.victim.example", mx).with_greylist(Greylist::new(cfg)),
        );
        w.dns.publish(Zone::single_mx(VICTIM.parse().unwrap(), mx));
        (w, mx)
    }

    fn stacked_world() -> MailWorld {
        let mut w = MailWorld::new(89);
        let dead = Ipv4Addr::new(192, 0, 2, 50);
        let live = Ipv4Addr::new(192, 0, 2, 51);
        w.network.host("smtp.victim.example").ip(dead).port(SMTP_PORT, PortState::Closed).build();
        w.install_server(
            ReceivingMta::new("smtp1.victim.example", live)
                .with_greylist(Greylist::new(GreylistConfig::default().without_auto_whitelist())),
        );
        w.dns.publish(Zone::nolisting(VICTIM.parse().unwrap(), dead, live));
        w
    }

    const HORIZON: SimTime = SimTime::from_secs(200_000);

    #[test]
    fn full_compliance_defeats_the_stack() {
        let mut w = stacked_world();
        let mut bot = AdaptiveBot::full_compliance(Ipv4Addr::new(203, 0, 113, 90));
        let report = bot.run_campaign(&mut w, &campaign(), SimTime::ZERO, HORIZON);
        assert_eq!(report.delivery_rate(), 1.0, "no SMTP-level defense can stop full compliance");
    }

    #[test]
    fn distributed_retry_is_self_defeating_against_greylisting() {
        // Hosts in different /24s: each retry is a fresh triplet.
        let hosts: Vec<Ipv4Addr> = (0..8u8).map(|i| Ipv4Addr::new(203, 0, 100 + i, 7)).collect();
        let (mut w, mx) = greylist_world(24);
        let mut bot = AdaptiveBot::distributed_retry(hosts);
        let report = bot.run_campaign(&mut w, &campaign(), SimTime::ZERO, HORIZON);
        assert_eq!(
            report.delivery_rate(),
            0.0,
            "address-hopping must never age a triplet past the delay"
        );
        assert_eq!(w.server(mx).unwrap().mailbox().len(), 0);
    }

    #[test]
    fn subnet_botnet_beats_default_netmask_but_not_exact_keying() {
        // Same /24: Postgrey's default keying merges the hosts.
        let (mut w, _) = greylist_world(24);
        let mut bot = AdaptiveBot::subnet_botnet(Ipv4Addr::new(203, 0, 113, 10), 20);
        let report = bot.run_campaign(&mut w, &campaign(), SimTime::ZERO, HORIZON);
        assert_eq!(report.delivery_rate(), 1.0, "/24 keying merges the subnet botnet");

        // Exact keying keeps every host separate again.
        let (mut w, _) = greylist_world(32);
        let mut bot = AdaptiveBot::subnet_botnet(Ipv4Addr::new(203, 0, 113, 10), 20);
        let report = bot.run_campaign(&mut w, &campaign(), SimTime::ZERO, HORIZON);
        assert_eq!(report.delivery_rate(), 0.0, "exact keying separates the hosts");
    }

    #[test]
    fn host_rotation_is_visible() {
        let hosts = vec![Ipv4Addr::new(203, 0, 100, 1), Ipv4Addr::new(203, 0, 101, 1)];
        let bot = AdaptiveBot::distributed_retry(hosts.clone());
        assert_eq!(bot.hosts, hosts);
        assert_eq!(bot.name, "distributed-retry");
    }

    #[test]
    #[should_panic(expected = "at least one host")]
    fn empty_botnet_rejected() {
        let _ = AdaptiveBot::distributed_retry(vec![]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oversized_subnet_botnet_rejected() {
        let _ = AdaptiveBot::subnet_botnet(Ipv4Addr::new(10, 0, 0, 1), 500);
    }

    #[test]
    fn synthetic_recipients_helper() {
        let rcpts = synthetic_recipients("foo.net", 3);
        assert_eq!(rcpts.len(), 3);
        assert!(rcpts.iter().all(|r| r.domain() == "foo.net"));
    }
}
