//! The receiving MTA: filter chain, mailbox and log.

use crate::log::{anonymize, LogEvent, MtaLogEntry};
use serde::{Deserialize, Serialize};
use spamward_greylist::{Decision, Greylist, PassReason, TripletKey};
use spamward_net::FaultWindow;
use spamward_sim::SimTime;
use spamward_smtp::metrics::SessionMetrics;
use spamward_smtp::{
    reply::codes, EmailAddress, Envelope, Message, PolicyDecision, Reply, ServerPolicy, Transaction,
};
use std::collections::HashSet;
use std::net::Ipv4Addr;

/// Which RCPT addresses the server considers deliverable.
///
/// The paper relies on the fact that "email servers are typically configured
/// to refuse messages for non-existing recipients *before* applying
/// greylisting" — the ordering is load-bearing, and
/// [`ReceivingMta`] enforces it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum RecipientPolicy {
    /// Accept any recipient (catch-all / open lab server).
    AcceptAll,
    /// Accept any local part at the given domain.
    Domain(String),
    /// Accept exactly these normalized addresses.
    List(HashSet<String>),
}

impl RecipientPolicy {
    /// Whether `rcpt` is deliverable here.
    pub fn accepts(&self, rcpt: &EmailAddress) -> bool {
        match self {
            RecipientPolicy::AcceptAll => true,
            RecipientPolicy::Domain(d) => rcpt.domain() == d.to_ascii_lowercase(),
            RecipientPolicy::List(set) => set.contains(&rcpt.normalized()),
        }
    }
}

/// Counters over everything the server saw.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReceiveStats {
    /// Completed transactions (messages stored).
    pub messages_accepted: u64,
    /// RCPTs refused for unknown users.
    pub rcpt_unknown: u64,
    /// RCPTs deferred by greylisting.
    pub rcpt_greylisted: u64,
    /// RCPTs that passed greylisting (any reason).
    pub rcpt_passed: u64,
    /// Sessions rejected for talking before the banner.
    pub pregreet_rejected: u64,
    /// RCPTs accepted *unchecked* because the greylist store was down and
    /// the server degrades fail-open.
    pub greylist_failed_open: u64,
    /// RCPTs tempfailed because the greylist store was down and the server
    /// degrades fail-closed.
    pub greylist_failed_closed: u64,
}

/// What a greylisting server does when its triplet store is unavailable
/// (injected via [`spamward_net::FaultSpec::GreylistStoreDown`]).
///
/// The trade-off is the classic one for any fail-stop dependency in the
/// mail path: fail-open preserves delivery latency but admits the spam the
/// greylist would have deferred; fail-closed preserves the filter guarantee
/// but delays *all* mail, benign included. Both outcomes are counted
/// separately (`greylist.degraded.*`) so experiments can price them.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum DegradationMode {
    /// Accept recipients unchecked while the store is down.
    FailOpen,
    /// Tempfail recipients while the store is down (what Postfix does when
    /// a policy service dies) — the conservative default.
    #[default]
    FailClosed,
}

/// A message sitting in the victim mailbox.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoredMessage {
    /// When the final dot was accepted.
    pub received_at: SimTime,
    /// The transaction envelope.
    pub envelope: Envelope,
    /// The message content.
    pub message: Message,
}

/// A receiving mail server: Postfix-like policy chain + mailbox + log.
///
/// Implements [`ServerPolicy`], so it plugs directly into
/// [`spamward_smtp::ServerSession`] / [`spamward_smtp::exchange`].
///
/// Filter order on RCPT: recipient validation → greylist (which itself
/// checks client whitelist, recipient whitelist, auto-whitelist, triplet).
///
/// # Example
///
/// ```
/// use std::net::Ipv4Addr;
/// use spamward_greylist::{Greylist, GreylistConfig};
/// use spamward_mta::{ReceivingMta, RecipientPolicy};
///
/// let mta = ReceivingMta::new("mx.foo.net", Ipv4Addr::new(192, 0, 2, 10))
///     .with_recipients(RecipientPolicy::Domain("foo.net".into()))
///     .with_greylist(Greylist::new(GreylistConfig::default()));
/// assert_eq!(mta.hostname(), "mx.foo.net");
/// ```
#[derive(Debug)]
pub struct ReceivingMta {
    hostname: String,
    ip: Ipv4Addr,
    recipients: RecipientPolicy,
    reject_pregreeters: bool,
    greylist: Option<Greylist>,
    greylist_outage: Vec<FaultWindow>,
    remote_store_faulted: bool,
    degradation: DegradationMode,
    mailbox: Vec<StoredMessage>,
    log: Vec<MtaLogEntry>,
    stats: ReceiveStats,
    smtp_metrics: SessionMetrics,
    log_salt: u64,
}

impl ReceivingMta {
    /// Creates a catch-all server with no greylisting.
    pub fn new(hostname: &str, ip: Ipv4Addr) -> Self {
        // Salt the anonymized log by hostname so two servers' logs don't
        // join.
        let mut salt: u64 = 0x5bd1_e995;
        for b in hostname.bytes() {
            salt = salt.rotate_left(7) ^ u64::from(b);
        }
        ReceivingMta {
            hostname: hostname.to_owned(),
            ip,
            recipients: RecipientPolicy::AcceptAll,
            reject_pregreeters: false,
            greylist: None,
            greylist_outage: Vec::new(),
            remote_store_faulted: false,
            degradation: DegradationMode::default(),
            mailbox: Vec::new(),
            log: Vec::new(),
            stats: ReceiveStats::default(),
            smtp_metrics: SessionMetrics::default(),
            log_salt: salt,
        }
    }

    /// Sets the deliverable-recipient policy.
    pub fn with_recipients(mut self, recipients: RecipientPolicy) -> Self {
        self.recipients = recipients;
        self
    }

    /// Enables greylisting.
    pub fn with_greylist(mut self, greylist: Greylist) -> Self {
        self.greylist = Some(greylist);
        self
    }

    /// Rejects clients that talk before the banner (postscreen-style
    /// early-talker filtering; a protocol-level sibling of greylisting
    /// that also exploits bot non-compliance).
    pub fn with_pregreet_rejection(mut self) -> Self {
        self.reject_pregreeters = true;
        self
    }

    /// Sets what happens to RCPTs while the greylist store is down
    /// (defaults to [`DegradationMode::FailClosed`]).
    pub fn with_degradation(mut self, mode: DegradationMode) -> Self {
        self.degradation = mode;
        self
    }

    /// Installs the windows during which the greylist store is unavailable
    /// ([`crate::MailWorld::install_faults`] calls this with the plan's
    /// `greylist_down` windows).
    pub fn set_greylist_outage(&mut self, windows: Vec<FaultWindow>) {
        self.greylist_outage = windows;
    }

    /// Routes greylist-store fault windows to the right layer for the
    /// active backend. A [`spamward_greylist::StoreBackend::Remote`]
    /// backend takes them as protocol-level faults (lookups return
    /// unavailable, which flows through the same degradation path); the
    /// in-process backends have no network hop to fault, so the windows
    /// stay ambient MTA state exactly as before.
    pub fn install_greylist_faults(&mut self, windows: Vec<FaultWindow>) {
        let outages: Vec<(SimTime, SimTime)> = windows.iter().map(|w| (w.from, w.until)).collect();
        let routed =
            self.greylist.as_mut().is_some_and(|g| g.install_remote_faults(outages, Vec::new()));
        if routed {
            self.remote_store_faulted = !windows.is_empty();
        } else {
            self.set_greylist_outage(windows);
        }
    }

    /// Whether an outage schedule is installed (not necessarily active
    /// right now). Gates the `greylist.degraded.*` metric exports.
    pub fn has_greylist_outage(&self) -> bool {
        !self.greylist_outage.is_empty() || self.remote_store_faulted
    }

    /// The server's hostname.
    pub fn hostname(&self) -> &str {
        &self.hostname
    }

    /// The address the server listens on.
    pub fn ip(&self) -> Ipv4Addr {
        self.ip
    }

    /// The stored messages.
    pub fn mailbox(&self) -> &[StoredMessage] {
        &self.mailbox
    }

    /// The anonymized event log.
    pub fn log(&self) -> &[MtaLogEntry] {
        &self.log
    }

    /// Renders the full anonymized log as text (one entry per line).
    pub fn log_text(&self) -> String {
        let mut out = String::new();
        for e in &self.log {
            out.push_str(&e.to_line());
            out.push('\n');
        }
        out
    }

    /// Aggregate counters.
    pub fn stats(&self) -> ReceiveStats {
        self.stats
    }

    /// Protocol counters accumulated over every SMTP session this server
    /// handled (each finished session is folded in via
    /// [`ReceivingMta::absorb_smtp`]).
    pub fn smtp_metrics(&self) -> &SessionMetrics {
        &self.smtp_metrics
    }

    /// Folds a finished SMTP session's counters into this server's running
    /// totals. [`crate::MailWorld::attempt_delivery`] calls this after every
    /// exchange.
    pub fn absorb_smtp(&mut self, session: &SessionMetrics) {
        self.smtp_metrics.merge(session);
    }

    /// The greylist engine, when enabled.
    pub fn greylist(&self) -> Option<&Greylist> {
        self.greylist.as_ref()
    }

    /// Mutable access to the greylist engine (e.g. to run maintenance).
    pub fn greylist_mut(&mut self) -> Option<&mut Greylist> {
        self.greylist.as_mut()
    }

    /// Drops stored messages (keeps stats/logs) — long experiments call
    /// this to bound memory.
    pub fn drain_mailbox(&mut self) -> Vec<StoredMessage> {
        std::mem::take(&mut self.mailbox)
    }

    fn log_event(&mut self, at: SimTime, event: LogEvent, key: &TripletKey) {
        let triplet_hash = anonymize(self.log_salt, key);
        self.log.push(MtaLogEntry { at, event, triplet_hash });
    }

    /// Answers a RCPT while the greylist store is unreachable — either an
    /// ambient outage window (in-process backends) or a store lookup that
    /// came back unavailable (remote backend). Fail-open admits the
    /// recipient unchecked (no triplet is recorded — the store is
    /// unreachable); fail-closed defers like a greylist hit would, but
    /// with its own counter and reply, so the two 4xx populations stay
    /// distinguishable in the logs and metrics.
    fn degraded_rcpt(&mut self) -> PolicyDecision {
        match self.degradation {
            DegradationMode::FailOpen => {
                self.stats.greylist_failed_open += 1;
                self.stats.rcpt_passed += 1;
                PolicyDecision::Accept
            }
            DegradationMode::FailClosed => {
                self.stats.greylist_failed_closed += 1;
                PolicyDecision::TempFail(Reply::single(
                    codes::MAILBOX_UNAVAILABLE_TRANSIENT,
                    "4.3.5 greylist store unavailable, try again later",
                ))
            }
        }
    }
}

impl ServerPolicy for ReceivingMta {
    fn on_pregreet(&mut self, _now: SimTime, _client_ip: Ipv4Addr) -> PolicyDecision {
        if self.reject_pregreeters {
            self.stats.pregreet_rejected += 1;
            PolicyDecision::Reject(Reply::single(
                codes::TRANSACTION_FAILED,
                "5.5.1 protocol error: talked too soon",
            ))
        } else {
            PolicyDecision::Accept
        }
    }

    fn on_rcpt(&mut self, now: SimTime, tx: &Transaction, rcpt: &EmailAddress) -> PolicyDecision {
        // 1. Recipient validation happens before greylisting.
        if !self.recipients.accepts(rcpt) {
            self.stats.rcpt_unknown += 1;
            return PolicyDecision::Reject(Reply::no_such_user());
        }
        // 2. Greylisting, when configured.
        let Some(greylist) = self.greylist.as_mut() else {
            self.stats.rcpt_passed += 1;
            return PolicyDecision::Accept;
        };
        // 2a. If the triplet store is down right now (ambient outage
        // window — the in-process backends' fault model), the degradation
        // policy answers instead of the greylist.
        if self.greylist_outage.iter().any(|w| w.contains(now)) {
            return self.degraded_rcpt();
        }
        let sender = tx.mail_from.clone().unwrap_or(spamward_smtp::ReversePath::Null);
        // 2b. The decision engine drives the store backend through the
        // `GreylistStore` trait; a remote backend inside a fault window
        // surfaces `StoreUnavailable`, which lands in the same
        // degradation path as an ambient outage.
        let key = greylist.key_for(tx.client_ip, &sender, rcpt);
        let verdict = greylist.try_check_with_rdns(
            now,
            tx.client_ip,
            tx.client_rdns.as_deref(),
            &sender,
            rcpt,
        );
        match verdict {
            Err(_) => self.degraded_rcpt(),
            Ok(Decision::Pass(reason)) => {
                self.stats.rcpt_passed += 1;
                let event = match reason {
                    PassReason::DelayElapsed => LogEvent::PassedGreylist,
                    PassReason::TripletKnown => LogEvent::PassedGreylist,
                    _ => LogEvent::Whitelisted,
                };
                self.log_event(now, event, &key);
                PolicyDecision::Accept
            }
            Ok(Decision::Greylisted { retry_after }) => {
                self.stats.rcpt_greylisted += 1;
                self.log_event(now, LogEvent::Greylisted, &key);
                PolicyDecision::TempFail(Reply::greylisted(retry_after.as_secs()))
            }
        }
    }

    fn on_accepted(&mut self, now: SimTime, env: &Envelope, msg: &Message) {
        self.stats.messages_accepted += 1;
        // Log one accept entry per recipient so per-triplet delivery delays
        // can be reconstructed from the anonymized log alone. Accept
        // entries use the engine's key policy so they join with the defer
        // entries; servers without a greylist log default full-triplet keys.
        let keys: Vec<TripletKey> = env
            .recipients()
            .iter()
            .map(|rcpt| match self.greylist.as_ref() {
                Some(g) => g.key_for(env.client_ip(), env.mail_from(), rcpt),
                None => TripletKey::new(env.client_ip(), env.mail_from(), rcpt, 24),
            })
            .collect();
        for key in keys {
            self.log_event(now, LogEvent::Accepted, &key);
        }
        self.mailbox.push(StoredMessage {
            received_at: now,
            envelope: env.clone(),
            message: msg.clone(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spamward_greylist::GreylistConfig;
    use spamward_sim::SimDuration;
    use spamward_smtp::{exchange, ClientSession, Dialect, ServerSession};

    fn envelope(rcpt: &str) -> Envelope {
        Envelope::builder()
            .client_ip(Ipv4Addr::new(203, 0, 113, 9))
            .helo("client.example")
            .mail_from("sender@relay.example".parse::<EmailAddress>().unwrap())
            .rcpt(rcpt.parse().unwrap())
            .build()
    }

    fn msg() -> Message {
        Message::builder().header("Subject", "t").body("b").build()
    }

    fn run_attempt(
        mta: &mut ReceivingMta,
        rcpt: &str,
        now: SimTime,
    ) -> spamward_smtp::DeliveryOutcome {
        let mut client =
            ClientSession::new(Dialect::compliant_mta("relay.example"), envelope(rcpt), msg());
        let mut server = ServerSession::new("mx.foo.net", Ipv4Addr::new(203, 0, 113, 9));
        let (outcome, _) = exchange(&mut client, &mut server, mta, now);
        outcome
    }

    #[test]
    fn recipient_policies() {
        let any = RecipientPolicy::AcceptAll;
        assert!(any.accepts(&"x@anything.example".parse().unwrap()));
        let dom = RecipientPolicy::Domain("Foo.NET".into());
        assert!(dom.accepts(&"x@foo.net".parse().unwrap()));
        assert!(!dom.accepts(&"x@bar.net".parse().unwrap()));
        let mut set = HashSet::new();
        set.insert("alice@foo.net".to_owned());
        let list = RecipientPolicy::List(set);
        assert!(list.accepts(&"Alice@FOO.net".parse().unwrap()));
        assert!(!list.accepts(&"bob@foo.net".parse().unwrap()));
    }

    #[test]
    fn unknown_recipient_rejected_before_greylist() {
        let mut mta = ReceivingMta::new("mx.foo.net", Ipv4Addr::new(192, 0, 2, 1))
            .with_recipients(RecipientPolicy::Domain("foo.net".into()))
            .with_greylist(Greylist::new(GreylistConfig::default()));
        let out = run_attempt(&mut mta, "x@other.example", SimTime::ZERO);
        assert!(matches!(out, spamward_smtp::DeliveryOutcome::PermFailed { .. }));
        assert_eq!(mta.stats().rcpt_unknown, 1);
        // The greylist must not have been consulted (no triplet created).
        assert_eq!(mta.greylist().unwrap().store().len(), 0);
    }

    #[test]
    fn greylist_defers_then_accepts() {
        let mut mta = ReceivingMta::new("mx.foo.net", Ipv4Addr::new(192, 0, 2, 1))
            .with_greylist(Greylist::new(GreylistConfig::with_delay(SimDuration::from_secs(300))));
        let t0 = SimTime::ZERO;
        let out = run_attempt(&mut mta, "u@foo.net", t0);
        assert!(out.is_retryable());
        assert_eq!(mta.mailbox().len(), 0);
        assert_eq!(mta.stats().rcpt_greylisted, 1);

        let t1 = t0 + SimDuration::from_secs(301);
        let out = run_attempt(&mut mta, "u@foo.net", t1);
        assert!(out.is_delivered());
        assert_eq!(mta.mailbox().len(), 1);
        assert_eq!(mta.stats().messages_accepted, 1);
        assert_eq!(mta.mailbox()[0].received_at, t1);
    }

    #[test]
    fn no_greylist_accepts_immediately() {
        let mut mta = ReceivingMta::new("mx.foo.net", Ipv4Addr::new(192, 0, 2, 1));
        let out = run_attempt(&mut mta, "u@foo.net", SimTime::ZERO);
        assert!(out.is_delivered());
        assert_eq!(mta.stats().rcpt_passed, 1);
    }

    #[test]
    fn log_records_defer_and_accept_with_same_key() {
        let mut mta = ReceivingMta::new("mx.foo.net", Ipv4Addr::new(192, 0, 2, 1))
            .with_greylist(Greylist::new(GreylistConfig::with_delay(SimDuration::from_secs(300))));
        run_attempt(&mut mta, "u@foo.net", SimTime::ZERO);
        run_attempt(&mut mta, "u@foo.net", SimTime::from_secs(400));
        let log = mta.log();
        assert_eq!(log.len(), 3); // greylisted, passed, accepted
        assert_eq!(log[0].event, LogEvent::Greylisted);
        assert_eq!(log[1].event, LogEvent::PassedGreylist);
        assert_eq!(log[2].event, LogEvent::Accepted);
        assert_eq!(log[0].triplet_hash, log[1].triplet_hash);
        assert_eq!(log[0].triplet_hash, log[2].triplet_hash);
        // Text form parses back.
        let text = mta.log_text();
        for line in text.lines() {
            assert!(MtaLogEntry::parse_line(line).is_some(), "unparseable line {line:?}");
        }
    }

    #[test]
    fn whitelisted_pass_logged_as_whitelisted() {
        let mut cfg = GreylistConfig::default();
        cfg.whitelist_recipients.add_local_part("postmaster");
        let mut mta = ReceivingMta::new("mx.foo.net", Ipv4Addr::new(192, 0, 2, 1))
            .with_greylist(Greylist::new(cfg));
        let out = run_attempt(&mut mta, "postmaster@foo.net", SimTime::ZERO);
        assert!(out.is_delivered());
        assert_eq!(mta.log()[0].event, LogEvent::Whitelisted);
    }

    #[test]
    fn pregreet_rejection_stops_early_talker_bots() {
        let mut mta =
            ReceivingMta::new("mx.foo.net", Ipv4Addr::new(192, 0, 2, 1)).with_pregreet_rejection();
        // A bot dialect talks before the banner...
        let mut client =
            ClientSession::new(Dialect::minimal_bot("bot"), envelope("u@foo.net"), msg());
        let mut server = ServerSession::new("mx.foo.net", Ipv4Addr::new(203, 0, 113, 9));
        let (outcome, transcript) = exchange(&mut client, &mut server, &mut mta, SimTime::ZERO);
        assert!(!outcome.is_delivered());
        assert!(!outcome.is_retryable(), "pregreet rejection is permanent");
        assert_eq!(mta.stats().pregreet_rejected, 1);
        assert!(transcript.client_lines().any(|l| l.contains("before banner")));

        // ...while a patient MTA sails through.
        let out = run_attempt(&mut mta, "u@foo.net", SimTime::ZERO);
        assert!(out.is_delivered());
        assert_eq!(mta.stats().pregreet_rejected, 1);
    }

    #[test]
    fn greylist_store_outage_fail_closed_defers_with_its_own_counter() {
        let mut mta = ReceivingMta::new("mx.foo.net", Ipv4Addr::new(192, 0, 2, 1))
            .with_greylist(Greylist::new(GreylistConfig::with_delay(SimDuration::from_secs(300))));
        mta.set_greylist_outage(vec![FaultWindow::new(
            SimTime::from_secs(100),
            SimTime::from_secs(200),
        )]);
        // During the outage: tempfail, but NOT counted as a greylist defer,
        // and no triplet is recorded (the store is unreachable).
        let out = run_attempt(&mut mta, "u@foo.net", SimTime::from_secs(150));
        assert!(out.is_retryable());
        assert!(!out.is_delivered());
        assert_eq!(mta.stats().greylist_failed_closed, 1);
        assert_eq!(mta.stats().rcpt_greylisted, 0);
        assert_eq!(mta.greylist().unwrap().store().len(), 0);
        // After the outage the ordinary greylist takes over again.
        let out = run_attempt(&mut mta, "u@foo.net", SimTime::from_secs(250));
        assert!(out.is_retryable());
        assert_eq!(mta.stats().rcpt_greylisted, 1);
        assert_eq!(mta.greylist().unwrap().store().len(), 1);
    }

    #[test]
    fn greylist_store_outage_fail_open_admits_unchecked() {
        let mut mta = ReceivingMta::new("mx.foo.net", Ipv4Addr::new(192, 0, 2, 1))
            .with_greylist(Greylist::new(GreylistConfig::with_delay(SimDuration::from_secs(300))))
            .with_degradation(DegradationMode::FailOpen);
        mta.set_greylist_outage(vec![FaultWindow::new(SimTime::ZERO, SimTime::from_secs(100))]);
        // A first-contact triplet that the greylist would have deferred
        // sails straight into the mailbox.
        let out = run_attempt(&mut mta, "u@foo.net", SimTime::from_secs(10));
        assert!(out.is_delivered());
        assert_eq!(mta.stats().greylist_failed_open, 1);
        assert_eq!(mta.mailbox().len(), 1);
        assert_eq!(mta.greylist().unwrap().store().len(), 0, "store was down, nothing recorded");
        // Outside the window the greylist is back in charge.
        let out = run_attempt(&mut mta, "v@foo.net", SimTime::from_secs(150));
        assert!(!out.is_delivered());
        assert_eq!(mta.stats().rcpt_greylisted, 1);
    }

    #[test]
    fn remote_backend_outage_routes_through_degradation() {
        use spamward_greylist::{RemoteStore, StoreBackend};
        let greylist = Greylist::new(GreylistConfig::with_delay(SimDuration::from_secs(300)))
            .with_backend(StoreBackend::Remote(RemoteStore::new(SimDuration::from_millis(2))));
        let mut mta =
            ReceivingMta::new("mx.foo.net", Ipv4Addr::new(192, 0, 2, 1)).with_greylist(greylist);
        mta.install_greylist_faults(vec![FaultWindow::new(
            SimTime::from_secs(100),
            SimTime::from_secs(200),
        )]);
        assert!(mta.has_greylist_outage(), "routed remote faults still gate degraded metrics");
        // Inside the window the *store lookup* fails (protocol-level, not
        // ambient state) and lands in the same fail-closed path.
        let out = run_attempt(&mut mta, "u@foo.net", SimTime::from_secs(150));
        assert!(out.is_retryable());
        assert_eq!(mta.stats().greylist_failed_closed, 1);
        assert_eq!(mta.stats().rcpt_greylisted, 0);
        assert_eq!(mta.greylist().unwrap().store().len(), 0);
        // Outside the window the remote store answers normally.
        let out = run_attempt(&mut mta, "u@foo.net", SimTime::from_secs(250));
        assert!(out.is_retryable());
        assert_eq!(mta.stats().rcpt_greylisted, 1);
        assert_eq!(mta.greylist().unwrap().store().len(), 1);
    }

    #[test]
    fn in_process_backend_faults_fall_back_to_ambient_windows() {
        let mut mta = ReceivingMta::new("mx.foo.net", Ipv4Addr::new(192, 0, 2, 1))
            .with_greylist(Greylist::new(GreylistConfig::with_delay(SimDuration::from_secs(300))));
        mta.install_greylist_faults(vec![FaultWindow::new(
            SimTime::from_secs(100),
            SimTime::from_secs(200),
        )]);
        assert!(mta.has_greylist_outage());
        let out = run_attempt(&mut mta, "u@foo.net", SimTime::from_secs(150));
        assert!(out.is_retryable());
        assert_eq!(mta.stats().greylist_failed_closed, 1, "ambient window must still fire");
    }

    #[test]
    fn no_outage_schedule_means_no_degradation_path() {
        let mta = ReceivingMta::new("mx.foo.net", Ipv4Addr::new(192, 0, 2, 1))
            .with_greylist(Greylist::new(GreylistConfig::default()));
        assert!(!mta.has_greylist_outage());
    }

    #[test]
    fn drain_mailbox_keeps_stats() {
        let mut mta = ReceivingMta::new("mx.foo.net", Ipv4Addr::new(192, 0, 2, 1));
        run_attempt(&mut mta, "u@foo.net", SimTime::ZERO);
        let drained = mta.drain_mailbox();
        assert_eq!(drained.len(), 1);
        assert_eq!(mta.mailbox().len(), 0);
        assert_eq!(mta.stats().messages_accepted, 1);
    }
}
