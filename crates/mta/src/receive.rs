//! The receiving MTA: filter chain, mailbox and log.

use crate::log::{anonymize, LogEvent, MtaLogEntry};
use serde::{Deserialize, Serialize};
use spamward_greylist::{Decision, DurabilityMode, Greylist, PassReason, TripletKey};
use spamward_net::FaultWindow;
use spamward_sim::SimTime;
use spamward_smtp::metrics::SessionMetrics;
use spamward_smtp::{
    reply::codes, EmailAddress, Envelope, Message, PolicyDecision, Reply, ServerPolicy, Transaction,
};
use std::collections::HashSet;
use std::net::Ipv4Addr;

/// Which RCPT addresses the server considers deliverable.
///
/// The paper relies on the fact that "email servers are typically configured
/// to refuse messages for non-existing recipients *before* applying
/// greylisting" — the ordering is load-bearing, and
/// [`ReceivingMta`] enforces it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum RecipientPolicy {
    /// Accept any recipient (catch-all / open lab server).
    AcceptAll,
    /// Accept any local part at the given domain.
    Domain(String),
    /// Accept exactly these normalized addresses.
    List(HashSet<String>),
}

impl RecipientPolicy {
    /// Whether `rcpt` is deliverable here.
    pub fn accepts(&self, rcpt: &EmailAddress) -> bool {
        match self {
            RecipientPolicy::AcceptAll => true,
            RecipientPolicy::Domain(d) => rcpt.domain() == d.to_ascii_lowercase(),
            RecipientPolicy::List(set) => set.contains(&rcpt.normalized()),
        }
    }
}

/// Counters over everything the server saw.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReceiveStats {
    /// Completed transactions (messages stored).
    pub messages_accepted: u64,
    /// RCPTs refused for unknown users.
    pub rcpt_unknown: u64,
    /// RCPTs deferred by greylisting.
    pub rcpt_greylisted: u64,
    /// RCPTs that passed greylisting (any reason).
    pub rcpt_passed: u64,
    /// Sessions rejected for talking before the banner.
    pub pregreet_rejected: u64,
    /// RCPTs accepted *unchecked* because the greylist store was down and
    /// the server degrades fail-open.
    pub greylist_failed_open: u64,
    /// RCPTs tempfailed because the greylist store was down and the server
    /// degrades fail-closed.
    pub greylist_failed_closed: u64,
}

/// Counters over the crash–restart lifecycle and greylist recovery
/// (exported as `mta.crash.*` / `greylist.recovery.*` once a crash
/// schedule is installed).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CrashStats {
    /// Crash instants that fired (the server process died).
    pub crashes: u64,
    /// Restart instants that fired (the server came back up).
    pub restarts: u64,
    /// Connection attempts refused while the server was down.
    pub refused_connections: u64,
    /// In-flight SMTP sessions cut mid-dialogue by a crash instant.
    pub sessions_dropped: u64,
    /// Durability checkpoints taken (periodic ticks plus the
    /// re-baselining checkpoint each restart takes after recovery).
    pub checkpoints: u64,
    /// Triplet entries restored from the last checkpoint across restarts.
    pub entries_restored: u64,
    /// WAL records replayed over the checkpoint across restarts.
    pub wal_records_replayed: u64,
    /// Torn final WAL records skipped deterministically during replay.
    pub wal_torn_skipped: u64,
    /// Triplet entries in memory at crash time that recovery did not get
    /// back (the durability mode's data-loss window, in entries).
    pub entries_lost: u64,
}

/// One crash-lifecycle edge fired by [`ReceivingMta::poll_crash`] — the
/// world records these on its trace and timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum CrashTransition {
    /// The server process died, losing its in-memory greylist database.
    Crashed {
        /// Live triplet entries in memory at the crash instant.
        entries_in_memory: u64,
    },
    /// The server came back and rebuilt state per its durability mode.
    Restarted {
        /// Entries restored from the last checkpoint.
        restored: u64,
        /// WAL records replayed over the checkpoint.
        replayed: u64,
        /// Torn final WAL records skipped during replay.
        torn: u64,
        /// Entries the crash cost despite recovery.
        lost: u64,
    },
}

/// What a greylisting server does when its triplet store is unavailable
/// (injected via [`spamward_net::FaultSpec::GreylistStoreDown`]).
///
/// The trade-off is the classic one for any fail-stop dependency in the
/// mail path: fail-open preserves delivery latency but admits the spam the
/// greylist would have deferred; fail-closed preserves the filter guarantee
/// but delays *all* mail, benign included. Both outcomes are counted
/// separately (`greylist.degraded.*`) so experiments can price them.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum DegradationMode {
    /// Accept recipients unchecked while the store is down.
    FailOpen,
    /// Tempfail recipients while the store is down (what Postfix does when
    /// a policy service dies) — the conservative default.
    #[default]
    FailClosed,
}

/// A message sitting in the victim mailbox.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoredMessage {
    /// When the final dot was accepted.
    pub received_at: SimTime,
    /// The transaction envelope.
    pub envelope: Envelope,
    /// The message content.
    pub message: Message,
}

/// A receiving mail server: Postfix-like policy chain + mailbox + log.
///
/// Implements [`ServerPolicy`], so it plugs directly into
/// [`spamward_smtp::ServerSession`] / [`spamward_smtp::exchange`].
///
/// Filter order on RCPT: recipient validation → greylist (which itself
/// checks client whitelist, recipient whitelist, auto-whitelist, triplet).
///
/// # Example
///
/// ```
/// use std::net::Ipv4Addr;
/// use spamward_greylist::{Greylist, GreylistConfig};
/// use spamward_mta::{ReceivingMta, RecipientPolicy};
///
/// let mta = ReceivingMta::new("mx.foo.net", Ipv4Addr::new(192, 0, 2, 10))
///     .with_recipients(RecipientPolicy::Domain("foo.net".into()))
///     .with_greylist(Greylist::new(GreylistConfig::default()));
/// assert_eq!(mta.hostname(), "mx.foo.net");
/// ```
#[derive(Debug)]
pub struct ReceivingMta {
    hostname: String,
    ip: Ipv4Addr,
    recipients: RecipientPolicy,
    reject_pregreeters: bool,
    greylist: Option<Greylist>,
    greylist_outage: Vec<FaultWindow>,
    remote_store_faulted: bool,
    degradation: DegradationMode,
    durability: DurabilityMode,
    /// Crash windows ([crash, restart) per window), sorted by time.
    crash_windows: Vec<FaultWindow>,
    /// Next unfired lifecycle edge: window `cursor / 2`, crash edge when
    /// even, restart edge when odd.
    crash_cursor: usize,
    /// The last durability checkpoint (a store snapshot), if one was taken.
    last_checkpoint: Option<String>,
    /// WAL text captured at the crash instant, awaiting replay at restart.
    pending_wal: Option<String>,
    /// Live store entries at the most recent crash instant.
    entries_at_crash: u64,
    crash_stats: CrashStats,
    mailbox: Vec<StoredMessage>,
    log: Vec<MtaLogEntry>,
    stats: ReceiveStats,
    smtp_metrics: SessionMetrics,
    log_salt: u64,
}

impl ReceivingMta {
    /// Creates a catch-all server with no greylisting.
    pub fn new(hostname: &str, ip: Ipv4Addr) -> Self {
        // Salt the anonymized log by hostname so two servers' logs don't
        // join.
        let mut salt: u64 = 0x5bd1_e995;
        for b in hostname.bytes() {
            salt = salt.rotate_left(7) ^ u64::from(b);
        }
        ReceivingMta {
            hostname: hostname.to_owned(),
            ip,
            recipients: RecipientPolicy::AcceptAll,
            reject_pregreeters: false,
            greylist: None,
            greylist_outage: Vec::new(),
            remote_store_faulted: false,
            degradation: DegradationMode::default(),
            durability: DurabilityMode::default(),
            crash_windows: Vec::new(),
            crash_cursor: 0,
            last_checkpoint: None,
            pending_wal: None,
            entries_at_crash: 0,
            crash_stats: CrashStats::default(),
            mailbox: Vec::new(),
            log: Vec::new(),
            stats: ReceiveStats::default(),
            smtp_metrics: SessionMetrics::default(),
            log_salt: salt,
        }
    }

    /// Sets the deliverable-recipient policy.
    pub fn with_recipients(mut self, recipients: RecipientPolicy) -> Self {
        self.recipients = recipients;
        self
    }

    /// Enables greylisting.
    pub fn with_greylist(mut self, greylist: Greylist) -> Self {
        self.greylist = Some(greylist);
        if self.durability.keeps_wal() {
            if let Some(gl) = self.greylist.as_mut() {
                gl.enable_wal();
            }
        }
        self
    }

    /// Rejects clients that talk before the banner (postscreen-style
    /// early-talker filtering; a protocol-level sibling of greylisting
    /// that also exploits bot non-compliance).
    pub fn with_pregreet_rejection(mut self) -> Self {
        self.reject_pregreeters = true;
        self
    }

    /// Sets what happens to RCPTs while the greylist store is down
    /// (defaults to [`DegradationMode::FailClosed`]).
    pub fn with_degradation(mut self, mode: DegradationMode) -> Self {
        self.degradation = mode;
        self
    }

    /// Sets how greylist state survives a crash–restart cycle (defaults to
    /// [`DurabilityMode::Volatile`] — everything in memory is lost). Modes
    /// that keep a WAL turn logging on immediately, so every store
    /// mutation from here on is replayable.
    pub fn with_durability(mut self, mode: DurabilityMode) -> Self {
        self.durability = mode;
        if mode.keeps_wal() {
            if let Some(gl) = self.greylist.as_mut() {
                gl.enable_wal();
            }
        }
        self
    }

    /// The configured durability mode.
    pub fn durability(&self) -> DurabilityMode {
        self.durability
    }

    /// Installs the windows during which this server is crashed
    /// ([`crate::MailWorld::install_faults`] calls this with the plan's
    /// [`spamward_net::FaultPlan::crash_windows_for`] windows for this
    /// hostname). Windows must be sorted by time and non-overlapping —
    /// the compiled plan's order.
    pub fn install_crash_schedule(&mut self, windows: Vec<FaultWindow>) {
        self.crash_windows = windows;
        self.crash_cursor = 0;
    }

    /// Whether a crash schedule is installed (not necessarily active right
    /// now). Gates the `mta.crash.*` / `greylist.recovery.*` metric
    /// exports, so crash-free runs keep their exact metric composition.
    pub fn has_crash_schedule(&self) -> bool {
        !self.crash_windows.is_empty()
    }

    /// Crash-lifecycle and recovery counters.
    pub fn crash_stats(&self) -> CrashStats {
        self.crash_stats
    }

    /// Whether the server is down at `t` — inside a crash window's
    /// `[crash, restart)` span.
    pub fn is_crashed_at(&self, t: SimTime) -> bool {
        self.crash_windows.iter().any(|w| w.contains(t))
    }

    /// The first crash instant strictly inside `(start, end]`, if any — an
    /// SMTP session in flight over that span is cut mid-dialogue.
    pub(crate) fn crash_during(&self, start: SimTime, end: SimTime) -> Option<SimTime> {
        self.crash_windows.iter().map(|w| w.from).find(|&at| start < at && at <= end)
    }

    /// Counts a connection refused while the server was down.
    pub(crate) fn note_refused_connection(&mut self) {
        self.crash_stats.refused_connections += 1;
    }

    /// Counts an in-flight session cut by a crash instant.
    pub(crate) fn note_session_dropped(&mut self) {
        self.crash_stats.sessions_dropped += 1;
    }

    /// Takes a durability checkpoint: snapshots the greylist store and
    /// truncates the WAL (every record up to here is now inside the
    /// snapshot). A no-op for [`DurabilityMode::Volatile`] servers,
    /// servers without a greylist, and servers that are *down* at `now` —
    /// a dead machine takes no checkpoints, and snapshotting the
    /// crash-reset store would clobber the good pre-crash checkpoint. The
    /// engine's [`crate::worldsim::CheckpointActor`] calls this on a
    /// virtual-time schedule via [`crate::MailWorld::checkpoint_stores`].
    pub fn checkpoint(&mut self, now: SimTime) {
        if !self.durability.restores_checkpoint() || self.is_crashed_at(now) {
            return;
        }
        if let Some(gl) = self.greylist.as_mut() {
            self.last_checkpoint = Some(gl.snapshot());
            gl.clear_wal();
            self.crash_stats.checkpoints += 1;
        }
    }

    /// Advances the crash–restart lifecycle through every edge at or
    /// before `now`, in order, and returns the transitions fired.
    /// Idempotent per edge — the world polls lazily from the delivery
    /// path *and* from fault-boundary engine events, and each edge fires
    /// exactly once, whichever poll reaches it first.
    pub(crate) fn poll_crash(&mut self, now: SimTime) -> Vec<CrashTransition> {
        let mut fired = Vec::new();
        while self.crash_cursor < self.crash_windows.len() * 2 {
            let window = self.crash_windows[self.crash_cursor / 2];
            let crash_edge = self.crash_cursor.is_multiple_of(2);
            let edge = if crash_edge { window.from } else { window.until };
            if edge > now {
                break;
            }
            fired.push(if crash_edge { self.crash() } else { self.restart(edge) });
            self.crash_cursor += 1;
        }
        fired
    }

    /// The crash instant: the in-memory greylist database dies. The WAL
    /// tail is captured first — it models the on-disk log, which survives
    /// the process.
    fn crash(&mut self) -> CrashTransition {
        self.crash_stats.crashes += 1;
        let entries = self.greylist.as_ref().map_or(0, |g| g.store().len()) as u64;
        self.entries_at_crash = entries;
        if let Some(gl) = self.greylist.as_mut() {
            self.pending_wal = gl.wal().map(|w| w.text().to_owned());
            gl.reset();
        }
        CrashTransition::Crashed { entries_in_memory: entries }
    }

    /// The restart instant: rebuild greylist state per the durability
    /// mode, then take a fresh checkpoint of the recovered state so a
    /// *second* crash recovers from here, not from the stale pre-crash
    /// checkpoint.
    fn restart(&mut self, at: SimTime) -> CrashTransition {
        self.crash_stats.restarts += 1;
        let mut restored = 0u64;
        let mut replayed = 0u64;
        let mut torn = 0u64;
        let wal_text = self.pending_wal.take();
        if let Some(gl) = self.greylist.as_mut() {
            if self.durability.restores_checkpoint() {
                if let Some(cp) = self.last_checkpoint.as_deref() {
                    // A checkpoint that no longer parses is as good as no
                    // checkpoint: drop the partial restore and come back
                    // empty (the loss lands in `entries_lost`).
                    if gl.restore(cp).is_err() {
                        gl.reset();
                    }
                    restored = gl.store().len() as u64;
                }
            }
            if self.durability.keeps_wal() {
                if let Some(text) = wal_text.as_deref() {
                    // Same degradation: an unreplayable log contributes
                    // nothing beyond what already parsed.
                    if let Ok(outcome) = gl.replay_wal(text) {
                        replayed = outcome.applied;
                        torn = outcome.torn_skipped;
                    }
                }
            }
        }
        let recovered = self.greylist.as_ref().map_or(0, |g| g.store().len()) as u64;
        let lost = self.entries_at_crash.saturating_sub(recovered);
        self.crash_stats.entries_restored += restored;
        self.crash_stats.wal_records_replayed += replayed;
        self.crash_stats.wal_torn_skipped += torn;
        self.crash_stats.entries_lost += lost;
        self.checkpoint(at);
        CrashTransition::Restarted { restored, replayed, torn, lost }
    }

    /// Installs the windows during which the greylist store is unavailable
    /// ([`crate::MailWorld::install_faults`] calls this with the plan's
    /// `greylist_down` windows).
    pub fn set_greylist_outage(&mut self, windows: Vec<FaultWindow>) {
        self.greylist_outage = windows;
    }

    /// Routes greylist-store fault windows to the right layer for the
    /// active backend. A [`spamward_greylist::StoreBackend::Remote`]
    /// backend takes them as protocol-level faults (lookups return
    /// unavailable, which flows through the same degradation path); the
    /// in-process backends have no network hop to fault, so the windows
    /// stay ambient MTA state exactly as before.
    pub fn install_greylist_faults(&mut self, windows: Vec<FaultWindow>) {
        let outages: Vec<(SimTime, SimTime)> = windows.iter().map(|w| (w.from, w.until)).collect();
        let routed =
            self.greylist.as_mut().is_some_and(|g| g.install_remote_faults(outages, Vec::new()));
        if routed {
            self.remote_store_faulted = !windows.is_empty();
        } else {
            self.set_greylist_outage(windows);
        }
    }

    /// Whether an outage schedule is installed (not necessarily active
    /// right now). Gates the `greylist.degraded.*` metric exports.
    pub fn has_greylist_outage(&self) -> bool {
        !self.greylist_outage.is_empty() || self.remote_store_faulted
    }

    /// The server's hostname.
    pub fn hostname(&self) -> &str {
        &self.hostname
    }

    /// The address the server listens on.
    pub fn ip(&self) -> Ipv4Addr {
        self.ip
    }

    /// The stored messages.
    pub fn mailbox(&self) -> &[StoredMessage] {
        &self.mailbox
    }

    /// The anonymized event log.
    pub fn log(&self) -> &[MtaLogEntry] {
        &self.log
    }

    /// Renders the full anonymized log as text (one entry per line).
    pub fn log_text(&self) -> String {
        let mut out = String::new();
        for e in &self.log {
            out.push_str(&e.to_line());
            out.push('\n');
        }
        out
    }

    /// Aggregate counters.
    pub fn stats(&self) -> ReceiveStats {
        self.stats
    }

    /// Protocol counters accumulated over every SMTP session this server
    /// handled (each finished session is folded in via
    /// [`ReceivingMta::absorb_smtp`]).
    pub fn smtp_metrics(&self) -> &SessionMetrics {
        &self.smtp_metrics
    }

    /// Folds a finished SMTP session's counters into this server's running
    /// totals. [`crate::MailWorld::attempt_delivery`] calls this after every
    /// exchange.
    pub fn absorb_smtp(&mut self, session: &SessionMetrics) {
        self.smtp_metrics.merge(session);
    }

    /// The greylist engine, when enabled.
    pub fn greylist(&self) -> Option<&Greylist> {
        self.greylist.as_ref()
    }

    /// Mutable access to the greylist engine (e.g. to run maintenance).
    pub fn greylist_mut(&mut self) -> Option<&mut Greylist> {
        self.greylist.as_mut()
    }

    /// Drops stored messages (keeps stats/logs) — long experiments call
    /// this to bound memory.
    pub fn drain_mailbox(&mut self) -> Vec<StoredMessage> {
        std::mem::take(&mut self.mailbox)
    }

    fn log_event(&mut self, at: SimTime, event: LogEvent, key: &TripletKey) {
        let triplet_hash = anonymize(self.log_salt, key);
        self.log.push(MtaLogEntry { at, event, triplet_hash });
    }

    /// Answers a RCPT while the greylist store is unreachable — either an
    /// ambient outage window (in-process backends) or a store lookup that
    /// came back unavailable (remote backend). Fail-open admits the
    /// recipient unchecked (no triplet is recorded — the store is
    /// unreachable); fail-closed defers like a greylist hit would, but
    /// with its own counter and reply, so the two 4xx populations stay
    /// distinguishable in the logs and metrics.
    fn degraded_rcpt(&mut self) -> PolicyDecision {
        match self.degradation {
            DegradationMode::FailOpen => {
                self.stats.greylist_failed_open += 1;
                self.stats.rcpt_passed += 1;
                PolicyDecision::Accept
            }
            DegradationMode::FailClosed => {
                self.stats.greylist_failed_closed += 1;
                PolicyDecision::TempFail(Reply::single(
                    codes::MAILBOX_UNAVAILABLE_TRANSIENT,
                    "4.3.5 greylist store unavailable, try again later",
                ))
            }
        }
    }
}

impl ServerPolicy for ReceivingMta {
    fn on_pregreet(&mut self, _now: SimTime, _client_ip: Ipv4Addr) -> PolicyDecision {
        if self.reject_pregreeters {
            self.stats.pregreet_rejected += 1;
            PolicyDecision::Reject(Reply::single(
                codes::TRANSACTION_FAILED,
                "5.5.1 protocol error: talked too soon",
            ))
        } else {
            PolicyDecision::Accept
        }
    }

    fn on_rcpt(&mut self, now: SimTime, tx: &Transaction, rcpt: &EmailAddress) -> PolicyDecision {
        // 1. Recipient validation happens before greylisting.
        if !self.recipients.accepts(rcpt) {
            self.stats.rcpt_unknown += 1;
            return PolicyDecision::Reject(Reply::no_such_user());
        }
        // 2. Greylisting, when configured.
        let Some(greylist) = self.greylist.as_mut() else {
            self.stats.rcpt_passed += 1;
            return PolicyDecision::Accept;
        };
        // 2a. If the triplet store is down right now (ambient outage
        // window — the in-process backends' fault model), the degradation
        // policy answers instead of the greylist.
        if self.greylist_outage.iter().any(|w| w.contains(now)) {
            return self.degraded_rcpt();
        }
        let sender = tx.mail_from.clone().unwrap_or(spamward_smtp::ReversePath::Null);
        // 2b. The decision engine drives the store backend through the
        // `GreylistStore` trait; a remote backend inside a fault window
        // surfaces `StoreUnavailable`, which lands in the same
        // degradation path as an ambient outage.
        let key = greylist.key_for(tx.client_ip, &sender, rcpt);
        let verdict = greylist.try_check_with_rdns(
            now,
            tx.client_ip,
            tx.client_rdns.as_deref(),
            &sender,
            rcpt,
        );
        match verdict {
            Err(_) => self.degraded_rcpt(),
            Ok(Decision::Pass(reason)) => {
                self.stats.rcpt_passed += 1;
                let event = match reason {
                    PassReason::DelayElapsed => LogEvent::PassedGreylist,
                    PassReason::TripletKnown => LogEvent::PassedGreylist,
                    _ => LogEvent::Whitelisted,
                };
                self.log_event(now, event, &key);
                PolicyDecision::Accept
            }
            Ok(Decision::Greylisted { retry_after }) => {
                self.stats.rcpt_greylisted += 1;
                self.log_event(now, LogEvent::Greylisted, &key);
                PolicyDecision::TempFail(Reply::greylisted(retry_after.as_secs()))
            }
        }
    }

    fn on_accepted(&mut self, now: SimTime, env: &Envelope, msg: &Message) {
        self.stats.messages_accepted += 1;
        // Log one accept entry per recipient so per-triplet delivery delays
        // can be reconstructed from the anonymized log alone. Accept
        // entries use the engine's key policy so they join with the defer
        // entries; servers without a greylist log default full-triplet keys.
        let keys: Vec<TripletKey> = env
            .recipients()
            .iter()
            .map(|rcpt| match self.greylist.as_ref() {
                Some(g) => g.key_for(env.client_ip(), env.mail_from(), rcpt),
                None => TripletKey::new(env.client_ip(), env.mail_from(), rcpt, 24),
            })
            .collect();
        for key in keys {
            self.log_event(now, LogEvent::Accepted, &key);
        }
        self.mailbox.push(StoredMessage {
            received_at: now,
            envelope: env.clone(),
            message: msg.clone(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spamward_greylist::GreylistConfig;
    use spamward_sim::SimDuration;
    use spamward_smtp::{exchange, ClientSession, Dialect, ServerSession};

    fn envelope(rcpt: &str) -> Envelope {
        Envelope::builder()
            .client_ip(Ipv4Addr::new(203, 0, 113, 9))
            .helo("client.example")
            .mail_from("sender@relay.example".parse::<EmailAddress>().unwrap())
            .rcpt(rcpt.parse().unwrap())
            .build()
    }

    fn msg() -> Message {
        Message::builder().header("Subject", "t").body("b").build()
    }

    fn run_attempt(
        mta: &mut ReceivingMta,
        rcpt: &str,
        now: SimTime,
    ) -> spamward_smtp::DeliveryOutcome {
        let mut client =
            ClientSession::new(Dialect::compliant_mta("relay.example"), envelope(rcpt), msg());
        let mut server = ServerSession::new("mx.foo.net", Ipv4Addr::new(203, 0, 113, 9));
        let (outcome, _) = exchange(&mut client, &mut server, mta, now);
        outcome
    }

    #[test]
    fn recipient_policies() {
        let any = RecipientPolicy::AcceptAll;
        assert!(any.accepts(&"x@anything.example".parse().unwrap()));
        let dom = RecipientPolicy::Domain("Foo.NET".into());
        assert!(dom.accepts(&"x@foo.net".parse().unwrap()));
        assert!(!dom.accepts(&"x@bar.net".parse().unwrap()));
        let mut set = HashSet::new();
        set.insert("alice@foo.net".to_owned());
        let list = RecipientPolicy::List(set);
        assert!(list.accepts(&"Alice@FOO.net".parse().unwrap()));
        assert!(!list.accepts(&"bob@foo.net".parse().unwrap()));
    }

    #[test]
    fn unknown_recipient_rejected_before_greylist() {
        let mut mta = ReceivingMta::new("mx.foo.net", Ipv4Addr::new(192, 0, 2, 1))
            .with_recipients(RecipientPolicy::Domain("foo.net".into()))
            .with_greylist(Greylist::new(GreylistConfig::default()));
        let out = run_attempt(&mut mta, "x@other.example", SimTime::ZERO);
        assert!(matches!(out, spamward_smtp::DeliveryOutcome::PermFailed { .. }));
        assert_eq!(mta.stats().rcpt_unknown, 1);
        // The greylist must not have been consulted (no triplet created).
        assert_eq!(mta.greylist().unwrap().store().len(), 0);
    }

    #[test]
    fn greylist_defers_then_accepts() {
        let mut mta = ReceivingMta::new("mx.foo.net", Ipv4Addr::new(192, 0, 2, 1))
            .with_greylist(Greylist::new(GreylistConfig::with_delay(SimDuration::from_secs(300))));
        let t0 = SimTime::ZERO;
        let out = run_attempt(&mut mta, "u@foo.net", t0);
        assert!(out.is_retryable());
        assert_eq!(mta.mailbox().len(), 0);
        assert_eq!(mta.stats().rcpt_greylisted, 1);

        let t1 = t0 + SimDuration::from_secs(301);
        let out = run_attempt(&mut mta, "u@foo.net", t1);
        assert!(out.is_delivered());
        assert_eq!(mta.mailbox().len(), 1);
        assert_eq!(mta.stats().messages_accepted, 1);
        assert_eq!(mta.mailbox()[0].received_at, t1);
    }

    #[test]
    fn no_greylist_accepts_immediately() {
        let mut mta = ReceivingMta::new("mx.foo.net", Ipv4Addr::new(192, 0, 2, 1));
        let out = run_attempt(&mut mta, "u@foo.net", SimTime::ZERO);
        assert!(out.is_delivered());
        assert_eq!(mta.stats().rcpt_passed, 1);
    }

    #[test]
    fn log_records_defer_and_accept_with_same_key() {
        let mut mta = ReceivingMta::new("mx.foo.net", Ipv4Addr::new(192, 0, 2, 1))
            .with_greylist(Greylist::new(GreylistConfig::with_delay(SimDuration::from_secs(300))));
        run_attempt(&mut mta, "u@foo.net", SimTime::ZERO);
        run_attempt(&mut mta, "u@foo.net", SimTime::from_secs(400));
        let log = mta.log();
        assert_eq!(log.len(), 3); // greylisted, passed, accepted
        assert_eq!(log[0].event, LogEvent::Greylisted);
        assert_eq!(log[1].event, LogEvent::PassedGreylist);
        assert_eq!(log[2].event, LogEvent::Accepted);
        assert_eq!(log[0].triplet_hash, log[1].triplet_hash);
        assert_eq!(log[0].triplet_hash, log[2].triplet_hash);
        // Text form parses back.
        let text = mta.log_text();
        for line in text.lines() {
            assert!(MtaLogEntry::parse_line(line).is_some(), "unparseable line {line:?}");
        }
    }

    #[test]
    fn whitelisted_pass_logged_as_whitelisted() {
        let mut cfg = GreylistConfig::default();
        cfg.whitelist_recipients.add_local_part("postmaster");
        let mut mta = ReceivingMta::new("mx.foo.net", Ipv4Addr::new(192, 0, 2, 1))
            .with_greylist(Greylist::new(cfg));
        let out = run_attempt(&mut mta, "postmaster@foo.net", SimTime::ZERO);
        assert!(out.is_delivered());
        assert_eq!(mta.log()[0].event, LogEvent::Whitelisted);
    }

    #[test]
    fn pregreet_rejection_stops_early_talker_bots() {
        let mut mta =
            ReceivingMta::new("mx.foo.net", Ipv4Addr::new(192, 0, 2, 1)).with_pregreet_rejection();
        // A bot dialect talks before the banner...
        let mut client =
            ClientSession::new(Dialect::minimal_bot("bot"), envelope("u@foo.net"), msg());
        let mut server = ServerSession::new("mx.foo.net", Ipv4Addr::new(203, 0, 113, 9));
        let (outcome, transcript) = exchange(&mut client, &mut server, &mut mta, SimTime::ZERO);
        assert!(!outcome.is_delivered());
        assert!(!outcome.is_retryable(), "pregreet rejection is permanent");
        assert_eq!(mta.stats().pregreet_rejected, 1);
        assert!(transcript.client_lines().any(|l| l.contains("before banner")));

        // ...while a patient MTA sails through.
        let out = run_attempt(&mut mta, "u@foo.net", SimTime::ZERO);
        assert!(out.is_delivered());
        assert_eq!(mta.stats().pregreet_rejected, 1);
    }

    #[test]
    fn greylist_store_outage_fail_closed_defers_with_its_own_counter() {
        let mut mta = ReceivingMta::new("mx.foo.net", Ipv4Addr::new(192, 0, 2, 1))
            .with_greylist(Greylist::new(GreylistConfig::with_delay(SimDuration::from_secs(300))));
        mta.set_greylist_outage(vec![FaultWindow::new(
            SimTime::from_secs(100),
            SimTime::from_secs(200),
        )]);
        // During the outage: tempfail, but NOT counted as a greylist defer,
        // and no triplet is recorded (the store is unreachable).
        let out = run_attempt(&mut mta, "u@foo.net", SimTime::from_secs(150));
        assert!(out.is_retryable());
        assert!(!out.is_delivered());
        assert_eq!(mta.stats().greylist_failed_closed, 1);
        assert_eq!(mta.stats().rcpt_greylisted, 0);
        assert_eq!(mta.greylist().unwrap().store().len(), 0);
        // After the outage the ordinary greylist takes over again.
        let out = run_attempt(&mut mta, "u@foo.net", SimTime::from_secs(250));
        assert!(out.is_retryable());
        assert_eq!(mta.stats().rcpt_greylisted, 1);
        assert_eq!(mta.greylist().unwrap().store().len(), 1);
    }

    #[test]
    fn greylist_store_outage_fail_open_admits_unchecked() {
        let mut mta = ReceivingMta::new("mx.foo.net", Ipv4Addr::new(192, 0, 2, 1))
            .with_greylist(Greylist::new(GreylistConfig::with_delay(SimDuration::from_secs(300))))
            .with_degradation(DegradationMode::FailOpen);
        mta.set_greylist_outage(vec![FaultWindow::new(SimTime::ZERO, SimTime::from_secs(100))]);
        // A first-contact triplet that the greylist would have deferred
        // sails straight into the mailbox.
        let out = run_attempt(&mut mta, "u@foo.net", SimTime::from_secs(10));
        assert!(out.is_delivered());
        assert_eq!(mta.stats().greylist_failed_open, 1);
        assert_eq!(mta.mailbox().len(), 1);
        assert_eq!(mta.greylist().unwrap().store().len(), 0, "store was down, nothing recorded");
        // Outside the window the greylist is back in charge.
        let out = run_attempt(&mut mta, "v@foo.net", SimTime::from_secs(150));
        assert!(!out.is_delivered());
        assert_eq!(mta.stats().rcpt_greylisted, 1);
    }

    #[test]
    fn remote_backend_outage_routes_through_degradation() {
        use spamward_greylist::{RemoteStore, StoreBackend};
        let greylist = Greylist::new(GreylistConfig::with_delay(SimDuration::from_secs(300)))
            .with_backend(StoreBackend::Remote(RemoteStore::new(SimDuration::from_millis(2))));
        let mut mta =
            ReceivingMta::new("mx.foo.net", Ipv4Addr::new(192, 0, 2, 1)).with_greylist(greylist);
        mta.install_greylist_faults(vec![FaultWindow::new(
            SimTime::from_secs(100),
            SimTime::from_secs(200),
        )]);
        assert!(mta.has_greylist_outage(), "routed remote faults still gate degraded metrics");
        // Inside the window the *store lookup* fails (protocol-level, not
        // ambient state) and lands in the same fail-closed path.
        let out = run_attempt(&mut mta, "u@foo.net", SimTime::from_secs(150));
        assert!(out.is_retryable());
        assert_eq!(mta.stats().greylist_failed_closed, 1);
        assert_eq!(mta.stats().rcpt_greylisted, 0);
        assert_eq!(mta.greylist().unwrap().store().len(), 0);
        // Outside the window the remote store answers normally.
        let out = run_attempt(&mut mta, "u@foo.net", SimTime::from_secs(250));
        assert!(out.is_retryable());
        assert_eq!(mta.stats().rcpt_greylisted, 1);
        assert_eq!(mta.greylist().unwrap().store().len(), 1);
    }

    #[test]
    fn in_process_backend_faults_fall_back_to_ambient_windows() {
        let mut mta = ReceivingMta::new("mx.foo.net", Ipv4Addr::new(192, 0, 2, 1))
            .with_greylist(Greylist::new(GreylistConfig::with_delay(SimDuration::from_secs(300))));
        mta.install_greylist_faults(vec![FaultWindow::new(
            SimTime::from_secs(100),
            SimTime::from_secs(200),
        )]);
        assert!(mta.has_greylist_outage());
        let out = run_attempt(&mut mta, "u@foo.net", SimTime::from_secs(150));
        assert!(out.is_retryable());
        assert_eq!(mta.stats().greylist_failed_closed, 1, "ambient window must still fire");
    }

    #[test]
    fn no_outage_schedule_means_no_degradation_path() {
        let mta = ReceivingMta::new("mx.foo.net", Ipv4Addr::new(192, 0, 2, 1))
            .with_greylist(Greylist::new(GreylistConfig::default()));
        assert!(!mta.has_greylist_outage());
    }

    #[test]
    fn drain_mailbox_keeps_stats() {
        let mut mta = ReceivingMta::new("mx.foo.net", Ipv4Addr::new(192, 0, 2, 1));
        run_attempt(&mut mta, "u@foo.net", SimTime::ZERO);
        let drained = mta.drain_mailbox();
        assert_eq!(drained.len(), 1);
        assert_eq!(mta.mailbox().len(), 0);
        assert_eq!(mta.stats().messages_accepted, 1);
    }

    /// A greylisting server with the given durability and one crash window
    /// [100 s, 200 s).
    fn crashy_mta(durability: DurabilityMode) -> ReceivingMta {
        let mut mta = ReceivingMta::new("mx.foo.net", Ipv4Addr::new(192, 0, 2, 1))
            .with_greylist(Greylist::new(GreylistConfig::with_delay(SimDuration::from_secs(300))))
            .with_durability(durability);
        mta.install_crash_schedule(vec![FaultWindow::new(
            SimTime::from_secs(100),
            SimTime::from_secs(200),
        )]);
        mta
    }

    #[test]
    fn volatile_restart_loses_the_store() {
        let mut mta = crashy_mta(DurabilityMode::Volatile);
        assert!(mta.has_crash_schedule());
        assert!(mta.is_crashed_at(SimTime::from_secs(150)));
        assert!(!mta.is_crashed_at(SimTime::from_secs(200)), "restart instant is up again");
        run_attempt(&mut mta, "u@foo.net", SimTime::ZERO);
        assert_eq!(mta.greylist().unwrap().store().len(), 1);

        let fired = mta.poll_crash(SimTime::from_secs(250));
        assert_eq!(fired.len(), 2, "crash edge and restart edge both fire");
        assert_eq!(fired[0], CrashTransition::Crashed { entries_in_memory: 1 });
        assert_eq!(
            fired[1],
            CrashTransition::Restarted { restored: 0, replayed: 0, torn: 0, lost: 1 }
        );
        assert_eq!(mta.greylist().unwrap().store().len(), 0, "volatile crash loses everything");
        let stats = mta.crash_stats();
        assert_eq!((stats.crashes, stats.restarts, stats.entries_lost), (1, 1, 1));

        // The pre-crash triplet is gone: its retry is first contact again,
        // deferred even though the original delay had elapsed.
        let out = run_attempt(&mut mta, "u@foo.net", SimTime::from_secs(400));
        assert!(out.is_retryable(), "lost triplet means the retry is re-greylisted");
        // Polling again fires nothing — edges are consumed exactly once.
        assert!(mta.poll_crash(SimTime::from_secs(900)).is_empty());
    }

    #[test]
    fn snapshot_restart_restores_the_checkpoint_but_loses_the_tail() {
        let mut mta = crashy_mta(DurabilityMode::Snapshot);
        run_attempt(&mut mta, "u@foo.net", SimTime::ZERO);
        mta.checkpoint(SimTime::from_secs(5));
        // A second triplet lands after the checkpoint — it is the tail the
        // snapshot-only mode loses.
        run_attempt(&mut mta, "v@foo.net", SimTime::from_secs(10));
        assert_eq!(mta.greylist().unwrap().store().len(), 2);

        let fired = mta.poll_crash(SimTime::from_secs(250));
        assert_eq!(
            fired[1],
            CrashTransition::Restarted { restored: 1, replayed: 0, torn: 0, lost: 1 }
        );
        assert_eq!(mta.greylist().unwrap().store().len(), 1);
        // The checkpointed triplet kept its first-seen time: its retry
        // passes; the lost tail triplet is deferred from scratch.
        assert!(run_attempt(&mut mta, "u@foo.net", SimTime::from_secs(400)).is_delivered());
        assert!(run_attempt(&mut mta, "v@foo.net", SimTime::from_secs(400)).is_retryable());
        let stats = mta.crash_stats();
        assert_eq!(stats.entries_restored, 1);
        assert_eq!(stats.entries_lost, 1);
        // Periodic tick + the restart's re-baselining checkpoint.
        assert_eq!(stats.checkpoints, 2);
    }

    #[test]
    fn snapshot_plus_wal_restart_loses_nothing() {
        let mut mta = crashy_mta(DurabilityMode::SnapshotPlusWal);
        mta.install_crash_schedule(vec![
            FaultWindow::new(SimTime::from_secs(100), SimTime::from_secs(200)),
            FaultWindow::new(SimTime::from_secs(500), SimTime::from_secs(600)),
        ]);
        run_attempt(&mut mta, "u@foo.net", SimTime::ZERO);
        mta.checkpoint(SimTime::from_secs(5));
        run_attempt(&mut mta, "v@foo.net", SimTime::from_secs(10));

        let fired = mta.poll_crash(SimTime::from_secs(250));
        assert_eq!(
            fired[1],
            CrashTransition::Restarted { restored: 1, replayed: 1, torn: 0, lost: 0 }
        );
        assert_eq!(mta.greylist().unwrap().store().len(), 2, "wal replay recovers the tail");
        assert!(run_attempt(&mut mta, "u@foo.net", SimTime::from_secs(400)).is_delivered());
        assert!(run_attempt(&mut mta, "v@foo.net", SimTime::from_secs(400)).is_delivered());

        // A mutation after the first restart, then a second crash: the
        // restart re-baselined the checkpoint, so nothing is lost here
        // either — not even state that predates the *first* crash.
        run_attempt(&mut mta, "w@foo.net", SimTime::from_secs(450));
        let fired = mta.poll_crash(SimTime::from_secs(700));
        assert!(
            matches!(fired[1], CrashTransition::Restarted { lost: 0, .. }),
            "second crash recovers from the re-baselined checkpoint: {fired:?}"
        );
        assert_eq!(mta.greylist().unwrap().store().len(), 3);
        assert_eq!(mta.crash_stats().entries_lost, 0);
    }

    #[test]
    fn checkpoints_are_skipped_while_the_server_is_down() {
        let mut mta = crashy_mta(DurabilityMode::Snapshot);
        run_attempt(&mut mta, "u@foo.net", SimTime::ZERO);
        mta.checkpoint(SimTime::from_secs(5));
        mta.poll_crash(SimTime::from_secs(100));
        assert_eq!(mta.greylist().unwrap().store().len(), 0, "crash reset the live store");
        // A periodic tick landing mid-downtime must not snapshot the reset
        // store over the good pre-crash checkpoint.
        mta.checkpoint(SimTime::from_secs(150));
        mta.poll_crash(SimTime::from_secs(200));
        assert_eq!(mta.greylist().unwrap().store().len(), 1, "pre-crash checkpoint survived");
        assert_eq!(mta.crash_stats().entries_restored, 1);
    }

    #[test]
    fn crash_during_finds_instants_inside_a_session_span() {
        let mta = crashy_mta(DurabilityMode::Volatile);
        let t = SimTime::from_secs;
        assert_eq!(mta.crash_during(t(90), t(110)), Some(t(100)));
        assert_eq!(mta.crash_during(t(100), t(110)), None, "strictly after start");
        assert_eq!(mta.crash_during(t(90), t(100)), Some(t(100)), "inclusive end");
        assert_eq!(mta.crash_during(t(30), t(40)), None);
        assert!(!ReceivingMta::new("x", Ipv4Addr::new(192, 0, 2, 2)).has_crash_schedule());
    }
}
