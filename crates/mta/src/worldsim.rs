//! Event-driven episodes over a [`MailWorld`].
//!
//! [`WorldSim`] is the bridge between the mail world and the engine's
//! actor layer: it moves the world into an [`ActorSim`] for the duration
//! of one *episode* — a single driver (a sending MTA, a webmail outbound
//! tier built by `spamward_webmail`, or a botnet delivery chain) running
//! as a self-rescheduling timer that calls
//! [`MailWorld::attempt_delivery`] from inside engine events — and moves
//! it back out afterwards, folding the episode's [`EngineStats`] into
//! [`MailWorld::engine_stats`].
//!
//! Episodes are sequential by design: the world's shared latency RNG
//! means results depend on the exact global order of delivery attempts,
//! so one driver owns the world at a time and the experiment composes
//! episodes in its own order. Within an episode, same-instant events run
//! FIFO — the engine's determinism guarantee applies unchanged.
//!
//! [`MailWorld::event_budget`] (when set) is a *cumulative* cap: each
//! episode runs with whatever budget previous episodes left over, and a
//! truncated episode surfaces as
//! [`RunOutcome::BudgetExhausted`] in the returned outcome and the
//! world's outcome tally.

use crate::metrics::SAMPLE_BREAKER_TRIPS;
use crate::send::SendingMta;
use crate::world::MailWorld;
use spamward_net::FaultPlan;
use spamward_sim::{Actor, ActorSim, RunOutcome, SampleClock, SimTime, Wake};

/// Runs single-driver engine episodes against a [`MailWorld`].
pub struct WorldSim;

impl WorldSim {
    /// Runs `actor` to completion (queue drained, `horizon` passed, or
    /// event budget exhausted) as one engine episode over `world`.
    ///
    /// The actor's first wake-up fires at `first_wake`; every subsequent
    /// one is whatever [`Wake`] the actor returns. Returns the actor (with
    /// whatever results it accumulated), the episode's [`RunOutcome`], and
    /// the final virtual clock.
    pub fn episode<A: Actor<MailWorld> + 'static>(
        world: &mut MailWorld,
        actor: A,
        first_wake: SimTime,
        horizon: Option<SimTime>,
    ) -> (A, RunOutcome, SimTime) {
        let (mut actors, outcome, end) =
            WorldSim::episode_with(world, vec![(actor, first_wake)], horizon);
        // Exactly one actor was registered above.
        (actors.swap_remove(0), outcome, end)
    }

    /// Runs several actors of one type as a single engine episode.
    ///
    /// This is the multi-driver form of [`WorldSim::episode`]: every
    /// `(actor, first_wake)` pair is registered before the engine starts,
    /// so same-instant wake-ups across actors interleave in registration
    /// order (the engine's FIFO guarantee). A fault timeline
    /// ([`FaultActor`]) can thereby fire its window boundaries in the same
    /// event stream as the delivery attempts it perturbs — which is what
    /// makes serial and `--jobs N` runs see identical fault sequences.
    ///
    /// Returns the actors (in registration order), the episode outcome,
    /// and the final virtual clock.
    pub fn episode_with<A: Actor<MailWorld> + 'static>(
        world: &mut MailWorld,
        actors: Vec<(A, SimTime)>,
        horizon: Option<SimTime>,
    ) -> (Vec<A>, RunOutcome, SimTime) {
        let owned = std::mem::replace(world, MailWorld::new(0));
        let remaining = owned.event_budget.map(|t| t.saturating_sub(owned.engine_stats.events));
        // A sampler joins the cast only for horizon-bounded episodes of a
        // sampling world: an unbounded episode has no last tick, and a
        // world that never asked for telemetry must run the exact same
        // event stream as before (golden bytes depend on it).
        let first = actors.iter().map(|(_, at)| *at).min().unwrap_or(SimTime::ZERO);
        let sampler = match (owned.sample_interval(), horizon) {
            (Some(interval), Some(h)) => {
                let clock = SampleClock::new(interval, h);
                clock.next_after(first).map(|tick| (SamplerActor::new(clock), tick))
            }
            _ => None,
        };
        // Same opt-in rule for the store-maintenance sweeper: only
        // horizon-bounded episodes of a world that asked for it, so default
        // worlds run the exact prior event stream.
        let maintenance = match (owned.maintenance_interval(), horizon) {
            (Some(interval), Some(h)) => {
                let clock = SampleClock::new(interval, h);
                clock.next_after(first).map(|tick| (StoreMaintenanceActor::new(clock), tick))
            }
            _ => None,
        };
        // And for the durability checkpointer: horizon-bounded episodes of
        // a world that opted in via `with_checkpointing`, only.
        let checkpointer = match (owned.checkpoint_interval(), horizon) {
            (Some(interval), Some(h)) => {
                let clock = SampleClock::new(interval, h);
                clock.next_after(first).map(|tick| (CheckpointActor::new(clock), tick))
            }
            _ => None,
        };
        let mut sim = ActorSim::new(owned);
        if let Some(h) = horizon {
            sim = sim.with_horizon(h);
        }
        if let Some(budget) = remaining {
            sim = sim.with_event_budget(budget);
        }
        for (actor, first_wake) in actors {
            sim.add_actor(EpisodeActor::Main(actor), first_wake);
        }
        if let Some((sampler, first_tick)) = sampler {
            sim.add_actor(EpisodeActor::Sampler(sampler), first_tick);
        }
        if let Some((sweeper, first_tick)) = maintenance {
            sim.add_actor(EpisodeActor::Maintenance(sweeper), first_tick);
        }
        if let Some((checkpointer, first_tick)) = checkpointer {
            sim.add_actor(EpisodeActor::Checkpoint(checkpointer), first_tick);
        }
        let outcome = sim.run();
        let end = sim.now();
        let stats = sim.stats();
        let (mut episode_world, cast) = sim.into_parts();
        episode_world.engine_stats.merge(&stats);
        *world = episode_world;
        let actors = cast
            .into_iter()
            .filter_map(|wrapped| match wrapped {
                EpisodeActor::Main(actor) => Some(actor),
                EpisodeActor::Sampler(_)
                | EpisodeActor::Maintenance(_)
                | EpisodeActor::Checkpoint(_) => None,
            })
            .collect();
        (actors, outcome, end)
    }
}

/// The telemetry sampler as an engine actor: every tick snapshots the
/// world's counters into [`MailWorld::samples`]
/// ([`MailWorld::sample_telemetry`]), then sleeps one interval. Ticks are
/// ordinary engine events, so they are ordered (FIFO at equal instants)
/// against the delivery attempts they observe and counted under the
/// `obs.sample` actor category.
pub struct SamplerActor {
    clock: SampleClock,
}

impl SamplerActor {
    /// A sampler ticking on `clock`.
    pub fn new(clock: SampleClock) -> Self {
        SamplerActor { clock }
    }
}

impl Actor<MailWorld> for SamplerActor {
    fn name(&self) -> &str {
        crate::metrics::ACTOR_OBS_SAMPLE
    }

    fn wake(&mut self, now: SimTime, world: &mut MailWorld) -> Wake {
        world.sample_telemetry(now);
        match self.clock.next_after(now) {
            Some(at) => Wake::At(at),
            None => Wake::Idle,
        }
    }
}

/// The greylist-store maintenance sweeper as an engine actor: every tick
/// purges expired triplets from every server's store
/// ([`MailWorld::maintain_stores`]) — the in-simulation analogue of
/// Postgrey's cron-driven database cleanup — then sleeps one interval.
/// Ticks are ordinary engine events under the `greylist.maintain` actor
/// category, so serial and sharded runs sweep at identical virtual
/// instants.
pub struct StoreMaintenanceActor {
    clock: SampleClock,
}

impl StoreMaintenanceActor {
    /// A sweeper ticking on `clock`.
    pub fn new(clock: SampleClock) -> Self {
        StoreMaintenanceActor { clock }
    }
}

impl Actor<MailWorld> for StoreMaintenanceActor {
    fn name(&self) -> &str {
        crate::metrics::ACTOR_STORE_MAINTAIN
    }

    fn wake(&mut self, now: SimTime, world: &mut MailWorld) -> Wake {
        world.maintain_stores(now);
        match self.clock.next_after(now) {
            Some(at) => Wake::At(at),
            None => Wake::Idle,
        }
    }
}

/// The durability checkpointer as an engine actor: every tick snapshots
/// each server's greylist store and truncates its WAL
/// ([`MailWorld::checkpoint_stores`]) — the in-simulation analogue of
/// Postgrey's periodic on-disk database sync — then sleeps one interval.
/// Ticks are ordinary engine events under the `greylist.checkpoint` actor
/// category, so serial and sharded runs checkpoint at identical virtual
/// instants.
pub struct CheckpointActor {
    clock: SampleClock,
}

impl CheckpointActor {
    /// A checkpointer ticking on `clock`.
    pub fn new(clock: SampleClock) -> Self {
        CheckpointActor { clock }
    }
}

impl Actor<MailWorld> for CheckpointActor {
    fn name(&self) -> &str {
        crate::metrics::ACTOR_CHECKPOINT
    }

    fn wake(&mut self, now: SimTime, world: &mut MailWorld) -> Wake {
        world.checkpoint_stores(now);
        match self.clock.next_after(now) {
            Some(at) => Wake::At(at),
            None => Wake::Idle,
        }
    }
}

/// Internal cast wrapper: [`ActorSim`] runs actors of one type, so the
/// caller's homogeneous cast and the optional sampler/sweeper/checkpointer
/// share the episode through this enum.
enum EpisodeActor<A> {
    Main(A),
    Sampler(SamplerActor),
    Maintenance(StoreMaintenanceActor),
    Checkpoint(CheckpointActor),
}

impl<A: Actor<MailWorld>> Actor<MailWorld> for EpisodeActor<A> {
    fn name(&self) -> &str {
        match self {
            EpisodeActor::Main(actor) => actor.name(),
            EpisodeActor::Sampler(actor) => actor.name(),
            EpisodeActor::Maintenance(actor) => actor.name(),
            EpisodeActor::Checkpoint(actor) => actor.name(),
        }
    }

    fn wake(&mut self, now: SimTime, world: &mut MailWorld) -> Wake {
        match self {
            EpisodeActor::Main(actor) => actor.wake(now, world),
            EpisodeActor::Sampler(actor) => actor.wake(now, world),
            EpisodeActor::Maintenance(actor) => actor.wake(now, world),
            EpisodeActor::Checkpoint(actor) => actor.wake(now, world),
        }
    }
}

/// The sending-MTA process: each wake-up runs every due delivery attempt,
/// then sleeps until the queue's next retry — the MTA's retransmission
/// schedule as a self-rescheduling timer.
pub struct SenderActor {
    mta: SendingMta,
    breaker_trips_reported: u64,
}

impl SenderActor {
    /// Wraps a sending MTA for an engine episode.
    pub fn new(mta: SendingMta) -> Self {
        SenderActor { mta, breaker_trips_reported: 0 }
    }

    /// Unwraps the MTA after the episode.
    pub fn into_inner(self) -> SendingMta {
        self.mta
    }
}

impl Actor<MailWorld> for SenderActor {
    fn name(&self) -> &str {
        crate::metrics::ACTOR_MTA_SEND
    }

    fn wake(&mut self, now: SimTime, world: &mut MailWorld) -> Wake {
        self.mta.run_due(now, world);
        // Breaker state lives in the sending MTA, out of the world
        // sampler's reach — so a sampling world gets trip *increments*
        // recorded here, at the virtual instant the wake-up tripped them.
        if world.sample_interval().is_some() && self.mta.retry_policy().is_some() {
            let trips = self.mta.breaker_trips();
            let delta = trips - self.breaker_trips_reported;
            if delta > 0 {
                world.samples.record_point(
                    SAMPLE_BREAKER_TRIPS,
                    now,
                    i64::try_from(delta).unwrap_or(i64::MAX),
                );
            }
            self.breaker_trips_reported = trips;
        }
        match self.mta.next_due() {
            Some(due) => Wake::At(due),
            None => Wake::Idle,
        }
    }
}

/// The fault timeline as an actor: wakes at every window boundary of the
/// installed [`FaultPlan`] and stamps it on the world
/// ([`MailWorld::note_fault_boundary`]).
///
/// Fault *decisions* are pure functions of identity and virtual time (see
/// `spamward_net::faults`), so this actor carries no randomness — its job
/// is to make window edges visible as engine events: they land in the
/// trace, in the actor-event tally, and in `net.fault.boundary_events`,
/// giving serial and parallel runs one auditable fault sequence.
pub struct FaultActor {
    boundaries: Vec<SimTime>,
    cursor: usize,
}

impl FaultActor {
    /// Builds the boundary timeline from a compiled plan.
    pub fn new(plan: &FaultPlan) -> Self {
        FaultActor { boundaries: plan.boundaries(), cursor: 0 }
    }

    /// The first boundary, if the plan has any windows at all.
    pub fn first_wake(&self) -> Option<SimTime> {
        self.boundaries.first().copied()
    }
}

impl Actor<MailWorld> for FaultActor {
    fn name(&self) -> &str {
        crate::metrics::TRACE_FAULT
    }

    fn wake(&mut self, now: SimTime, world: &mut MailWorld) -> Wake {
        // Consume every boundary at or before `now` (the first wake-up may
        // be scheduled past several early edges).
        while self.cursor < self.boundaries.len() && self.boundaries[self.cursor] <= now {
            self.cursor += 1;
        }
        world.note_fault_boundary(now);
        match self.boundaries.get(self.cursor) {
            Some(&next) => Wake::At(next),
            None => Wake::Idle,
        }
    }
}

/// A heterogeneous cast for fault-injection episodes: [`ActorSim`] runs
/// actors of one type, so the sender and the fault timeline wrap into
/// this enum to share a single event stream.
pub enum ChaosActor {
    /// A sending MTA's retry timer (boxed: it owns the whole queue).
    Sender(Box<SenderActor>),
    /// The fault plan's window-boundary timer.
    Faults(FaultActor),
}

impl Actor<MailWorld> for ChaosActor {
    fn name(&self) -> &str {
        match self {
            ChaosActor::Sender(a) => a.name(),
            ChaosActor::Faults(a) => a.name(),
        }
    }

    fn wake(&mut self, now: SimTime, world: &mut MailWorld) -> Wake {
        match self {
            ChaosActor::Sender(a) => a.wake(now, world),
            ChaosActor::Faults(a) => a.wake(now, world),
        }
    }
}

impl WorldSim {
    /// Drains `mta`'s queue with the world's fault timeline running in the
    /// same episode: the [`FaultActor`] built from `plan` and the sender
    /// share one event stream, so every window edge is an engine event
    /// ordered against the delivery attempts it affects.
    ///
    /// Call [`MailWorld::install_faults`] with the same plan first — this
    /// only drives the *timeline*; the installed fault state is what the
    /// network, resolver and servers actually consult. Returns the
    /// drained MTA, the episode outcome, and the final virtual clock.
    pub fn drain_with_faults(
        world: &mut MailWorld,
        mta: SendingMta,
        plan: &FaultPlan,
        start: SimTime,
        horizon: Option<SimTime>,
    ) -> (SendingMta, RunOutcome, SimTime) {
        let fault_actor = FaultActor::new(plan);
        let first_fault = fault_actor.first_wake();
        let first_send = mta.next_due().unwrap_or(start).max(start);
        let mut cast = vec![(ChaosActor::Sender(Box::new(SenderActor::new(mta))), first_send)];
        if let Some(at) = first_fault {
            cast.push((ChaosActor::Faults(fault_actor), at));
        }
        let (actors, outcome, end) = WorldSim::episode_with(world, cast, horizon);
        let mut mta = None;
        for actor in actors {
            if let ChaosActor::Sender(a) = actor {
                mta = Some(a.into_inner());
            }
        }
        // The sender was registered above; it always comes back.
        (mta.expect("sender actor survives the episode"), outcome, end.max(start))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::receive::ReceivingMta;
    use crate::schedule::MtaProfile;
    use spamward_dns::Zone;
    use spamward_net::FaultProfile;
    use spamward_smtp::{Message, ReversePath};
    use std::net::Ipv4Addr;

    fn seeded_world() -> (MailWorld, Ipv4Addr) {
        let mut world = MailWorld::new(31);
        let mx = Ipv4Addr::new(192, 0, 2, 10);
        world.install_server(ReceivingMta::new("mail.foo.net", mx));
        world.dns.publish(Zone::single_mx("foo.net".parse().unwrap(), mx));
        (world, mx)
    }

    fn one_message_mta() -> SendingMta {
        let mut mta = SendingMta::new(
            "relay.example",
            vec![Ipv4Addr::new(198, 51, 100, 1)],
            MtaProfile::postfix(),
        );
        mta.submit(
            "foo.net".parse().unwrap(),
            ReversePath::Address("a@relay.example".parse().unwrap()),
            vec!["u@foo.net".parse().unwrap()],
            Message::builder().body("x").build(),
            SimTime::ZERO,
        );
        mta
    }

    #[test]
    fn fault_timeline_shares_the_event_stream_with_the_sender() {
        let (mut world, mx) = seeded_world();
        let plan = FaultPlan::compile(&FaultProfile::dns_degraded(), 7);
        world.install_faults(&plan);
        let n_boundaries = plan.boundaries().len() as u64;
        let (mta, _outcome, _end) =
            WorldSim::drain_with_faults(&mut world, one_message_mta(), &plan, SimTime::ZERO, None);
        assert_eq!(mta.queue()[0].status, crate::send::OutboundStatus::Delivered);
        assert_eq!(world.server(mx).unwrap().mailbox().len(), 1);
        assert_eq!(
            world.fault_boundaries(),
            n_boundaries,
            "every window edge must surface as an engine event"
        );
        assert!(world.engine_stats.actor_events.contains_key("net.fault"));
        assert!(world.engine_stats.actor_events.contains_key("mta.send"));
    }

    #[test]
    fn sampling_world_gets_a_sampler_in_every_bounded_episode() {
        use spamward_sim::SimDuration;

        let (mut world, _) = seeded_world();
        world = world.with_sampling(SimDuration::from_secs(60));
        let horizon = SimTime::from_secs(300);
        let (_, _outcome, _end) = WorldSim::episode(
            &mut world,
            SenderActor::new(one_message_mta()),
            SimTime::ZERO,
            Some(horizon),
        );
        // Ticks land at 60, 120, ..., 300 s of virtual time.
        assert!(world.engine_stats.actor_events.contains_key("obs.sample"));
        assert_eq!(
            world.samples.get(crate::metrics::SAMPLE_RECV_ACCEPTED, SimTime::from_secs(60)),
            Some(1),
            "first tick sees the already-delivered message"
        );
        assert_eq!(world.samples.get(crate::metrics::SAMPLE_RECV_ACCEPTED, horizon), Some(1));

        // Without a horizon no sampler joins (nothing would bound it) and
        // the episode still drains normally.
        let (mut quiet, _) = seeded_world();
        quiet = quiet.with_sampling(SimDuration::from_secs(60));
        let (_, outcome, _) =
            WorldSim::episode(&mut quiet, SenderActor::new(one_message_mta()), SimTime::ZERO, None);
        assert_eq!(outcome, RunOutcome::Drained);
        assert!(quiet.samples.is_empty());
        assert!(!quiet.engine_stats.actor_events.contains_key("obs.sample"));
    }

    #[test]
    fn maintenance_world_sweeps_stores_on_schedule() {
        use spamward_greylist::{Greylist, GreylistConfig};
        use spamward_sim::SimDuration;

        let mut world = MailWorld::new(31);
        let mx = Ipv4Addr::new(192, 0, 2, 10);
        world.install_server(ReceivingMta::new("mail.foo.net", mx).with_greylist(Greylist::new(
            GreylistConfig::with_delay(SimDuration::from_secs(300)).without_auto_whitelist(),
        )));
        world.dns.publish(Zone::single_mx("foo.net".parse().unwrap(), mx));
        world = world.with_store_maintenance(SimDuration::from_secs(120));
        let horizon = SimTime::from_secs(600);
        let (_, _outcome, _end) = WorldSim::episode(
            &mut world,
            SenderActor::new(one_message_mta()),
            SimTime::ZERO,
            Some(horizon),
        );
        assert!(world.engine_stats.actor_events.contains_key("greylist.maintain"));
        // The 120 s tick sees the deferred first contact still pending.
        assert_eq!(
            world.samples.get(crate::metrics::SAMPLE_STORE_SIZE, SimTime::from_secs(120)),
            Some(1)
        );
        assert!(world
            .samples
            .get(crate::metrics::SAMPLE_STORE_BYTES, SimTime::from_secs(120))
            .is_some_and(|b| b > 0));
        // Worlds that never opted in keep the exact prior event stream.
        let (mut plain, _) = seeded_world();
        let (_, _, _) = WorldSim::episode(
            &mut plain,
            SenderActor::new(one_message_mta()),
            SimTime::ZERO,
            Some(horizon),
        );
        assert!(!plain.engine_stats.actor_events.contains_key("greylist.maintain"));
    }

    #[test]
    fn unsampled_worlds_run_the_exact_prior_event_stream() {
        let (mut world, _) = seeded_world();
        let (_, _, _) = WorldSim::episode(
            &mut world,
            SenderActor::new(one_message_mta()),
            SimTime::ZERO,
            Some(SimTime::from_secs(300)),
        );
        assert!(world.samples.is_empty());
        assert!(!world.engine_stats.actor_events.contains_key("obs.sample"));
    }

    #[test]
    fn crash_restart_fires_through_the_engine_and_recovers_per_durability() {
        use spamward_greylist::{DurabilityMode, Greylist, GreylistConfig};
        use spamward_sim::SimDuration;

        let mut world = MailWorld::new(31);
        let mx = Ipv4Addr::new(192, 0, 2, 10);
        world.install_server(
            ReceivingMta::new("mail.foo.net", mx)
                .with_greylist(Greylist::new(
                    GreylistConfig::with_delay(SimDuration::from_secs(300))
                        .without_auto_whitelist(),
                ))
                .with_durability(DurabilityMode::SnapshotPlusWal),
        );
        world.dns.publish(Zone::single_mx("foo.net".parse().unwrap(), mx));
        world = world.with_checkpointing(SimDuration::from_secs(60));
        let plan = FaultPlan::compile(
            &spamward_net::FaultProfile::crash_restart(
                "mail.foo.net",
                SimTime::from_secs(120),
                SimDuration::from_secs(60),
            ),
            7,
        );
        world.install_faults(&plan);

        let (mta, _outcome, _end) = WorldSim::drain_with_faults(
            &mut world,
            one_message_mta(),
            &plan,
            SimTime::ZERO,
            Some(SimTime::from_secs(900)),
        );
        // t0: greylisted first contact. 60 s: checkpoint (1 entry).
        // 120 s: crash. 180 s: restart, checkpoint restored. 300 s: the
        // postfix retry passes the 300 s delay against the *recovered*
        // triplet — durable state means the crash cost no extra delay.
        assert_eq!(mta.queue()[0].status, crate::send::OutboundStatus::Delivered);
        assert_eq!(world.server(mx).unwrap().mailbox().len(), 1);
        let crash = world.server(mx).unwrap().crash_stats();
        assert_eq!((crash.crashes, crash.restarts), (1, 1));
        assert_eq!(crash.entries_restored, 1);
        assert_eq!(crash.entries_lost, 0);
        assert!(crash.checkpoints >= 2, "periodic ticks plus the restart re-baseline");
        // Both crash edges fired as engine events, and the checkpointer
        // ran as a real actor.
        assert_eq!(world.fault_boundaries(), plan.boundaries().len() as u64);
        assert!(world.engine_stats.actor_events.contains_key("greylist.checkpoint"));
        assert!(world.engine_stats.actor_events.contains_key("net.fault"));
        // Worlds that never opted in keep the exact prior event stream.
        let (mut plain, _) = seeded_world();
        let (_, _, _) = WorldSim::episode(
            &mut plain,
            SenderActor::new(one_message_mta()),
            SimTime::ZERO,
            Some(SimTime::from_secs(300)),
        );
        assert!(!plain.engine_stats.actor_events.contains_key("greylist.checkpoint"));
    }

    #[test]
    fn empty_plan_adds_no_fault_actor() {
        let (mut world, _) = seeded_world();
        let plan = FaultPlan::compile(&FaultProfile::none(), 7);
        let (mta, _outcome, _end) =
            WorldSim::drain_with_faults(&mut world, one_message_mta(), &plan, SimTime::ZERO, None);
        assert_eq!(mta.queue()[0].status, crate::send::OutboundStatus::Delivered);
        assert_eq!(world.fault_boundaries(), 0);
        assert!(!world.engine_stats.actor_events.contains_key("net.fault"));
    }
}
