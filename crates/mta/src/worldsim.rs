//! Event-driven episodes over a [`MailWorld`].
//!
//! [`WorldSim`] is the bridge between the mail world and the engine's
//! actor layer: it moves the world into an [`ActorSim`] for the duration
//! of one *episode* — a single driver (a sending MTA, a webmail outbound
//! tier built by `spamward_webmail`, or a botnet delivery chain) running
//! as a self-rescheduling timer that calls
//! [`MailWorld::attempt_delivery`] from inside engine events — and moves
//! it back out afterwards, folding the episode's [`EngineStats`] into
//! [`MailWorld::engine_stats`].
//!
//! Episodes are sequential by design: the world's shared latency RNG
//! means results depend on the exact global order of delivery attempts,
//! so one driver owns the world at a time and the experiment composes
//! episodes in its own order. Within an episode, same-instant events run
//! FIFO — the engine's determinism guarantee applies unchanged.
//!
//! [`MailWorld::event_budget`] (when set) is a *cumulative* cap: each
//! episode runs with whatever budget previous episodes left over, and a
//! truncated episode surfaces as
//! [`RunOutcome::BudgetExhausted`] in the returned outcome and the
//! world's outcome tally.

use crate::send::SendingMta;
use crate::world::MailWorld;
use spamward_sim::{Actor, ActorSim, RunOutcome, SimTime, Wake};

/// Runs single-driver engine episodes against a [`MailWorld`].
pub struct WorldSim;

impl WorldSim {
    /// Runs `actor` to completion (queue drained, `horizon` passed, or
    /// event budget exhausted) as one engine episode over `world`.
    ///
    /// The actor's first wake-up fires at `first_wake`; every subsequent
    /// one is whatever [`Wake`] the actor returns. Returns the actor (with
    /// whatever results it accumulated), the episode's [`RunOutcome`], and
    /// the final virtual clock.
    pub fn episode<A: Actor<MailWorld> + 'static>(
        world: &mut MailWorld,
        actor: A,
        first_wake: SimTime,
        horizon: Option<SimTime>,
    ) -> (A, RunOutcome, SimTime) {
        let owned = std::mem::replace(world, MailWorld::new(0));
        let remaining = owned.event_budget.map(|t| t.saturating_sub(owned.engine_stats.events));
        let mut sim = ActorSim::new(owned);
        if let Some(h) = horizon {
            sim = sim.with_horizon(h);
        }
        if let Some(budget) = remaining {
            sim = sim.with_event_budget(budget);
        }
        sim.add_actor(actor, first_wake);
        let outcome = sim.run();
        let end = sim.now();
        let stats = sim.stats();
        let (mut episode_world, mut actors) = sim.into_parts();
        episode_world.engine_stats.merge(&stats);
        *world = episode_world;
        // Exactly one actor was registered above.
        let actor = actors.swap_remove(0);
        (actor, outcome, end)
    }
}

/// The sending-MTA process: each wake-up runs every due delivery attempt,
/// then sleeps until the queue's next retry — the MTA's retransmission
/// schedule as a self-rescheduling timer.
pub struct SenderActor {
    mta: SendingMta,
}

impl SenderActor {
    /// Wraps a sending MTA for an engine episode.
    pub fn new(mta: SendingMta) -> Self {
        SenderActor { mta }
    }

    /// Unwraps the MTA after the episode.
    pub fn into_inner(self) -> SendingMta {
        self.mta
    }
}

impl Actor<MailWorld> for SenderActor {
    fn name(&self) -> &str {
        "mta.send"
    }

    fn wake(&mut self, now: SimTime, world: &mut MailWorld) -> Wake {
        self.mta.run_due(now, world);
        match self.mta.next_due() {
            Some(due) => Wake::At(due),
            None => Wake::Idle,
        }
    }
}
