//! Retry schedules of popular MTAs (paper Table IV).
//!
//! The paper extracted, from documentation, the default retransmission
//! times of the seven most popular MTA servers for the first ten hours,
//! plus the maximum time a message lives in the queue before being bounced.
//! Those schedules are reproduced here as executable values; the Table IV
//! bench renders them back out of this module.

use serde::{Deserialize, Serialize};
use spamward_sim::SimDuration;
use std::fmt;

/// A retry schedule expressed as *cumulative* attempt times: the `n`-th
/// retry (1-based) happens `nth_retry_at(n)` after the message was queued.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RetrySchedule {
    /// Retries at `first`, `first + step`, `first + 2*step`, ...
    /// (sendmail's and exchange's regular ladders).
    Arithmetic {
        /// Time of the first retry.
        first: SimDuration,
        /// Spacing of subsequent retries.
        step: SimDuration,
    },
    /// Retries at `unit * n²` (qmail's quadratic backoff).
    Quadratic {
        /// The base unit (qmail: 400 seconds).
        unit: SimDuration,
    },
    /// An explicit ladder of attempt times, continued past the end by
    /// adding `tail_interval` per further retry (postfix, courier, and all
    /// the webmail providers of Table III).
    Explicit {
        /// The listed attempt times, strictly increasing.
        times: Vec<SimDuration>,
        /// Interval appended after the ladder runs out; `None` means the
        /// sender simply stops retrying after the last listed attempt
        /// (aol's observed give-up behaviour).
        tail_interval: Option<SimDuration>,
    },
    /// A ladder followed by geometric growth of the last interval
    /// (exim: ×1.5 per retry, capped).
    Geometric {
        /// The listed initial attempt times.
        times: Vec<SimDuration>,
        /// Growth factor applied to the last interval.
        factor: f64,
        /// Interval cap.
        cap: SimDuration,
    },
}

impl RetrySchedule {
    /// The time of the `n`-th retry after queueing (`n >= 1`), or `None`
    /// when the schedule has given up.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` (attempt 0 is the initial delivery, always
    /// immediate).
    pub fn nth_retry_at(&self, n: u32) -> Option<SimDuration> {
        assert!(n >= 1, "retry indices are 1-based");
        match self {
            RetrySchedule::Arithmetic { first, step } => Some(*first + *step * u64::from(n - 1)),
            RetrySchedule::Quadratic { unit } => {
                Some(SimDuration::from_micros(unit.as_micros() * u64::from(n) * u64::from(n)))
            }
            RetrySchedule::Explicit { times, tail_interval } => {
                let idx = (n - 1) as usize;
                if idx < times.len() {
                    return Some(times[idx]);
                }
                let tail = (*tail_interval)?;
                let last = *times.last()?;
                Some(last + tail * (n as u64 - times.len() as u64))
            }
            RetrySchedule::Geometric { times, factor, cap } => {
                let idx = (n - 1) as usize;
                if idx < times.len() {
                    return Some(times[idx]);
                }
                // Continue from the last listed interval, growing by
                // `factor` per step, capped.
                let mut prev = *times.last()?;
                let len = times.len();
                let mut interval = if len >= 2 { times[len - 1] - times[len - 2] } else { prev };
                for _ in len..=idx {
                    interval = (interval * *factor).min(*cap);
                    prev += interval;
                }
                Some(prev)
            }
        }
    }

    /// All retry times within `horizon` (used to render Table IV's
    /// "first 10 hours" column).
    pub fn retries_within(&self, horizon: SimDuration) -> Vec<SimDuration> {
        let mut out = Vec::new();
        for n in 1..10_000 {
            match self.nth_retry_at(n) {
                Some(t) if t <= horizon => out.push(t),
                _ => break,
            }
        }
        out
    }
}

/// A named MTA: its retry schedule plus its queue lifetime.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MtaProfile {
    /// Software name as in Table IV.
    pub name: String,
    /// The retry schedule.
    pub schedule: RetrySchedule,
    /// Messages older than this are bounced (Table IV "max queue time").
    pub max_queue_time: SimDuration,
}

impl fmt::Display for MtaProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (max queue {})", self.name, self.max_queue_time)
    }
}

fn mins(m: u64) -> SimDuration {
    SimDuration::from_mins(m)
}

impl MtaProfile {
    /// sendmail: retries every 10 minutes, 5-day queue life.
    pub fn sendmail() -> Self {
        MtaProfile {
            name: "sendmail".into(),
            schedule: RetrySchedule::Arithmetic { first: mins(10), step: mins(10) },
            max_queue_time: SimDuration::from_days(5),
        }
    }

    /// exim: 15-minute ladder to 2 h, then ×1.5 growth; 4-day queue life.
    pub fn exim() -> Self {
        MtaProfile {
            name: "exim".into(),
            schedule: RetrySchedule::Geometric {
                times: vec![
                    mins(15),
                    mins(30),
                    mins(45),
                    mins(60),
                    mins(75),
                    mins(90),
                    mins(105),
                    mins(120),
                    mins(180),
                    mins(270),
                    mins(405),
                    SimDuration::from_secs(607 * 60 + 30), // 607.5 min
                ],
                factor: 1.5,
                cap: SimDuration::from_hours(6),
            },
            max_queue_time: SimDuration::from_days(4),
        }
    }

    /// postfix: 5-minute steps to 30 min, then 15-minute steps; 5-day
    /// queue life.
    pub fn postfix() -> Self {
        let mut times: Vec<SimDuration> =
            vec![mins(5), mins(10), mins(15), mins(20), mins(25), mins(30)];
        let mut t = 45;
        while t <= 600 {
            times.push(mins(t));
            t += 15;
        }
        MtaProfile {
            name: "postfix".into(),
            schedule: RetrySchedule::Explicit { times, tail_interval: Some(mins(15)) },
            max_queue_time: SimDuration::from_days(5),
        }
    }

    /// qmail: quadratic backoff (400 s × n²); 7-day queue life.
    pub fn qmail() -> Self {
        MtaProfile {
            name: "qmail".into(),
            schedule: RetrySchedule::Quadratic { unit: SimDuration::from_secs(400) },
            max_queue_time: SimDuration::from_days(7),
        }
    }

    /// courier: triplets of closely-spaced retries with growing gaps;
    /// 7-day queue life.
    pub fn courier() -> Self {
        let listed: &[u64] = &[
            5, 10, 15, 30, 35, 40, 70, 75, 80, 140, 145, 150, 270, 275, 280, 400, 405, 410, 530,
            535, 540, 660, 665, 670,
        ];
        MtaProfile {
            name: "courier".into(),
            schedule: RetrySchedule::Explicit {
                times: listed.iter().map(|&m| mins(m)).collect(),
                tail_interval: Some(mins(130)),
            },
            max_queue_time: SimDuration::from_days(7),
        }
    }

    /// exchange: retries every 15 minutes; 2-day queue life (the only one
    /// below RFC-822's 4–5 day guidance, as the paper notes).
    pub fn exchange() -> Self {
        MtaProfile {
            name: "exchange".into(),
            schedule: RetrySchedule::Arithmetic { first: mins(15), step: mins(15) },
            max_queue_time: SimDuration::from_days(2),
        }
    }

    /// All six Table IV profiles, in the paper's row order.
    pub fn table_iv() -> Vec<MtaProfile> {
        vec![
            Self::sendmail(),
            Self::exim(),
            Self::postfix(),
            Self::qmail(),
            Self::courier(),
            Self::exchange(),
        ]
    }

    /// The last retry that still happens within the queue lifetime.
    pub fn final_retry_at(&self) -> Option<SimDuration> {
        self.schedule.retries_within(self.max_queue_time).last().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn sendmail_ladder_matches_table_iv() {
        let s = MtaProfile::sendmail().schedule;
        let first_hour: Vec<u64> =
            s.retries_within(SimDuration::from_hours(1)).iter().map(|d| d.as_secs() / 60).collect();
        assert_eq!(first_hour, vec![10, 20, 30, 40, 50, 60]);
        assert_eq!(s.nth_retry_at(60), Some(SimDuration::from_mins(600)));
    }

    #[test]
    fn exchange_ladder_matches_table_iv() {
        let s = MtaProfile::exchange().schedule;
        let times: Vec<u64> =
            s.retries_within(SimDuration::from_mins(90)).iter().map(|d| d.as_secs() / 60).collect();
        assert_eq!(times, vec![15, 30, 45, 60, 75, 90]);
    }

    #[test]
    fn qmail_quadratic_matches_table_iv() {
        let s = MtaProfile::qmail().schedule;
        // Table IV row (minutes): 6.6, 26.6, 60, 106.6, 166.6, 240, ...
        let expected_secs =
            [400u64, 1_600, 3_600, 6_400, 10_000, 14_400, 19_600, 25_600, 32_400, 40_000];
        for (i, &exp) in expected_secs.iter().enumerate() {
            assert_eq!(s.nth_retry_at(i as u32 + 1), Some(SimDuration::from_secs(exp)));
        }
    }

    #[test]
    fn postfix_ladder_matches_table_iv() {
        let s = MtaProfile::postfix().schedule;
        let mins_seq: Vec<u64> = s
            .retries_within(SimDuration::from_mins(120))
            .iter()
            .map(|d| d.as_secs() / 60)
            .collect();
        assert_eq!(mins_seq, vec![5, 10, 15, 20, 25, 30, 45, 60, 75, 90, 105, 120]);
    }

    #[test]
    fn exim_geometric_growth() {
        let s = MtaProfile::exim().schedule;
        assert_eq!(s.nth_retry_at(9), Some(SimDuration::from_mins(180)));
        assert_eq!(s.nth_retry_at(10), Some(SimDuration::from_mins(270)));
        assert_eq!(s.nth_retry_at(11), Some(SimDuration::from_mins(405)));
        assert_eq!(s.nth_retry_at(12), Some(SimDuration::from_secs(607 * 60 + 30)));
        // Continuation grows ×1.5 but the *interval* caps at 6 h.
        let t12 = s.nth_retry_at(12).unwrap();
        let t13 = s.nth_retry_at(13).unwrap();
        assert!(t13 > t12);
        assert!(t13 - t12 <= SimDuration::from_hours(6));
    }

    #[test]
    fn courier_triplet_pattern() {
        let s = MtaProfile::courier().schedule;
        let m: Vec<u64> =
            s.retries_within(SimDuration::from_mins(80)).iter().map(|d| d.as_secs() / 60).collect();
        assert_eq!(m, vec![5, 10, 15, 30, 35, 40, 70, 75, 80]);
    }

    #[test]
    fn explicit_without_tail_gives_up() {
        let s = RetrySchedule::Explicit { times: vec![mins(5), mins(10)], tail_interval: None };
        assert_eq!(s.nth_retry_at(2), Some(mins(10)));
        assert_eq!(s.nth_retry_at(3), None);
        assert_eq!(s.retries_within(SimDuration::from_hours(10)).len(), 2);
    }

    #[test]
    fn exchange_queue_life_is_shortest() {
        let profiles = MtaProfile::table_iv();
        let exchange = profiles.iter().find(|p| p.name == "exchange").unwrap();
        for p in &profiles {
            assert!(p.max_queue_time >= exchange.max_queue_time);
        }
        assert_eq!(exchange.max_queue_time, SimDuration::from_days(2));
    }

    #[test]
    fn final_retry_within_queue_life() {
        for p in MtaProfile::table_iv() {
            let last = p.final_retry_at().unwrap();
            assert!(last <= p.max_queue_time, "{}: {last} beyond queue life", p.name);
            // Every Table IV MTA retries well past a 6-hour greylist.
            assert!(last > SimDuration::from_hours(6), "{}: gives up too early", p.name);
        }
    }

    #[test]
    #[should_panic(expected = "1-based")]
    fn zeroth_retry_panics() {
        let _ = MtaProfile::sendmail().schedule.nth_retry_at(0);
    }

    #[test]
    fn zero_horizon_yields_no_retries_for_any_profile() {
        // No Table IV schedule retries at t = 0: the initial delivery is
        // attempt 0 and the first *retry* is always strictly later.
        for p in MtaProfile::table_iv() {
            assert!(
                p.schedule.retries_within(SimDuration::ZERO).is_empty(),
                "{}: a zero horizon must contain no retries",
                p.name
            );
        }
    }

    #[test]
    fn horizon_exactly_on_a_retry_instant_includes_it() {
        // retries_within is inclusive at the right edge: a horizon that
        // lands exactly on the n-th retry keeps that retry as its last
        // element, and shrinking the horizon by one microsecond drops it.
        for p in MtaProfile::table_iv() {
            let first = p.schedule.nth_retry_at(1).unwrap();
            assert_eq!(
                p.schedule.retries_within(first),
                vec![first],
                "{}: horizon == first retry must include exactly that retry",
                p.name
            );
            assert!(
                p.schedule.retries_within(first - SimDuration::from_micros(1)).is_empty(),
                "{}: horizon just below the first retry must exclude it",
                p.name
            );

            let fifth = p.schedule.nth_retry_at(5).unwrap();
            let within = p.schedule.retries_within(fifth);
            assert_eq!(within.len(), 5, "{}: five retries at-or-before the fifth", p.name);
            assert_eq!(within.last(), Some(&fifth), "{}: boundary retry included", p.name);
        }
    }

    proptest! {
        #[test]
        fn prop_schedules_strictly_increase(n in 1u32..200) {
            for p in MtaProfile::table_iv() {
                if let (Some(a), Some(b)) = (p.schedule.nth_retry_at(n), p.schedule.nth_retry_at(n + 1)) {
                    prop_assert!(b > a, "{} not increasing at retry {n}", p.name);
                }
            }
        }
    }
}
