//! The glue tying DNS, the network and receiving servers into one world.

use crate::metrics::{
    SAMPLE_ENGINE_EVENTS, SAMPLE_ENGINE_QUEUE_HIGH_WATER, SAMPLE_GREYLIST_DEFERRED,
    SAMPLE_GREYLIST_PASSED, SAMPLE_RECV_ACCEPTED, SAMPLE_RECV_MAILBOX, SAMPLE_STORE_BYTES,
    SAMPLE_STORE_SIZE, TL_CONNECT, TL_DELIVER, TL_DNS, TL_EMIT, TL_GREYLIST_DEFER,
    TL_GREYLIST_PASS, TL_MTA_CRASH, TL_MTA_RESTART, TL_REJECT, TL_RETRY, TRACE_DNS_FAIL,
    TRACE_DNS_MX, TRACE_FAULT, TRACE_NET_FAIL, TRACE_SMTP_OUTCOME,
};
use crate::receive::{CrashTransition, ReceivingMta};
use spamward_dns::{Authority, DomainName, MxHost, ResolveError, Resolver};
use spamward_net::faults::TARPIT_HOLD;
use spamward_net::{FaultPlan, Network, SmtpAbortKind, SmtpFaults, SMTP_PORT};
use spamward_obs::{TimeSeries, Timeline};
use spamward_sim::trace::Tracer;
use spamward_sim::{DetRng, EngineStats, SimDuration, SimTime};
use spamward_smtp::{
    exchange, ClientSession, DeliveryOutcome, Dialect, Envelope, Message, ServerSession,
};
use std::collections::BTreeMap;
use std::net::Ipv4Addr;

/// Which MX records a sender targets — the paper's four-way bot taxonomy
/// (§IV-B), equally applicable to benign MTAs (always `RfcCompliant`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MxStrategy {
    /// Try every exchanger in ascending preference order (RFC 5321).
    RfcCompliant,
    /// Only the highest-priority exchanger — nolisting's prey (Kelihos).
    PrimaryOnly,
    /// Only the lowest-priority exchanger, skipping the primary outright —
    /// the anti-nolisting adaptation (Cutwail).
    SecondaryOnly,
    /// Every exchanger in random order.
    AllRandom,
}

impl MxStrategy {
    /// Orders resolved MX hosts into the candidate list this strategy
    /// would try.
    pub fn candidates(self, mxs: &[MxHost], rng: &mut DetRng) -> Vec<MxHost> {
        if mxs.is_empty() {
            return Vec::new();
        }
        // `resolve_mx` returns hosts sorted by ascending preference.
        match self {
            MxStrategy::RfcCompliant => mxs.to_vec(),
            MxStrategy::PrimaryOnly => vec![mxs[0].clone()],
            MxStrategy::SecondaryOnly => vec![mxs[mxs.len() - 1].clone()],
            MxStrategy::AllRandom => {
                let mut shuffled = mxs.to_vec();
                rng.shuffle(&mut shuffled);
                shuffled
            }
        }
    }
}

/// One MX the sender tried, and how far it got.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MxAttempt {
    /// The exchanger's name.
    pub mx: DomainName,
    /// The exchanger's position in the preference-ordered MX set
    /// (0 = primary), regardless of the order the strategy tried hosts in.
    pub preference_rank: usize,
    /// Its resolved address (None = dangling MX, skipped).
    pub ip: Option<Ipv4Addr>,
    /// The connection error, or `None` if the SMTP session ran.
    pub connect_error: Option<String>,
}

/// The full report of one delivery attempt.
#[derive(Debug, Clone)]
pub struct AttemptReport {
    /// Final outcome of the attempt.
    pub outcome: DeliveryOutcome,
    /// Every exchanger tried, in order.
    pub mx_trail: Vec<MxAttempt>,
    /// Wall-clock the *sender* spent on the attempt (connect timeouts
    /// dominate when the primary is filtered).
    pub time_spent: SimDuration,
}

impl AttemptReport {
    fn resolve_failed(err: ResolveError, recipients: &[spamward_smtp::EmailAddress]) -> Self {
        let transient = matches!(err, ResolveError::ServFail);
        AttemptReport {
            outcome: DeliveryOutcome::connect_failed(recipients, transient),
            mx_trail: Vec::new(),
            time_spent: SimDuration::ZERO,
        }
    }

    /// Whether this attempt failed *at the transport*: every exchanger
    /// tried ended in a connect error and no SMTP session ever ran. This is
    /// the signal the per-destination circuit breaker
    /// ([`crate::send::RetryPolicy`]) counts — SMTP-level tempfails
    /// (greylisting, mid-session aborts) do not trip it, because the
    /// destination host demonstrably answered.
    pub fn connection_failed(&self) -> bool {
        !self.outcome.is_delivered()
            && self.outcome.is_retryable()
            && !self.mx_trail.is_empty()
            && self.mx_trail.iter().all(|a| a.connect_error.is_some())
    }
}

/// The simulated mail internet: network + DNS + receiving servers.
///
/// # Example
///
/// ```
/// use std::net::Ipv4Addr;
/// use spamward_dns::Zone;
/// use spamward_mta::{MailWorld, MxStrategy, ReceivingMta};
/// use spamward_sim::SimTime;
/// use spamward_smtp::{Dialect, Envelope, Message, EmailAddress};
///
/// let mut world = MailWorld::new(42);
/// let mx_ip = Ipv4Addr::new(192, 0, 2, 10);
/// world.install_server(ReceivingMta::new("mail.foo.net", mx_ip));
/// world.dns.publish(Zone::single_mx("foo.net".parse()?, mx_ip));
///
/// let env = Envelope::builder()
///     .client_ip(Ipv4Addr::new(203, 0, 113, 9))
///     .mail_from("a@relay.example".parse::<EmailAddress>()?)
///     .rcpt("u@foo.net".parse()?)
///     .build();
/// let msg = Message::builder().header("Subject", "hi").body("x").build();
/// let report = world.attempt_delivery(
///     SimTime::ZERO,
///     &Dialect::compliant_mta("relay.example"),
///     MxStrategy::RfcCompliant,
///     &"foo.net".parse()?,
///     env,
///     msg,
/// );
/// assert!(report.outcome.is_delivered());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct MailWorld {
    /// The simulated IPv4 internet.
    pub network: Network,
    /// The global DNS.
    pub dns: Authority,
    /// A shared caching resolver.
    pub resolver: Resolver,
    /// Scan/availability epoch (bump to re-roll flaky hosts).
    pub epoch: u64,
    /// Structured trace of delivery activity (disabled by default; enable
    /// with [`MailWorld::with_tracing`] to explain *why* a run produced
    /// its numbers).
    pub trace: Tracer,
    /// Accounting for every engine episode run against this world (see
    /// [`crate::worldsim::WorldSim`]).
    pub engine_stats: EngineStats,
    /// Cumulative event budget across episodes: once `engine_stats.events`
    /// reaches it, further episodes end in
    /// [`spamward_sim::RunOutcome::BudgetExhausted`]. `None` = unlimited.
    pub event_budget: Option<u64>,
    /// Virtual-time telemetry samples, recorded by the engine's sampler
    /// actor on every tick (empty unless [`MailWorld::with_sampling`]
    /// enabled sampling).
    pub samples: TimeSeries,
    /// Flight-recorder timeline of message lifecycles (disabled by
    /// default; enable with [`MailWorld::with_timeline`]).
    pub timeline: Timeline,
    servers: BTreeMap<Ipv4Addr, ReceivingMta>,
    smtp_faults: Option<SmtpFaults>,
    fault_boundaries: u64,
    sample_interval: Option<SimDuration>,
    maintenance_interval: Option<SimDuration>,
    checkpoint_interval: Option<SimDuration>,
    timeline_scope: String,
    /// Per-track (attempts so far, saw a defer) lifecycle state backing
    /// the timeline's emit/retry and defer/pass distinction.
    timeline_state: BTreeMap<String, (u32, bool)>,
    rng: DetRng,
}

impl MailWorld {
    /// Creates an empty world.
    pub fn new(seed: u64) -> Self {
        MailWorld {
            network: Network::new(seed),
            dns: Authority::new(),
            resolver: Resolver::new(),
            epoch: 0,
            trace: Tracer::disabled(),
            engine_stats: EngineStats::default(),
            event_budget: None,
            samples: TimeSeries::new(),
            timeline: Timeline::disabled(),
            servers: BTreeMap::new(),
            smtp_faults: None,
            fault_boundaries: 0,
            sample_interval: None,
            maintenance_interval: None,
            checkpoint_interval: None,
            timeline_scope: String::new(),
            timeline_state: BTreeMap::new(),
            rng: DetRng::seed(seed).fork("mailworld"),
        }
    }

    /// Installs a compiled fault plan, distributing its halves to the
    /// network (outages, link loss, latency spikes), the resolver (SERVFAIL
    /// and slow-resolver windows), the SMTP exchange path (mid-session
    /// aborts) and every *already installed* receiving server (greylist
    /// store outages) — install servers before faults.
    pub fn install_faults(&mut self, plan: &FaultPlan) {
        self.network.install_faults(plan.net.clone());
        self.resolver.install_faults(plan.dns.clone());
        self.smtp_faults = Some(plan.smtp.clone());
        for server in self.servers.values_mut() {
            // Per-backend routing: remote greylist stores take the windows
            // as protocol-level faults; in-process stores keep the ambient
            // outage-window model.
            server.install_greylist_faults(plan.greylist_down.clone());
            // Crash windows are addressed by hostname — each server gets
            // only its own schedule.
            let windows = plan.crash_windows_for(server.hostname());
            server.install_crash_schedule(windows);
        }
    }

    /// The installed SMTP-abort fault state (with its counters), if any.
    pub fn smtp_faults(&self) -> Option<&SmtpFaults> {
        self.smtp_faults.as_ref()
    }

    /// Records that a fault window opened or closed at `now`. The fault
    /// actor ([`crate::worldsim::FaultActor`]) calls this from inside
    /// engine events, so window edges are ordered through the engine queue
    /// like every other occurrence.
    pub fn note_fault_boundary(&mut self, now: SimTime) {
        self.fault_boundaries += 1;
        self.trace.record(now, TRACE_FAULT, "fault window boundary".to_owned());
        // Crash and restart edges are fault boundaries too: fire every
        // server's lifecycle transitions due at this instant, so restarts
        // (and their recovery) happen as engine events even on servers
        // receiving no traffic.
        let crashy: Vec<Ipv4Addr> = self
            .servers
            .iter()
            .filter(|(_, s)| s.has_crash_schedule())
            .map(|(ip, _)| *ip)
            .collect();
        for ip in crashy {
            self.advance_crash_lifecycle(ip, now);
        }
    }

    /// Advances one server's crash–restart lifecycle to `now` and records
    /// the fired transitions on the trace and timeline. Idempotent — the
    /// delivery path and the fault actor both poll, and each edge fires
    /// once.
    fn advance_crash_lifecycle(&mut self, ip: Ipv4Addr, now: SimTime) {
        let Some(server) = self.servers.get_mut(&ip) else { return };
        if !server.has_crash_schedule() {
            return;
        }
        let host = server.hostname().to_owned();
        let fired = server.poll_crash(now);
        for transition in fired {
            match transition {
                CrashTransition::Crashed { entries_in_memory } => {
                    let what = format!("crashed; {entries_in_memory} greylist entries in memory");
                    self.trace.record(now, TRACE_FAULT, format!("{host}: {what}"));
                    if self.timeline.is_enabled() {
                        let track = self.crash_track(&host);
                        self.timeline.record_event(TL_MTA_CRASH, now, &track, what);
                    }
                }
                CrashTransition::Restarted { restored, replayed, torn, lost } => {
                    let what = format!(
                        "restarted; restored {restored} from checkpoint, \
                         replayed {replayed} wal records ({torn} torn), lost {lost}"
                    );
                    self.trace.record(now, TRACE_FAULT, format!("{host}: {what}"));
                    if self.timeline.is_enabled() {
                        let track = self.crash_track(&host);
                        self.timeline.record_event(TL_MTA_RESTART, now, &track, what);
                    }
                }
            }
        }
    }

    /// The timeline track crash-lifecycle events land on: the hostname,
    /// under the world's scope when one is set.
    fn crash_track(&self, host: &str) -> String {
        if self.timeline_scope.is_empty() {
            host.to_owned()
        } else {
            format!("{}/{host}", self.timeline_scope)
        }
    }

    /// How many fault window boundaries have fired as engine events.
    pub fn fault_boundaries(&self) -> u64 {
        self.fault_boundaries
    }

    /// Enables delivery tracing (bounded recorder; see
    /// [`spamward_sim::trace`]).
    pub fn with_tracing(mut self) -> Self {
        self.trace = Tracer::new();
        self
    }

    /// Enables virtual-time telemetry sampling: every engine episode run
    /// against this world (see [`crate::worldsim::WorldSim`]) gets a
    /// sampler actor that snapshots counters/gauges into
    /// [`MailWorld::samples`] every `interval` of virtual time.
    pub fn with_sampling(mut self, interval: SimDuration) -> Self {
        self.sample_interval = Some(interval);
        self
    }

    /// Enables the message-lifecycle timeline (bounded flight recorder;
    /// see [`spamward_obs::Timeline`]).
    pub fn with_timeline(mut self) -> Self {
        self.timeline = Timeline::new();
        self
    }

    /// Enables the timeline with every track name prefixed `scope/` —
    /// used by experiments that merge several worlds into one trace and
    /// need their lifecycles kept apart.
    pub fn with_timeline_scope(mut self, scope: &str) -> Self {
        self.timeline = Timeline::new();
        self.timeline_scope = scope.to_owned();
        self
    }

    /// The telemetry sampling interval, if sampling is enabled.
    pub fn sample_interval(&self) -> Option<SimDuration> {
        self.sample_interval
    }

    /// Enables periodic greylist-store maintenance: every horizon-bounded
    /// engine episode run against this world (see
    /// [`crate::worldsim::WorldSim`]) gets a maintenance actor that calls
    /// [`MailWorld::maintain_stores`] every `interval` of virtual time, so
    /// expired triplets are swept on a schedule (as a Postgrey cron job
    /// would) instead of lazily on lookup.
    pub fn with_store_maintenance(mut self, interval: SimDuration) -> Self {
        self.maintenance_interval = Some(interval);
        self
    }

    /// The store-maintenance sweep interval, if enabled.
    pub fn maintenance_interval(&self) -> Option<SimDuration> {
        self.maintenance_interval
    }

    /// Enables periodic durability checkpointing: every horizon-bounded
    /// engine episode run against this world (see
    /// [`crate::worldsim::WorldSim`]) gets a checkpoint actor that calls
    /// [`MailWorld::checkpoint_stores`] every `interval` of virtual time —
    /// the in-simulation analogue of Postgrey's periodic on-disk database
    /// sync. Servers left at
    /// [`spamward_greylist::DurabilityMode::Volatile`] ignore the ticks.
    pub fn with_checkpointing(mut self, interval: SimDuration) -> Self {
        self.checkpoint_interval = Some(interval);
        self
    }

    /// The durability-checkpoint interval, if enabled.
    pub fn checkpoint_interval(&self) -> Option<SimDuration> {
        self.checkpoint_interval
    }

    /// Takes a durability checkpoint on every installed server
    /// ([`ReceivingMta::checkpoint`] — snapshot the store, truncate the
    /// WAL). The engine's checkpoint actor calls this on every tick.
    pub fn checkpoint_stores(&mut self, now: SimTime) {
        for server in self.servers.values_mut() {
            server.checkpoint(now);
        }
    }

    /// Sweeps expired triplets from every server's greylist store and
    /// samples real store occupancy (`obs.sample.greylist.store_*`) at
    /// `now`. The engine's maintenance actor calls this on every tick;
    /// returns how many entries the sweep dropped.
    pub fn maintain_stores(&mut self, now: SimTime) -> usize {
        let mut purged = 0;
        let mut size: i64 = 0;
        let mut bytes: i64 = 0;
        for server in self.servers.values_mut() {
            if let Some(gl) = server.greylist_mut() {
                purged += gl.maintain(now);
                size += i64::try_from(gl.store().len()).unwrap_or(i64::MAX);
                bytes += i64::try_from(gl.store().approx_bytes()).unwrap_or(i64::MAX);
            }
        }
        self.samples.record_point(SAMPLE_STORE_SIZE, now, size);
        self.samples.record_point(SAMPLE_STORE_BYTES, now, bytes);
        purged
    }

    /// Snapshots greylist, delivery and engine counters into
    /// [`MailWorld::samples`] at virtual time `now`. The engine's sampler
    /// actor ([`crate::worldsim::SamplerActor`]) calls this on every tick;
    /// engine figures cover *completed* episodes (the running episode's
    /// events merge at episode end).
    pub fn sample_telemetry(&mut self, now: SimTime) {
        let mut greylisted: i64 = 0;
        let mut passed: i64 = 0;
        let mut accepted: i64 = 0;
        let mut mailbox: i64 = 0;
        for server in self.servers.values() {
            let stats = server.stats();
            greylisted += i64::try_from(stats.rcpt_greylisted).unwrap_or(i64::MAX);
            passed += i64::try_from(stats.rcpt_passed).unwrap_or(i64::MAX);
            accepted += i64::try_from(stats.messages_accepted).unwrap_or(i64::MAX);
            mailbox += i64::try_from(server.mailbox().len()).unwrap_or(i64::MAX);
        }
        self.samples.record_point(SAMPLE_GREYLIST_DEFERRED, now, greylisted);
        self.samples.record_point(SAMPLE_GREYLIST_PASSED, now, passed);
        self.samples.record_point(SAMPLE_RECV_ACCEPTED, now, accepted);
        self.samples.record_point(SAMPLE_RECV_MAILBOX, now, mailbox);
        self.samples.record_point(
            SAMPLE_ENGINE_EVENTS,
            now,
            i64::try_from(self.engine_stats.events).unwrap_or(i64::MAX),
        );
        self.samples.record_point(
            SAMPLE_ENGINE_QUEUE_HIGH_WATER,
            now,
            i64::try_from(self.engine_stats.queue_high_water).unwrap_or(i64::MAX),
        );
    }

    /// Registers a receiving server: adds a host with port 25 open to the
    /// network (if its IP is new) and routes SMTP sessions to the MTA.
    pub fn install_server(&mut self, mta: ReceivingMta) {
        if self.network.host_at(mta.ip()).is_none() {
            self.network.host(mta.hostname()).ip(mta.ip()).smtp_open().build();
        }
        self.servers.insert(mta.ip(), mta);
    }

    /// The server listening at `ip`.
    pub fn server(&self, ip: Ipv4Addr) -> Option<&ReceivingMta> {
        self.servers.get(&ip)
    }

    /// Mutable access to the server at `ip`.
    pub fn server_mut(&mut self, ip: Ipv4Addr) -> Option<&mut ReceivingMta> {
        self.servers.get_mut(&ip)
    }

    /// Iterates over installed servers.
    pub fn servers(&self) -> impl Iterator<Item = &ReceivingMta> {
        self.servers.values()
    }

    /// Executes one complete delivery attempt for `envelope` to `domain`.
    ///
    /// Resolves the domain's MX set, orders candidates per `strategy`,
    /// connects through the simulated network (charging timeouts for
    /// filtered ports), and runs the full SMTP exchange against the
    /// receiving server. RFC-compliant senders fall through to the next
    /// exchanger on connection failure — the crux of nolisting.
    pub fn attempt_delivery(
        &mut self,
        now: SimTime,
        dialect: &Dialect,
        strategy: MxStrategy,
        domain: &DomainName,
        envelope: Envelope,
        message: Message,
    ) -> AttemptReport {
        let timeline_track =
            self.timeline.is_enabled().then(|| self.note_timeline_attempt(now, &envelope));
        // A slow-resolver fault charges its surcharge whether or not the
        // lookup succeeds; the sender pays it before anything else happens.
        let dns_extra = self.resolver.fault_extra_latency(now);
        let mxs = match self.resolver.resolve_mx(&mut self.dns, domain, now) {
            Ok(mxs) => mxs,
            Err(e) => {
                self.trace.record(now, TRACE_DNS_FAIL, format!("{domain}: {e}"));
                if let Some(track) = &timeline_track {
                    self.timeline.record_event(TL_DNS, now, track, format!("{domain}: {e}"));
                }
                let mut report = AttemptReport::resolve_failed(e, envelope.recipients());
                report.time_spent = dns_extra;
                return report;
            }
        };
        self.trace.record(now, TRACE_DNS_MX, format!("{domain}: {} exchanger(s)", mxs.len()));
        if let Some(track) = &timeline_track {
            self.timeline.record_event(
                TL_DNS,
                now,
                track,
                format!("{domain}: {} exchanger(s)", mxs.len()),
            );
        }
        // Receiving servers reverse-resolve the connecting client once per
        // session; name-based whitelists depend on it.
        let client_rdns: Option<String> =
            self.dns.resolve_ptr(envelope.client_ip()).map(|n| n.to_string());
        let candidates = strategy.candidates(&mxs, &mut self.rng);
        let mut trail = Vec::new();
        let mut time_spent = dns_extra;

        for cand in candidates {
            // Rank in the preference-sorted set, not in strategy order — a
            // secondary-only bot's single attempt still reports rank 1.
            let preference_rank = mxs.iter().position(|m| m.name == cand.name).unwrap_or_default();
            let Some(ip) = cand.ip else {
                trail.push(MxAttempt {
                    mx: cand.name.clone(),
                    preference_rank,
                    ip: None,
                    connect_error: Some("no A record".into()),
                });
                continue;
            };
            match self.network.connect_at(ip, SMTP_PORT, self.epoch, now) {
                Err(err) => {
                    let rtt = SimDuration::from_millis(100);
                    time_spent += err.client_cost(rtt);
                    self.trace.record(now, TRACE_NET_FAIL, format!("{} ({ip}): {err}", cand.name));
                    trail.push(MxAttempt {
                        mx: cand.name.clone(),
                        preference_rank,
                        ip: Some(ip),
                        connect_error: Some(err.to_string()),
                    });
                    // Fail fast on RST, slow on filtered — either way, an
                    // RFC-compliant sender moves to the next exchanger.
                    continue;
                }
                Ok(conn) => {
                    // Bring the destination's crash lifecycle up to date
                    // before deciding anything — a delivery landing between
                    // fault-actor wake-ups must still see the right
                    // up/down state and the recovered store.
                    self.advance_crash_lifecycle(ip, now);
                    if self.servers.get(&ip).is_some_and(|s| s.is_crashed_at(now)) {
                        // The machine answers TCP (the network layer is
                        // up) but no MTA is listening: connection refused,
                        // one round trip. This IS a connect failure — the
                        // sender's circuit breaker counts it.
                        time_spent += conn.rtt;
                        if let Some(server) = self.servers.get_mut(&ip) {
                            server.note_refused_connection();
                        }
                        self.trace.record(
                            now,
                            TRACE_FAULT,
                            format!("{} ({ip}): connection refused (mta down)", cand.name),
                        );
                        trail.push(MxAttempt {
                            mx: cand.name.clone(),
                            preference_rank,
                            ip: Some(ip),
                            connect_error: Some("connection refused (mta down)".into()),
                        });
                        continue;
                    }
                    trail.push(MxAttempt {
                        mx: cand.name.clone(),
                        preference_rank,
                        ip: Some(ip),
                        connect_error: None,
                    });
                    if let Some(track) = &timeline_track {
                        self.timeline.record_event(
                            TL_CONNECT,
                            now,
                            track,
                            format!("{} ({ip})", cand.name),
                        );
                    }
                    // An injected mid-session abort kills the session after
                    // the handshake: the client pays the flavour's cost and
                    // sees a transient failure; nothing is stored.
                    if let Some(faults) = &mut self.smtp_faults {
                        if let Some(kind) = faults.abort(ip, now) {
                            let (label, cost) = match kind {
                                // One round trip: greeting, 421, close.
                                SmtpAbortKind::Shutdown421 => {
                                    ("421 service shutting down", conn.rtt)
                                }
                                // The dialogue ran up through DATA before
                                // the carpet was pulled: about six exchanges.
                                SmtpAbortKind::DropAfterData => {
                                    ("connection dropped after DATA", conn.rtt * 6)
                                }
                                // The client hangs on a silent server until
                                // its own patience runs out.
                                SmtpAbortKind::Tarpit => ("tarpitted", TARPIT_HOLD + conn.rtt),
                            };
                            time_spent += cost;
                            self.trace.record(
                                now,
                                TRACE_FAULT,
                                format!("{} ({ip}): {label}", cand.name),
                            );
                            let outcome =
                                DeliveryOutcome::connect_failed(envelope.recipients(), true);
                            return AttemptReport { outcome, mx_trail: trail, time_spent };
                        }
                    }
                    // A crash instant landing inside the session's span
                    // cuts the dialogue mid-DATA: the connection *was*
                    // established (the trail entry above says so, which is
                    // what keeps the circuit breaker from counting this),
                    // the client pays a full session's round trips, and
                    // nothing is stored — exactly the shape of an injected
                    // `DropAfterData` abort.
                    let session_span = conn.rtt * 6;
                    let mid_session_crash =
                        self.servers.get(&ip).and_then(|s| s.crash_during(now, now + session_span));
                    if let Some(crash_at) = mid_session_crash {
                        time_spent += session_span;
                        if let Some(server) = self.servers.get_mut(&ip) {
                            server.note_session_dropped();
                        }
                        let what = format!("session dropped by crash at {crash_at}");
                        self.trace.record(
                            now,
                            TRACE_FAULT,
                            format!("{} ({ip}): {what}", cand.name),
                        );
                        if let Some(track) = &timeline_track {
                            self.timeline.record_event(TL_MTA_CRASH, now, track, what);
                        }
                        let outcome = DeliveryOutcome::connect_failed(envelope.recipients(), true);
                        return AttemptReport { outcome, mx_trail: trail, time_spent };
                    }
                    let Some(server_mta) = self.servers.get_mut(&ip) else {
                        // Port open but nothing we manage behind it (e.g. a
                        // population host): treat as transient.
                        let outcome = DeliveryOutcome::connect_failed(envelope.recipients(), true);
                        return AttemptReport { outcome, mx_trail: trail, time_spent };
                    };
                    let mut client =
                        ClientSession::new(dialect.clone(), envelope.clone(), message.clone());
                    let hostname = server_mta.hostname().to_owned();
                    let rdns = client_rdns.clone();
                    let mut session =
                        ServerSession::new(&hostname, envelope.client_ip()).with_client_rdns(rdns);
                    let (outcome, transcript) =
                        exchange(&mut client, &mut session, server_mta, now + conn.rtt);
                    server_mta.absorb_smtp(session.metrics());
                    // Rough time accounting: one RTT per protocol exchange.
                    time_spent += conn.rtt * (transcript.entries().len() as u64);
                    self.trace.record(
                        now,
                        TRACE_SMTP_OUTCOME,
                        format!("{} via {}: {}", envelope, cand.name, outcome),
                    );
                    if let Some(track) = &timeline_track {
                        self.note_timeline_outcome(now, track, &outcome);
                    }
                    return AttemptReport { outcome, mx_trail: trail, time_spent };
                }
            }
        }

        // Exhausted every candidate without completing a session.
        AttemptReport {
            outcome: DeliveryOutcome::connect_failed(envelope.recipients(), true),
            mx_trail: trail,
            time_spent,
        }
    }

    /// Opens (or extends) the lifecycle track for `envelope`: the first
    /// attempt is the campaign *emit*, every later one a *retry*. Returns
    /// the track name for this attempt's remaining events.
    fn note_timeline_attempt(&mut self, now: SimTime, envelope: &Envelope) -> String {
        let track = if self.timeline_scope.is_empty() {
            envelope.to_string()
        } else {
            format!("{}/{envelope}", self.timeline_scope)
        };
        let state = self.timeline_state.entry(track.clone()).or_insert((0, false));
        state.0 += 1;
        let attempt = state.0;
        if attempt == 1 {
            self.timeline.record_event(TL_EMIT, now, &track, "first attempt".to_owned());
        } else {
            self.timeline.record_event(TL_RETRY, now, &track, format!("attempt {attempt}"));
        }
        track
    }

    /// Records the SMTP outcome of an attempt on its track: a session-level
    /// tempfail is the greylist *defer* decision, a delivery after an
    /// earlier defer is the *pass*, anything else permanent a reject.
    fn note_timeline_outcome(&mut self, now: SimTime, track: &str, outcome: &DeliveryOutcome) {
        if outcome.is_delivered() {
            let deferred = self.timeline_state.get(track).is_some_and(|s| s.1);
            if deferred {
                self.timeline.record_event(
                    TL_GREYLIST_PASS,
                    now,
                    track,
                    "accepted after defer".to_owned(),
                );
            }
            self.timeline.record_event(TL_DELIVER, now, track, outcome.to_string());
        } else if outcome.is_retryable() {
            self.timeline.record_event(TL_GREYLIST_DEFER, now, track, outcome.to_string());
            if let Some(state) = self.timeline_state.get_mut(track) {
                state.1 = true;
            }
        } else {
            self.timeline.record_event(TL_REJECT, now, track, outcome.to_string());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spamward_dns::Zone;
    use spamward_greylist::{Greylist, GreylistConfig};
    use spamward_net::PortState;
    use spamward_smtp::EmailAddress;

    fn env(rcpt: &str) -> Envelope {
        Envelope::builder()
            .client_ip(Ipv4Addr::new(203, 0, 113, 9))
            .helo("client.example")
            .mail_from("a@relay.example".parse::<EmailAddress>().unwrap())
            .rcpt(rcpt.parse().unwrap())
            .build()
    }

    fn msg() -> Message {
        Message::builder().header("Subject", "s").body("b").build()
    }

    fn domain(s: &str) -> DomainName {
        s.parse().unwrap()
    }

    /// A world with foo.net protected by nolisting: primary MX dead
    /// (port 25 closed), secondary working.
    fn nolisting_world() -> (MailWorld, Ipv4Addr, Ipv4Addr) {
        let mut w = MailWorld::new(1);
        let dead = Ipv4Addr::new(192, 0, 2, 1);
        let live = Ipv4Addr::new(192, 0, 2, 2);
        // The dead primary: a real machine with port 25 closed.
        w.network.host("smtp.foo.net").ip(dead).port(SMTP_PORT, PortState::Closed).build();
        w.install_server(ReceivingMta::new("smtp1.foo.net", live));
        w.dns.publish(Zone::nolisting(domain("foo.net"), dead, live));
        (w, dead, live)
    }

    #[test]
    fn rfc_compliant_sender_beats_nolisting() {
        let (mut w, _, live) = nolisting_world();
        let report = w.attempt_delivery(
            SimTime::ZERO,
            &Dialect::compliant_mta("relay.example"),
            MxStrategy::RfcCompliant,
            &domain("foo.net"),
            env("u@foo.net"),
            msg(),
        );
        assert!(report.outcome.is_delivered(), "compliant MTA must fall through to secondary");
        assert_eq!(report.mx_trail.len(), 2);
        assert!(report.mx_trail[0].connect_error.is_some());
        assert_eq!(report.mx_trail[1].ip, Some(live));
        assert!(report.mx_trail[1].connect_error.is_none());
        assert_eq!(w.server(live).unwrap().mailbox().len(), 1);
    }

    #[test]
    fn primary_only_bot_defeated_by_nolisting() {
        let (mut w, _, live) = nolisting_world();
        let report = w.attempt_delivery(
            SimTime::ZERO,
            &Dialect::minimal_bot("kelihos"),
            MxStrategy::PrimaryOnly,
            &domain("foo.net"),
            env("u@foo.net"),
            msg(),
        );
        assert!(!report.outcome.is_delivered());
        assert!(report.outcome.is_retryable(), "connection refusal is transient");
        assert_eq!(report.mx_trail.len(), 1);
        assert_eq!(w.server(live).unwrap().mailbox().len(), 0);
    }

    #[test]
    fn secondary_only_bot_ignores_nolisting() {
        let (mut w, _, live) = nolisting_world();
        let report = w.attempt_delivery(
            SimTime::ZERO,
            &Dialect::minimal_bot("cutwail"),
            MxStrategy::SecondaryOnly,
            &domain("foo.net"),
            env("u@foo.net"),
            msg(),
        );
        assert!(report.outcome.is_delivered(), "secondary-only bot lands on the live server");
        assert_eq!(report.mx_trail.len(), 1);
        assert_eq!(report.mx_trail[0].ip, Some(live));
    }

    #[test]
    fn all_random_tries_everything() {
        let (mut w, _, _) = nolisting_world();
        let report = w.attempt_delivery(
            SimTime::ZERO,
            &Dialect::minimal_bot("rand"),
            MxStrategy::AllRandom,
            &domain("foo.net"),
            env("u@foo.net"),
            msg(),
        );
        // Whatever the shuffle order, the live secondary is eventually hit.
        assert!(report.outcome.is_delivered());
    }

    #[test]
    fn greylisted_world_defers_then_delivers() {
        let mut w = MailWorld::new(2);
        let ip = Ipv4Addr::new(192, 0, 2, 9);
        w.install_server(
            ReceivingMta::new("mail.bar.org", ip).with_greylist(Greylist::new(
                GreylistConfig::with_delay(SimDuration::from_secs(300)),
            )),
        );
        w.dns.publish(Zone::single_mx(domain("bar.org"), ip));

        let d = Dialect::compliant_mta("relay.example");
        let first = w.attempt_delivery(
            SimTime::ZERO,
            &d,
            MxStrategy::RfcCompliant,
            &domain("bar.org"),
            env("u@bar.org"),
            msg(),
        );
        assert!(!first.outcome.is_delivered());
        assert!(first.outcome.is_retryable());

        let second = w.attempt_delivery(
            SimTime::from_secs(600),
            &d,
            MxStrategy::RfcCompliant,
            &domain("bar.org"),
            env("u@bar.org"),
            msg(),
        );
        assert!(second.outcome.is_delivered());
    }

    #[test]
    fn nxdomain_is_permanent_failure() {
        let mut w = MailWorld::new(3);
        let report = w.attempt_delivery(
            SimTime::ZERO,
            &Dialect::compliant_mta("relay.example"),
            MxStrategy::RfcCompliant,
            &domain("ghost.example"),
            env("u@ghost.example"),
            msg(),
        );
        assert!(matches!(report.outcome, DeliveryOutcome::PermFailed { .. }));
    }

    #[test]
    fn dangling_mx_skipped_by_compliant_sender() {
        let mut w = MailWorld::new(4);
        let live = Ipv4Addr::new(192, 0, 2, 30);
        w.install_server(ReceivingMta::new("mx2.baz.io", live));
        // Primary MX has no A record; secondary is fine.
        w.dns.publish(
            Zone::builder(domain("baz.io"))
                .mx_to(0, domain("ghost.baz.io"))
                .mx(10, "mx2", live)
                .build(),
        );
        let report = w.attempt_delivery(
            SimTime::ZERO,
            &Dialect::compliant_mta("relay.example"),
            MxStrategy::RfcCompliant,
            &domain("baz.io"),
            env("u@baz.io"),
            msg(),
        );
        assert!(report.outcome.is_delivered());
        assert_eq!(report.mx_trail[0].connect_error.as_deref(), Some("no A record"));
    }

    #[test]
    fn filtered_primary_charges_timeout() {
        let mut w = MailWorld::new(5);
        let filtered = Ipv4Addr::new(192, 0, 2, 40);
        let live = Ipv4Addr::new(192, 0, 2, 41);
        w.network.host("fw.qux.org").ip(filtered).port(SMTP_PORT, PortState::Filtered).build();
        w.install_server(ReceivingMta::new("mx2.qux.org", live));
        w.dns.publish(Zone::nolisting(domain("qux.org"), filtered, live));
        // Overwrite: nolisting() gave the dead host its own A/host; we
        // installed `filtered` manually, so remap DNS to our hosts.
        w.dns.publish(
            Zone::builder(domain("qux.org"))
                .mx_to(0, domain("fw.qux.org"))
                .a_at(domain("fw.qux.org"), filtered)
                .mx_to(10, domain("mx2.qux.org"))
                .a_at(domain("mx2.qux.org"), live)
                .build(),
        );
        let report = w.attempt_delivery(
            SimTime::ZERO,
            &Dialect::compliant_mta("relay.example"),
            MxStrategy::RfcCompliant,
            &domain("qux.org"),
            env("u@qux.org"),
            msg(),
        );
        assert!(report.outcome.is_delivered());
        assert!(
            report.time_spent >= w.network.syn_timeout,
            "filtered primary must cost the SYN timeout, got {}",
            report.time_spent
        );
    }

    #[test]
    fn tracing_records_the_delivery_story() {
        let (mut w, _, _) = {
            let mut w = MailWorld::new(1).with_tracing();
            let dead = Ipv4Addr::new(192, 0, 2, 1);
            let live = Ipv4Addr::new(192, 0, 2, 2);
            w.network.host("smtp.foo.net").ip(dead).port(SMTP_PORT, PortState::Closed).build();
            w.install_server(ReceivingMta::new("smtp1.foo.net", live));
            w.dns.publish(Zone::nolisting(domain("foo.net"), dead, live));
            (w, dead, live)
        };
        w.attempt_delivery(
            SimTime::ZERO,
            &Dialect::compliant_mta("relay.example"),
            MxStrategy::RfcCompliant,
            &domain("foo.net"),
            env("u@foo.net"),
            msg(),
        );
        assert_eq!(w.trace.count("dns.mx"), 1);
        assert_eq!(w.trace.count("net.fail"), 1, "the dead primary must be traced");
        assert_eq!(w.trace.count("smtp.outcome"), 1);
        let story: Vec<String> = w.trace.events().map(|e| e.to_string()).collect();
        assert!(story[1].contains("connection refused"), "{story:?}");

        // Untraced worlds stay silent and cost nothing.
        let mut quiet = MailWorld::new(2);
        quiet.install_server(ReceivingMta::new("m.bar.org", Ipv4Addr::new(192, 0, 2, 9)));
        quiet.dns.publish(Zone::single_mx(domain("bar.org"), Ipv4Addr::new(192, 0, 2, 9)));
        quiet.attempt_delivery(
            SimTime::ZERO,
            &Dialect::compliant_mta("relay.example"),
            MxStrategy::RfcCompliant,
            &domain("bar.org"),
            env("u@bar.org"),
            msg(),
        );
        assert_eq!(quiet.trace.events().len(), 0);
    }

    #[test]
    fn rdns_whitelist_exempts_named_provider() {
        use spamward_greylist::GreylistConfig;
        let mut cfg =
            GreylistConfig::with_delay(SimDuration::from_secs(300)).without_auto_whitelist();
        cfg.whitelist_clients.add_domain_suffix("bigmail.example");

        let mut w = MailWorld::new(31);
        let mx = Ipv4Addr::new(192, 0, 2, 60);
        w.install_server(ReceivingMta::new("mail.foo.net", mx).with_greylist(Greylist::new(cfg)));
        w.dns.publish(Zone::single_mx(domain("foo.net"), mx));
        // The provider's outbound host has matching reverse DNS.
        let provider_ip = Ipv4Addr::new(64, 233, 160, 5);
        w.dns.publish_ptr(provider_ip, "out-1.bigmail.example".parse().unwrap());

        let provider_env = Envelope::builder()
            .client_ip(provider_ip)
            .helo("out-1.bigmail.example")
            .mail_from("a@bigmail.example".parse::<EmailAddress>().unwrap())
            .rcpt("u@foo.net".parse().unwrap())
            .build();
        let report = w.attempt_delivery(
            SimTime::ZERO,
            &Dialect::compliant_mta("out-1.bigmail.example"),
            MxStrategy::RfcCompliant,
            &domain("foo.net"),
            provider_env,
            msg(),
        );
        assert!(report.outcome.is_delivered(), "rDNS-whitelisted client must skip greylisting");

        // A client with no (or wrong) rDNS gets greylisted as usual.
        let report = w.attempt_delivery(
            SimTime::ZERO,
            &Dialect::compliant_mta("relay.example"),
            MxStrategy::RfcCompliant,
            &domain("foo.net"),
            env("u@foo.net"),
            msg(),
        );
        assert!(!report.outcome.is_delivered());
    }

    #[test]
    fn timeline_records_the_greylist_lifecycle() {
        let mut w = MailWorld::new(2).with_timeline_scope("greylist");
        let ip = Ipv4Addr::new(192, 0, 2, 9);
        w.install_server(
            ReceivingMta::new("mail.bar.org", ip).with_greylist(Greylist::new(
                GreylistConfig::with_delay(SimDuration::from_secs(300)),
            )),
        );
        w.dns.publish(Zone::single_mx(domain("bar.org"), ip));

        let d = Dialect::compliant_mta("relay.example");
        for at in [SimTime::ZERO, SimTime::from_secs(600)] {
            w.attempt_delivery(
                at,
                &d,
                MxStrategy::RfcCompliant,
                &domain("bar.org"),
                env("u@bar.org"),
                msg(),
            );
        }

        let names: Vec<&str> = w.timeline.events().map(|e| e.name.as_str()).collect();
        assert_eq!(
            names,
            [
                "timeline.emit",
                "timeline.dns",
                "timeline.connect",
                "timeline.greylist.defer",
                "timeline.retry",
                "timeline.dns",
                "timeline.connect",
                "timeline.greylist.pass",
                "timeline.deliver",
            ],
            "full lifecycle of a greylist-deferred message"
        );
        let tracks: Vec<&str> = w.timeline.events().map(|e| e.track.as_str()).collect();
        assert!(tracks.iter().all(|t| t.starts_with("greylist/")), "{tracks:?}");

        // A world without the timeline records nothing and costs nothing.
        let mut quiet = MailWorld::new(2);
        quiet.install_server(ReceivingMta::new("m.bar.org", Ipv4Addr::new(192, 0, 2, 9)));
        quiet.dns.publish(Zone::single_mx(domain("bar.org"), Ipv4Addr::new(192, 0, 2, 9)));
        quiet.attempt_delivery(
            SimTime::ZERO,
            &Dialect::compliant_mta("relay.example"),
            MxStrategy::RfcCompliant,
            &domain("bar.org"),
            env("u@bar.org"),
            msg(),
        );
        assert!(quiet.timeline.is_empty());
        assert!(quiet.samples.is_empty());
    }

    #[test]
    fn sample_telemetry_snapshots_server_counters() {
        let mut w = MailWorld::new(7).with_sampling(SimDuration::from_secs(60));
        let ip = Ipv4Addr::new(192, 0, 2, 9);
        w.install_server(ReceivingMta::new("m.bar.org", ip));
        w.dns.publish(Zone::single_mx(domain("bar.org"), ip));
        w.attempt_delivery(
            SimTime::ZERO,
            &Dialect::compliant_mta("relay.example"),
            MxStrategy::RfcCompliant,
            &domain("bar.org"),
            env("u@bar.org"),
            msg(),
        );
        assert_eq!(w.sample_interval(), Some(SimDuration::from_secs(60)));
        w.sample_telemetry(SimTime::from_secs(60));
        assert_eq!(w.samples.get(SAMPLE_RECV_ACCEPTED, SimTime::from_secs(60)), Some(1));
        assert_eq!(w.samples.get(SAMPLE_RECV_MAILBOX, SimTime::from_secs(60)), Some(1));
        assert_eq!(w.samples.get(SAMPLE_GREYLIST_DEFERRED, SimTime::from_secs(60)), Some(0));
    }

    #[test]
    fn install_server_reuses_existing_host() {
        let mut w = MailWorld::new(6);
        let ip = Ipv4Addr::new(192, 0, 2, 50);
        w.network.host("pre.example").ip(ip).smtp_open().build();
        w.install_server(ReceivingMta::new("pre.example", ip));
        assert_eq!(w.network.len(), 1);
        assert!(w.server(ip).is_some());
    }
}
