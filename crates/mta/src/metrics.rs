//! Metric names, trace categories and collectors for the MTA crate.
//!
//! All `mta.*` registry names and the delivery-path trace categories live
//! here (the O1 lint rule). Hot paths bump plain counter fields
//! ([`ReceiveStats`](crate::ReceiveStats), the SMTP
//! [`SessionMetrics`](spamward_smtp::metrics::SessionMetrics) absorbed per
//! session); sender-side metrics are derived from the already-recorded
//! attempt/bounce history at collect time, so the queue path pays nothing.

use crate::receive::ReceivingMta;
use crate::send::{OutboundStatus, SendingMta};
use crate::world::MailWorld;
use spamward_obs::{Histogram, Registry};

/// Trace category: MX resolution failed outright.
pub const TRACE_DNS_FAIL: &str = "dns.fail";
/// Trace category: MX set resolved.
pub const TRACE_DNS_MX: &str = "dns.mx";
/// Trace category: TCP connect to an exchanger failed.
pub const TRACE_NET_FAIL: &str = "net.fail";
/// Trace category: final SMTP outcome of a delivery attempt.
pub const TRACE_SMTP_OUTCOME: &str = "smtp.outcome";
/// Trace category: an injected fault fired (or a fault window boundary
/// passed through the engine).
pub const TRACE_FAULT: &str = "net.fault";

/// Completed transactions (messages stored).
pub const RECV_ACCEPTED: &str = "mta.receive.accepted";
/// RCPTs refused for unknown users.
pub const RECV_RCPT_UNKNOWN: &str = "mta.receive.rcpt_unknown";
/// RCPTs deferred by greylisting.
pub const RECV_RCPT_GREYLISTED: &str = "mta.receive.rcpt_greylisted";
/// RCPTs that passed greylisting (any reason).
pub const RECV_RCPT_PASSED: &str = "mta.receive.rcpt_passed";
/// Sessions rejected for talking before the banner.
pub const RECV_PREGREET_REJECTED: &str = "mta.receive.pregreet_rejected";
/// Messages sitting in the mailbox at collection time.
pub const RECV_MAILBOX_SIZE: &str = "mta.receive.mailbox_size";
/// Anonymized log entries written.
pub const RECV_LOG_ENTRIES: &str = "mta.receive.log_entries";

/// Messages submitted to an outbound queue.
pub const SEND_SUBMITTED: &str = "mta.send.submitted";
/// Delivery attempts executed.
pub const SEND_ATTEMPTS: &str = "mta.send.attempts";
/// Messages delivered.
pub const SEND_DELIVERED: &str = "mta.send.delivered";
/// Messages bounced after exhausting the retry schedule (give-ups).
pub const SEND_GAVE_UP: &str = "mta.send.gave_up";
/// Messages still queued (undelivered, unbounced) at collection time.
pub const SEND_QUEUE_DEPTH: &str = "mta.send.queue_depth";
/// Distribution of attempts over the retry schedule: which (1-based)
/// attempt slot each executed attempt fell into.
pub const SEND_RETRY_SCHEDULE_SLOT: &str = "mta.send.retry.schedule_slot";
/// Distribution of delivery delays (seconds from enqueue to delivery).
pub const SEND_DELIVERY_DELAY_S: &str = "mta.send.delivery_delay_s";
/// Trace events evicted (or discarded at capacity 0) by the world tracer.
pub const WORLD_TRACE_DROPPED: &str = "mta.world.trace_dropped";

/// Sessions an injected fault dropped after DATA.
pub const FAULT_SMTP_DROP_AFTER_DATA: &str = "net.fault.smtp.drop_after_data";
/// Sessions an injected fault greeted with 421 and closed.
pub const FAULT_SMTP_SHUTDOWN_421: &str = "net.fault.smtp.shutdown_421";
/// Sessions an injected fault held in a tarpit.
pub const FAULT_SMTP_TARPIT: &str = "net.fault.smtp.tarpit";
/// Fault window boundaries that fired as engine events.
pub const FAULT_BOUNDARY_EVENTS: &str = "net.fault.boundary_events";

/// Circuit-breaker trips (a destination went open after consecutive
/// connect failures).
pub const BREAKER_TRIPS: &str = "mta.breaker.trips";
/// Delivery attempts skipped because the destination's breaker was open.
pub const BREAKER_SKIPPED: &str = "mta.breaker.skipped_attempts";
/// Retries pushed later than the paper schedule by resilient backoff.
pub const BREAKER_BACKOFFS: &str = "mta.breaker.backoffs_applied";

/// RCPTs accepted unchecked while the greylist store was down (fail-open).
pub const GREYLIST_DEGRADED_FAIL_OPEN: &str = "greylist.degraded.fail_open";
/// RCPTs tempfailed while the greylist store was down (fail-closed).
pub const GREYLIST_DEGRADED_FAIL_CLOSED: &str = "greylist.degraded.fail_closed";

/// Crash instants that fired (a receiving MTA process died).
pub const CRASH_EVENTS: &str = "mta.crash.events";
/// Restart instants that fired (a crashed MTA came back up).
pub const CRASH_RESTARTS: &str = "mta.crash.restarts";
/// Connection attempts refused while a receiving MTA was down.
pub const CRASH_REFUSED_CONNECTIONS: &str = "mta.crash.refused_connections";
/// In-flight SMTP sessions cut mid-dialogue by a crash instant.
pub const CRASH_SESSIONS_DROPPED: &str = "mta.crash.sessions_dropped";

/// Durability checkpoints taken (periodic ticks plus each restart's
/// re-baselining checkpoint).
pub const RECOVERY_CHECKPOINTS: &str = "greylist.recovery.checkpoints";
/// Triplet entries restored from the last checkpoint across restarts.
pub const RECOVERY_ENTRIES_RESTORED: &str = "greylist.recovery.entries_restored";
/// WAL records replayed over the checkpoint across restarts.
pub const RECOVERY_WAL_REPLAYED: &str = "greylist.recovery.wal_records_replayed";
/// Torn final WAL records skipped deterministically during replay.
pub const RECOVERY_WAL_TORN_SKIPPED: &str = "greylist.recovery.wal_torn_skipped";
/// Triplet entries in memory at crash time that recovery did not get back.
pub const RECOVERY_ENTRIES_LOST: &str = "greylist.recovery.entries_lost";

/// Engine events executed across every episode driven on this world.
pub const ENGINE_EVENTS: &str = "sim.engine.events";
/// High-water mark of the engine's pending-event queue (summed across
/// worlds at collection time, like the other world gauges).
pub const ENGINE_QUEUE_HIGH_WATER: &str = "sim.engine.queue_high_water";
/// Per-actor-category episode-length histograms: `sim.engine.episode_events.`
/// followed by the actor name (`mta.send`, `botnet.chain`, …), each sample
/// being the events one episode of that actor executed.
pub const ENGINE_EPISODE_EVENTS_PREFIX: &str = "sim.engine.episode_events.";
/// Actor name of the sending MTA on the engine — the suffix its episode
/// histogram gets under [`ENGINE_EPISODE_EVENTS_PREFIX`].
pub const ACTOR_MTA_SEND: &str = "mta.send";
/// Episodes that drained their event queue.
pub const ENGINE_OUTCOME_DRAINED: &str = "sim.engine.outcome.drained";
/// Episodes stopped at their horizon.
pub const ENGINE_OUTCOME_HORIZON: &str = "sim.engine.outcome.horizon_reached";
/// Episodes cut short by an event budget — nonzero means truncated runs.
pub const ENGINE_OUTCOME_BUDGET_EXHAUSTED: &str = "sim.engine.outcome.budget_exhausted";
/// Episodes stopped early from inside an event.
pub const ENGINE_OUTCOME_STOPPED: &str = "sim.engine.outcome.stopped";
/// Per-shard engine event counts of sharded runs: `sim.engine.shard.`
/// followed by the shard index and `.events`. Sharded experiments record
/// every shard of their fixed partition, so the name set — and therefore
/// the canonical output — does not depend on executor width.
pub const ENGINE_SHARD_PREFIX: &str = "sim.engine.shard.";

/// Actor name of the telemetry sampler on the engine — its ticks are real
/// engine events accounted under this category.
pub const ACTOR_OBS_SAMPLE: &str = "obs.sample";
/// Sampled series: summed `rcpt_greylisted` across a world's servers.
pub const SAMPLE_GREYLIST_DEFERRED: &str = "obs.sample.greylist.deferred";
/// Sampled series: summed `rcpt_passed` across a world's servers.
pub const SAMPLE_GREYLIST_PASSED: &str = "obs.sample.greylist.passed";
/// Sampled series: summed accepted-message count across a world's servers.
pub const SAMPLE_RECV_ACCEPTED: &str = "obs.sample.recv.accepted";
/// Sampled series: summed mailbox depth across a world's servers.
pub const SAMPLE_RECV_MAILBOX: &str = "obs.sample.recv.mailbox_size";
/// Sampled series: engine events of completed episodes on the world.
pub const SAMPLE_ENGINE_EVENTS: &str = "obs.sample.engine.events";
/// Sampled series: engine queue high-water of completed episodes.
pub const SAMPLE_ENGINE_QUEUE_HIGH_WATER: &str = "obs.sample.engine.queue_high_water";
/// Sampled series: cumulative circuit-breaker trips of a sending MTA.
pub const SAMPLE_BREAKER_TRIPS: &str = "obs.sample.breaker.trips";

/// Actor name of the greylist-store maintenance sweeper on the engine —
/// its ticks are real engine events accounted under this category.
pub const ACTOR_STORE_MAINTAIN: &str = "greylist.maintain";
/// Actor name of the durability checkpointer on the engine — its ticks
/// are real engine events accounted under this category.
pub const ACTOR_CHECKPOINT: &str = "greylist.checkpoint";
/// Sampled series: summed live greylist-store entries across a world's
/// servers, recorded on each maintenance sweep.
pub const SAMPLE_STORE_SIZE: &str = "obs.sample.greylist.store_size";
/// Sampled series: summed approximate greylist-store bytes across a
/// world's servers, recorded on each maintenance sweep.
pub const SAMPLE_STORE_BYTES: &str = "obs.sample.greylist.store_bytes";

/// Timeline event: first delivery attempt of a message (campaign emit).
pub const TL_EMIT: &str = "timeline.emit";
/// Timeline event: a later delivery attempt of the same message.
pub const TL_RETRY: &str = "timeline.retry";
/// Timeline event: MX resolution result (or failure) for an attempt.
pub const TL_DNS: &str = "timeline.dns";
/// Timeline event: TCP connection established to an exchanger.
pub const TL_CONNECT: &str = "timeline.connect";
/// Timeline event: the session ended in a tempfail — the greylist (or
/// equivalent session-level) defer decision.
pub const TL_GREYLIST_DEFER: &str = "timeline.greylist.defer";
/// Timeline event: a message that was previously deferred got accepted.
pub const TL_GREYLIST_PASS: &str = "timeline.greylist.pass";
/// Timeline event: message stored by the receiving server.
pub const TL_DELIVER: &str = "timeline.deliver";
/// Timeline event: message permanently rejected.
pub const TL_REJECT: &str = "timeline.reject";
/// Timeline event: a receiving MTA crashed (on its hostname track), or an
/// in-flight session was cut by a crash (on the message's track).
pub const TL_MTA_CRASH: &str = "timeline.mta.crash";
/// Timeline event: a crashed MTA restarted and recovered its greylist
/// state per its durability mode (on its hostname track).
pub const TL_MTA_RESTART: &str = "timeline.mta.restart";

/// Retry-slot histogram bounds: attempt numbers along a typical schedule.
pub const RETRY_SLOT_BOUNDS: [u64; 7] = [1, 2, 3, 5, 8, 13, 21];
/// Delivery-delay histogram bounds (seconds): 1 min … 1 day.
pub const DELIVERY_DELAY_BOUNDS_S: [u64; 7] = [60, 300, 600, 1800, 3600, 14_400, 86_400];
/// Episode-length histogram bounds (events per episode).
pub const EPISODE_EVENT_BOUNDS: [u64; 7] = [1, 2, 3, 5, 8, 13, 21];

/// Exports one receiving MTA: receive counters, absorbed SMTP session
/// counters, and the greylist snapshot when one is installed.
pub fn collect_receiver(mta: &ReceivingMta, reg: &mut Registry) {
    let stats = mta.stats();
    reg.record_counter(RECV_ACCEPTED, stats.messages_accepted);
    reg.record_counter(RECV_RCPT_UNKNOWN, stats.rcpt_unknown);
    reg.record_counter(RECV_RCPT_GREYLISTED, stats.rcpt_greylisted);
    reg.record_counter(RECV_RCPT_PASSED, stats.rcpt_passed);
    reg.record_counter(RECV_PREGREET_REJECTED, stats.pregreet_rejected);
    reg.record_gauge(RECV_MAILBOX_SIZE, mta.mailbox().len() as i64);
    reg.record_counter(RECV_LOG_ENTRIES, mta.log().len() as u64);
    spamward_smtp::metrics::collect(mta.smtp_metrics(), reg);
    if let Some(gl) = mta.greylist() {
        spamward_greylist::metrics::collect(gl, reg);
    }
    // Degradation counters only exist once an outage schedule is installed,
    // so fault-free runs keep their exact metric composition.
    if mta.has_greylist_outage() {
        reg.record_counter(GREYLIST_DEGRADED_FAIL_OPEN, stats.greylist_failed_open);
        reg.record_counter(GREYLIST_DEGRADED_FAIL_CLOSED, stats.greylist_failed_closed);
    }
    // Same rule for the crash lifecycle: the counters exist only once a
    // crash schedule is installed, so crash-free runs export byte-identical
    // metric sets.
    if mta.has_crash_schedule() {
        let crash = mta.crash_stats();
        reg.record_counter(CRASH_EVENTS, crash.crashes);
        reg.record_counter(CRASH_RESTARTS, crash.restarts);
        reg.record_counter(CRASH_REFUSED_CONNECTIONS, crash.refused_connections);
        reg.record_counter(CRASH_SESSIONS_DROPPED, crash.sessions_dropped);
        reg.record_counter(RECOVERY_CHECKPOINTS, crash.checkpoints);
        reg.record_counter(RECOVERY_ENTRIES_RESTORED, crash.entries_restored);
        reg.record_counter(RECOVERY_WAL_REPLAYED, crash.wal_records_replayed);
        reg.record_counter(RECOVERY_WAL_TORN_SKIPPED, crash.wal_torn_skipped);
        reg.record_counter(RECOVERY_ENTRIES_LOST, crash.entries_lost);
    }
}

/// Exports one sending MTA, deriving everything from its recorded
/// attempt/bounce/queue state.
pub fn collect_sender(mta: &SendingMta, reg: &mut Registry) {
    let records = mta.records();
    let mut slots = Histogram::new(&RETRY_SLOT_BOUNDS);
    let mut delays = Histogram::new(&DELIVERY_DELAY_BOUNDS_S);
    let mut delivered: u64 = 0;
    for r in records {
        slots.observe(u64::from(r.attempt));
        if r.delivered {
            delivered += 1;
            delays.observe(r.since_enqueue.as_micros() / 1_000_000);
        }
    }
    let queued = mta.queue().iter().filter(|q| matches!(q.status, OutboundStatus::Queued)).count();
    reg.record_counter(SEND_SUBMITTED, mta.queue().len() as u64);
    reg.record_counter(SEND_ATTEMPTS, records.len() as u64);
    reg.record_counter(SEND_DELIVERED, delivered);
    reg.record_counter(SEND_GAVE_UP, mta.bounces().len() as u64);
    reg.record_gauge(SEND_QUEUE_DEPTH, queued as i64);
    reg.record_histogram(SEND_RETRY_SCHEDULE_SLOT, &slots);
    reg.record_histogram(SEND_DELIVERY_DELAY_S, &delays);
    // Breaker accounting exists only for MTAs running a resilience policy.
    if mta.retry_policy().is_some() {
        reg.record_counter(BREAKER_TRIPS, mta.breaker_trips());
        reg.record_counter(BREAKER_SKIPPED, mta.breaker_skipped());
        reg.record_counter(BREAKER_BACKOFFS, mta.backoffs_applied());
    }
}

/// Exports a whole [`MailWorld`]: every installed server, the network, the
/// DNS authority and resolver, and tracer overflow.
pub fn collect_world(world: &MailWorld, reg: &mut Registry) {
    for server in world.servers() {
        collect_receiver(server, reg);
    }
    spamward_net::metrics::collect(&world.network, reg);
    spamward_dns::metrics::collect_authority(&world.dns, reg);
    spamward_dns::metrics::collect_resolver(&world.resolver.stats(), reg);
    if let Some(faults) = world.resolver.faults() {
        spamward_dns::metrics::collect_resolver_faults(&faults.stats, reg);
    }
    if let Some(faults) = world.smtp_faults() {
        reg.record_counter(FAULT_SMTP_DROP_AFTER_DATA, faults.stats.dropped_after_data);
        reg.record_counter(FAULT_SMTP_SHUTDOWN_421, faults.stats.shutdown_421);
        reg.record_counter(FAULT_SMTP_TARPIT, faults.stats.tarpitted);
        reg.record_counter(FAULT_BOUNDARY_EVENTS, world.fault_boundaries());
    }
    reg.record_counter(WORLD_TRACE_DROPPED, world.trace.dropped());
    collect_engine(world, reg);
}

/// Exports the accumulated [`EngineStats`](spamward_sim::EngineStats) of a
/// world: how much discrete-event work its episodes did and how they
/// ended. Skipped entirely for worlds never driven through the engine, so
/// undriven worlds export no spurious zeros.
fn collect_engine(world: &MailWorld, reg: &mut Registry) {
    let stats = &world.engine_stats;
    if stats.is_empty() {
        return;
    }
    reg.record_counter(ENGINE_EVENTS, stats.events);
    reg.record_gauge(ENGINE_QUEUE_HIGH_WATER, stats.queue_high_water as i64);
    for (actor, episodes) in &stats.actor_events {
        let mut h = Histogram::new(&EPISODE_EVENT_BOUNDS);
        for &events in episodes {
            h.observe(events);
        }
        reg.record_histogram(&format!("{ENGINE_EPISODE_EVENTS_PREFIX}{actor}"), &h);
    }
    reg.record_counter(ENGINE_OUTCOME_DRAINED, stats.outcomes.drained);
    reg.record_counter(ENGINE_OUTCOME_HORIZON, stats.outcomes.horizon_reached);
    reg.record_counter(ENGINE_OUTCOME_BUDGET_EXHAUSTED, stats.outcomes.budget_exhausted);
    reg.record_counter(ENGINE_OUTCOME_STOPPED, stats.outcomes.stopped);
}

/// Exports one shard's engine event count under its
/// [`ENGINE_SHARD_PREFIX`] name. Sharded experiments call this once per
/// shard of their fixed partition, in shard order.
pub fn collect_shard_events(shard: u32, events: u64, reg: &mut Registry) {
    reg.record_counter(&format!("{ENGINE_SHARD_PREFIX}{shard}.events"), events);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::MtaProfile;
    use spamward_dns::Zone;
    use spamward_greylist::{Greylist, GreylistConfig};
    use spamward_sim::{SimDuration, SimTime};
    use spamward_smtp::{Message, ReversePath};
    use std::net::Ipv4Addr;

    #[test]
    fn shard_event_collection_names_each_shard() {
        let mut reg = Registry::new();
        collect_shard_events(0, 12, &mut reg);
        collect_shard_events(3, 0, &mut reg);
        assert_eq!(reg.counter("sim.engine.shard.0.events"), Some(12));
        assert_eq!(reg.counter("sim.engine.shard.3.events"), Some(0));
    }

    #[test]
    fn world_collection_reflects_a_delivery() {
        let victim_ip = Ipv4Addr::new(192, 0, 2, 10);
        let mut world = MailWorld::new(7);
        world.install_server(ReceivingMta::new("mx.victim.example", victim_ip).with_greylist(
            Greylist::new(
                GreylistConfig::with_delay(SimDuration::from_secs(300)).without_auto_whitelist(),
            ),
        ));
        world.dns.publish(Zone::single_mx("victim.example".parse().unwrap(), victim_ip));

        let mut sender = SendingMta::new(
            "relay.example",
            vec![Ipv4Addr::new(198, 51, 100, 3)],
            MtaProfile::postfix(),
        );
        sender.submit(
            "victim.example".parse().unwrap(),
            ReversePath::Address("a@relay.example".parse().unwrap()),
            vec!["u@victim.example".parse().unwrap()],
            Message::builder().body("x").build(),
            SimTime::ZERO,
        );
        sender.drain(SimTime::ZERO, &mut world);

        let mut reg = Registry::new();
        collect_world(&world, &mut reg);
        collect_sender(&sender, &mut reg);

        assert_eq!(reg.counter(SEND_DELIVERED), Some(1));
        assert_eq!(reg.counter(RECV_ACCEPTED), Some(1));
        assert_eq!(reg.counter("greylist.deferred.new"), Some(1), "first contact was greylisted");
        assert_eq!(reg.counter("greylist.passed.after_delay"), Some(1));
        assert!(reg.counter("smtp.server.commands").unwrap_or(0) > 0);
        assert!(reg.counter("net.connect.attempted").unwrap_or(0) >= 2);
        assert!(reg.counter("dns.query.mx").unwrap_or(0) >= 1);
        // The delivered message waited out the 300 s delay.
        match reg.get(SEND_DELIVERY_DELAY_S) {
            Some(spamward_obs::MetricValue::Histogram(h)) => {
                assert_eq!(h.count(), 1);
                assert!(h.sum() >= 300);
            }
            other => panic!("expected delay histogram, got {other:?}"),
        }
        // The drain ran as engine episodes, so the engine exports appear:
        // one drained episode whose wake-ups are the delivery attempts
        // (postfix retries at exactly 300 s, still inside the delay, so
        // delivery takes three attempts).
        assert_eq!(reg.counter(ENGINE_EVENTS), Some(3));
        assert_eq!(reg.gauge(ENGINE_QUEUE_HIGH_WATER), Some(1));
        assert_eq!(reg.counter(ENGINE_OUTCOME_DRAINED), Some(1));
        assert_eq!(reg.counter(ENGINE_OUTCOME_BUDGET_EXHAUSTED), Some(0));
        match reg.get("sim.engine.episode_events.mta.send") {
            Some(spamward_obs::MetricValue::Histogram(h)) => {
                assert_eq!(h.count(), 1);
                assert_eq!(h.sum(), 3);
            }
            other => panic!("expected episode histogram, got {other:?}"),
        }
    }

    #[test]
    fn undriven_world_exports_no_engine_metrics() {
        let world = MailWorld::new(9);
        let mut reg = Registry::new();
        collect_world(&world, &mut reg);
        assert_eq!(reg.counter(ENGINE_EVENTS), None);
        assert_eq!(reg.counter(ENGINE_OUTCOME_DRAINED), None);
    }
}
