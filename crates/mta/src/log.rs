//! The anonymized receiving-MTA log.
//!
//! The university dataset behind Fig. 5 is "anonymized log entries ...
//! containing, for each greylisted message, the time of each attempted
//! delivery". This module produces exactly that: per-event entries keyed by
//! an opaque triplet hash (no addresses survive anonymization), rendered to
//! a stable text format that `spamward-analysis` parses back.

use serde::{Deserialize, Serialize};
use spamward_sim::SimTime;
use std::fmt;

/// What happened to one RCPT (or one completed message).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LogEvent {
    /// The RCPT was deferred by greylisting.
    Greylisted,
    /// The RCPT passed greylisting after the delay.
    PassedGreylist,
    /// The RCPT was exempt (whitelist/auto-whitelist).
    Whitelisted,
    /// The RCPT named an unknown user and was rejected.
    UnknownRecipient,
    /// A complete message was accepted and stored.
    Accepted,
}

impl LogEvent {
    fn as_str(self) -> &'static str {
        match self {
            LogEvent::Greylisted => "greylisted",
            LogEvent::PassedGreylist => "passed",
            LogEvent::Whitelisted => "whitelisted",
            LogEvent::UnknownRecipient => "unknown-rcpt",
            LogEvent::Accepted => "accepted",
        }
    }

    /// Parses the textual form this type's `Display` renders.
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "greylisted" => LogEvent::Greylisted,
            "passed" => LogEvent::PassedGreylist,
            "whitelisted" => LogEvent::Whitelisted,
            "unknown-rcpt" => LogEvent::UnknownRecipient,
            "accepted" => LogEvent::Accepted,
            _ => return None,
        })
    }
}

impl fmt::Display for LogEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One anonymized log entry.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MtaLogEntry {
    /// When the event happened.
    pub at: SimTime,
    /// The event kind.
    pub event: LogEvent,
    /// Opaque hash of the greylist triplet — the only identity that
    /// survives anonymization.
    pub triplet_hash: u64,
}

impl MtaLogEntry {
    /// Renders the stable single-line text format:
    /// `"<unix-ish seconds>.<micros> <event> key=<hex>"`.
    pub fn to_line(&self) -> String {
        let us = self.at.as_micros();
        format!(
            "{}.{:06} {} key={:016x}",
            us / 1_000_000,
            us % 1_000_000,
            self.event,
            self.triplet_hash
        )
    }

    /// Parses a line produced by [`MtaLogEntry::to_line`].
    pub fn parse_line(line: &str) -> Option<Self> {
        let mut parts = line.split_whitespace();
        let ts = parts.next()?;
        let event = LogEvent::parse(parts.next()?)?;
        let key = parts.next()?.strip_prefix("key=")?;
        let (secs, micros) = ts.split_once('.')?;
        let at = SimTime::from_micros(
            secs.parse::<u64>().ok()? * 1_000_000 + micros.parse::<u64>().ok()?,
        );
        let triplet_hash = u64::from_str_radix(key, 16).ok()?;
        Some(MtaLogEntry { at, event, triplet_hash })
    }
}

impl fmt::Display for MtaLogEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_line())
    }
}

/// Stable anonymizing hash of a triplet key (FNV-1a over its display form,
/// salted so two deployments don't produce joinable logs).
pub(crate) fn anonymize(salt: u64, key: &spamward_greylist::TripletKey) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ salt;
    for b in format!("{key}").bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use spamward_greylist::TripletKey;
    use spamward_smtp::ReversePath;
    use std::net::Ipv4Addr;

    #[test]
    fn line_roundtrip() {
        let e = MtaLogEntry {
            at: SimTime::from_micros(1_234_567_890),
            event: LogEvent::Greylisted,
            triplet_hash: 0xdead_beef_cafe_f00d,
        };
        let line = e.to_line();
        assert_eq!(line, "1234.567890 greylisted key=deadbeefcafef00d");
        assert_eq!(MtaLogEntry::parse_line(&line).unwrap(), e);
    }

    #[test]
    fn all_events_roundtrip() {
        for ev in [
            LogEvent::Greylisted,
            LogEvent::PassedGreylist,
            LogEvent::Whitelisted,
            LogEvent::UnknownRecipient,
            LogEvent::Accepted,
        ] {
            let e = MtaLogEntry { at: SimTime::from_secs(42), event: ev, triplet_hash: 7 };
            assert_eq!(MtaLogEntry::parse_line(&e.to_line()).unwrap(), e);
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert_eq!(MtaLogEntry::parse_line(""), None);
        assert_eq!(MtaLogEntry::parse_line("notatime greylisted key=0"), None);
        assert_eq!(MtaLogEntry::parse_line("1.0 nonsense key=0"), None);
        assert_eq!(MtaLogEntry::parse_line("1.0 greylisted nokey"), None);
    }

    #[test]
    fn anonymize_is_salted_and_stable() {
        let key = TripletKey::new(
            Ipv4Addr::new(10, 0, 0, 1),
            &ReversePath::Null,
            &"u@foo.net".parse().unwrap(),
            24,
        );
        assert_eq!(anonymize(1, &key), anonymize(1, &key));
        assert_ne!(anonymize(1, &key), anonymize(2, &key));
    }
}
