//! The sending MTA: queue, retry schedule, IP-pool selection.

use crate::schedule::MtaProfile;
use crate::world::{MailWorld, MxStrategy};
use crate::worldsim::{SenderActor, WorldSim};
use spamward_dns::DomainName;
use spamward_sim::{DetRng, SimDuration, SimTime};
use spamward_smtp::{Dialect, EmailAddress, Envelope, Message, ReversePath};
use std::collections::BTreeMap;
use std::fmt;
use std::net::Ipv4Addr;

/// Why a non-delivery report was generated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BounceReason {
    /// The message out-lived the queue (RFC 5321 §4.5.4.1 give-up).
    Expired,
    /// The receiver rejected it permanently.
    Rejected,
}

impl fmt::Display for BounceReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BounceReason::Expired => write!(f, "message expired in queue"),
            BounceReason::Rejected => write!(f, "rejected by remote server"),
        }
    }
}

/// A non-delivery report (DSN) owed to the original sender.
///
/// Bounces carry the *null reverse path* `<>` so that they can never
/// themselves bounce (the mail-loop protection of RFC 5321 §4.5.5) — which
/// also means greylisting services see plenty of `<>` senders, a case the
/// triplet key handles explicitly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BounceReport {
    /// Queue id of the failed message.
    pub original_id: u64,
    /// When the bounce was generated.
    pub generated_at: SimTime,
    /// Why.
    pub reason: BounceReason,
    /// The original sender, who receives the report.
    pub recipient: EmailAddress,
    /// The ready-to-send DSN message.
    pub message: Message,
}

/// How an outbound pool picks the source address per attempt.
///
/// Greylisting keys on the client address, so a pool that hops addresses
/// between retries keeps resetting its own greylist clock — exactly the
/// pathology the paper observed for five of the ten webmail providers
/// (Table III, "same IP" column).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IpSelection {
    /// Always the first pool address.
    Fixed,
    /// Rotate deterministically through the pool.
    RoundRobin,
    /// Pick uniformly at random per attempt.
    RandomPerAttempt,
}

/// Resilience knobs layered *on top of* an [`MtaProfile`]'s retry
/// schedule (Table IV stays authoritative for the baseline cadence).
///
/// Two mechanisms, both per-destination and both deterministic:
///
/// * **Bounded exponential backoff** — when an attempt fails at the
///   *connection* level (every candidate MX unreachable), the next retry
///   is pushed to at least `now + base·2^(attempt−1)` (capped at
///   `backoff_cap`) plus a jittered fraction of that backoff. The jitter
///   is a pure function of (sender seed, message id, attempt number), so
///   identical runs produce identical queues.
/// * **Circuit breaker** — after `breaker_threshold` *consecutive*
///   connection failures to one destination domain, the breaker opens and
///   attempts to that domain are skipped (not counted as attempts) until
///   `breaker_cooldown` elapses. Greylist tempfails and SMTP-level aborts
///   never trip it: the TCP handshake succeeded, so the destination is
///   alive and backing off would only delay legitimate mail.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// First-failure backoff floor.
    pub backoff_base: SimDuration,
    /// Upper bound on the exponential backoff.
    pub backoff_cap: SimDuration,
    /// Jitter as a fraction of the computed backoff (0.0 disables it).
    pub jitter_frac: f64,
    /// Consecutive connection failures that open the breaker.
    pub breaker_threshold: u32,
    /// How long an open breaker holds attempts off.
    pub breaker_cooldown: SimDuration,
}

impl RetryPolicy {
    /// The reference resilient configuration used by the `resilience`
    /// experiment: 30 s base doubling to a 10 min cap with 25 % jitter,
    /// breaker opening after 3 consecutive connect failures for 5 min.
    pub fn resilient() -> Self {
        RetryPolicy {
            backoff_base: SimDuration::from_secs(30),
            backoff_cap: SimDuration::from_mins(10),
            jitter_frac: 0.25,
            breaker_threshold: 3,
            breaker_cooldown: SimDuration::from_mins(5),
        }
    }
}

/// Per-destination breaker state (keyed by destination domain).
#[derive(Debug, Clone, Copy, Default)]
struct Breaker {
    consecutive_failures: u32,
    open_until: Option<SimTime>,
}

/// Lifecycle of a queued message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutboundStatus {
    /// Still scheduled for (re)delivery.
    Queued,
    /// Delivered to at least one recipient.
    Delivered,
    /// Permanently rejected by the receiver.
    Rejected,
    /// Exceeded the queue lifetime (or the schedule gave up) and bounced.
    Expired,
}

/// One message in the outbound queue.
#[derive(Debug, Clone)]
pub struct QueuedMessage {
    /// Queue-local id.
    pub id: u64,
    /// Destination domain (MX lookup target).
    pub domain: DomainName,
    /// Envelope sender.
    pub mail_from: ReversePath,
    /// Recipients still owed delivery.
    pub recipients: Vec<EmailAddress>,
    /// Message content.
    pub message: Message,
    /// When the message entered the queue.
    pub enqueued_at: SimTime,
    /// Next scheduled attempt.
    pub next_attempt_at: SimTime,
    /// Completed attempts so far.
    pub attempts: u32,
    /// Current status.
    pub status: OutboundStatus,
}

/// One delivery attempt as recorded by the sender (the raw material of
/// Table III).
#[derive(Debug, Clone)]
pub struct AttemptRecord {
    /// Which queued message.
    pub message_id: u64,
    /// 1-based attempt number.
    pub attempt: u32,
    /// When the attempt ran.
    pub at: SimTime,
    /// Delay since the message was queued.
    pub since_enqueue: SimDuration,
    /// Source address used.
    pub source_ip: Ipv4Addr,
    /// Whether the attempt delivered the message.
    pub delivered: bool,
}

/// A queue-and-retry sending MTA (or webmail outbound tier).
///
/// Drive it from a simulation: [`SendingMta::submit`] enqueues,
/// [`SendingMta::next_due`] tells the experiment when to wake up, and
/// [`SendingMta::run_due`] executes every attempt that is due.
///
/// # Example
///
/// ```
/// use std::net::Ipv4Addr;
/// use spamward_dns::Zone;
/// use spamward_mta::{MailWorld, MtaProfile, ReceivingMta, SendingMta};
/// use spamward_sim::SimTime;
/// use spamward_smtp::{Message, ReversePath};
///
/// let mut world = MailWorld::new(7);
/// let mx = Ipv4Addr::new(192, 0, 2, 10);
/// world.install_server(ReceivingMta::new("mail.foo.net", mx));
/// world.dns.publish(Zone::single_mx("foo.net".parse()?, mx));
///
/// let mut sender = SendingMta::new("relay.example", vec![Ipv4Addr::new(198, 51, 100, 1)], MtaProfile::postfix());
/// sender.submit(
///     "foo.net".parse()?,
///     ReversePath::Address("a@relay.example".parse()?),
///     vec!["u@foo.net".parse()?],
///     Message::builder().body("hi").build(),
///     SimTime::ZERO,
/// );
/// let records = sender.run_due(SimTime::ZERO, &mut world);
/// assert!(records[0].delivered);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct SendingMta {
    fqdn: String,
    ip_pool: Vec<Ipv4Addr>,
    ip_selection: IpSelection,
    profile: MtaProfile,
    dialect: Dialect,
    queue: Vec<QueuedMessage>,
    records: Vec<AttemptRecord>,
    bounces: Vec<BounceReport>,
    next_id: u64,
    rr_cursor: usize,
    retry_policy: Option<RetryPolicy>,
    breakers: BTreeMap<String, Breaker>,
    breaker_trips: u64,
    breaker_skipped: u64,
    backoffs_applied: u64,
    rng: DetRng,
}

impl SendingMta {
    /// Creates a sender with the given outbound pool and retry profile.
    ///
    /// # Panics
    ///
    /// Panics if `ip_pool` is empty.
    pub fn new(fqdn: &str, ip_pool: Vec<Ipv4Addr>, profile: MtaProfile) -> Self {
        assert!(!ip_pool.is_empty(), "sending MTA needs at least one source IP");
        SendingMta {
            fqdn: fqdn.to_owned(),
            dialect: Dialect::compliant_mta(fqdn),
            ip_pool,
            ip_selection: IpSelection::Fixed,
            profile,
            queue: Vec::new(),
            records: Vec::new(),
            bounces: Vec::new(),
            next_id: 0,
            rr_cursor: 0,
            retry_policy: None,
            breakers: BTreeMap::new(),
            breaker_trips: 0,
            breaker_skipped: 0,
            backoffs_applied: 0,
            rng: DetRng::seed(0xB0B).fork("sending-mta"),
        }
    }

    /// Sets the source-address strategy.
    pub fn with_ip_selection(mut self, selection: IpSelection) -> Self {
        self.ip_selection = selection;
        self
    }

    /// Overrides the SMTP dialect (defaults to a compliant MTA's).
    pub fn with_dialect(mut self, dialect: Dialect) -> Self {
        self.dialect = dialect;
        self
    }

    /// Reseeds the internal RNG (for deterministic experiments).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.rng = DetRng::seed(seed).fork("sending-mta");
        self
    }

    /// Layers a [`RetryPolicy`] (backoff + circuit breaker) on the
    /// profile's schedule. Without one, behavior is byte-identical to the
    /// baseline sender.
    pub fn with_retry_policy(mut self, policy: RetryPolicy) -> Self {
        self.retry_policy = Some(policy);
        self
    }

    /// The resilience policy, if one was installed.
    pub fn retry_policy(&self) -> Option<&RetryPolicy> {
        self.retry_policy.as_ref()
    }

    /// How many times a per-destination breaker opened.
    pub fn breaker_trips(&self) -> u64 {
        self.breaker_trips
    }

    /// Attempts skipped because the destination's breaker was open.
    pub fn breaker_skipped(&self) -> u64 {
        self.breaker_skipped
    }

    /// Retries whose schedule slot was pushed back by exponential backoff.
    pub fn backoffs_applied(&self) -> u64 {
        self.backoffs_applied
    }

    /// The sender's name.
    pub fn fqdn(&self) -> &str {
        &self.fqdn
    }

    /// The retry profile in use.
    pub fn profile(&self) -> &MtaProfile {
        &self.profile
    }

    /// Every attempt made so far.
    pub fn records(&self) -> &[AttemptRecord] {
        &self.records
    }

    /// The queue contents (all statuses).
    pub fn queue(&self) -> &[QueuedMessage] {
        &self.queue
    }

    /// Non-delivery reports generated so far (expired/rejected messages
    /// whose sender was not the null path).
    pub fn bounces(&self) -> &[BounceReport] {
        &self.bounces
    }

    /// Removes and returns the pending bounce reports (so an experiment
    /// can route them back through the mail system).
    pub fn take_bounces(&mut self) -> Vec<BounceReport> {
        std::mem::take(&mut self.bounces)
    }

    fn generate_bounce(&mut self, idx: usize, now: SimTime, reason: BounceReason) {
        let item = &self.queue[idx];
        // Never bounce a bounce: null-path mail dies silently.
        let ReversePath::Address(ref original_sender) = item.mail_from else {
            return;
        };
        let rcpts: Vec<String> = item.recipients.iter().map(|r| r.to_string()).collect();
        let message = Message::builder()
            .header("From", &format!("MAILER-DAEMON@{}", self.fqdn))
            .header("To", &original_sender.to_string())
            .header("Subject", "Undelivered Mail Returned to Sender")
            .header("Auto-Submitted", "auto-replied")
            .body(&format!(
                "This is the mail system at host {}.\n\n\
                 I'm sorry to have to inform you that your message could not\n\
                 be delivered to one or more recipients.\n\n\
                 <{}>: {}\n\n\
                 Attempts: {}\n",
                self.fqdn,
                rcpts.join(">, <"),
                reason,
                item.attempts,
            ))
            .build();
        self.bounces.push(BounceReport {
            original_id: item.id,
            generated_at: now,
            reason,
            recipient: original_sender.clone(),
            message,
        });
    }

    /// Enqueues a message for delivery "now"; returns its id.
    pub fn submit(
        &mut self,
        domain: DomainName,
        mail_from: ReversePath,
        recipients: Vec<EmailAddress>,
        message: Message,
        now: SimTime,
    ) -> u64 {
        assert!(!recipients.is_empty(), "a message needs at least one recipient");
        let id = self.next_id;
        self.next_id += 1;
        self.queue.push(QueuedMessage {
            id,
            domain,
            mail_from,
            recipients,
            message,
            enqueued_at: now,
            next_attempt_at: now,
            attempts: 0,
            status: OutboundStatus::Queued,
        });
        id
    }

    /// The earliest pending attempt, if any.
    pub fn next_due(&self) -> Option<SimTime> {
        self.queue
            .iter()
            .filter(|m| m.status == OutboundStatus::Queued)
            .map(|m| m.next_attempt_at)
            .min()
    }

    fn pick_source(&mut self) -> Ipv4Addr {
        match self.ip_selection {
            IpSelection::Fixed => self.ip_pool[0],
            IpSelection::RoundRobin => {
                let ip = self.ip_pool[self.rr_cursor % self.ip_pool.len()];
                self.rr_cursor += 1;
                ip
            }
            IpSelection::RandomPerAttempt => *self.rng.pick(&self.ip_pool.clone()),
        }
    }

    /// Runs every attempt due at or before `now`; returns the attempt
    /// records produced in this call.
    pub fn run_due(&mut self, now: SimTime, world: &mut MailWorld) -> Vec<AttemptRecord> {
        let mut produced = Vec::new();
        for idx in 0..self.queue.len() {
            if self.queue[idx].status != OutboundStatus::Queued
                || self.queue[idx].next_attempt_at > now
            {
                continue;
            }

            // An open breaker holds the attempt entirely: no connection, no
            // attempt count, no schedule consumption — the message simply
            // waits for the cooldown to lapse.
            if self.retry_policy.is_some() {
                let key = self.queue[idx].domain.to_string();
                if let Some(breaker) = self.breakers.get_mut(&key) {
                    match breaker.open_until {
                        Some(open_until) if now < open_until => {
                            self.queue[idx].next_attempt_at = open_until;
                            self.breaker_skipped += 1;
                            continue;
                        }
                        // Cooldown elapsed: half-open, let one attempt probe.
                        Some(_) => breaker.open_until = None,
                        None => {}
                    }
                }
            }

            let source_ip = self.pick_source();
            let item = &mut self.queue[idx];
            item.attempts += 1;
            let attempt_no = item.attempts;

            let envelope = Envelope::builder()
                .client_ip(source_ip)
                .helo(&self.fqdn)
                .mail_from(item.mail_from.clone())
                .rcpts(item.recipients.iter().cloned())
                .build();
            let domain = item.domain.clone();
            let message = item.message.clone();
            let report = world.attempt_delivery(
                now,
                &self.dialect,
                MxStrategy::RfcCompliant,
                &domain,
                envelope,
                message,
            );

            let delivered = report.outcome.is_delivered();
            let conn_failed = report.connection_failed();
            if let Some(policy) = self.retry_policy {
                let key = domain.to_string();
                if conn_failed {
                    let breaker = self.breakers.entry(key).or_default();
                    breaker.consecutive_failures += 1;
                    if breaker.consecutive_failures >= policy.breaker_threshold {
                        breaker.open_until = Some(now + policy.breaker_cooldown);
                        breaker.consecutive_failures = 0;
                        self.breaker_trips += 1;
                    }
                } else {
                    // Any completed SMTP exchange (even a greylist 450)
                    // proves the destination reachable again.
                    self.breakers.remove(&key);
                }
            }

            let item = &mut self.queue[idx];
            produced.push(AttemptRecord {
                message_id: item.id,
                attempt: attempt_no,
                at: now,
                since_enqueue: now.elapsed_since(item.enqueued_at),
                source_ip,
                delivered,
            });

            if delivered {
                // Per-recipient requeue: keep only still-deferred rcpts.
                let pending = report.outcome.pending_recipients().to_vec();
                if pending.is_empty() {
                    item.status = OutboundStatus::Delivered;
                    continue;
                }
                item.recipients = pending;
            } else if !report.outcome.is_retryable() {
                item.status = OutboundStatus::Rejected;
                self.generate_bounce(idx, now, BounceReason::Rejected);
                continue;
            }

            // Schedule the next retry, or expire.
            match self.profile.schedule.nth_retry_at(attempt_no) {
                Some(offset) if offset <= self.profile.max_queue_time => {
                    let mut next = self.queue[idx].enqueued_at + offset;
                    if conn_failed {
                        if let Some(policy) = self.retry_policy {
                            // Bounded exponential backoff, floored at `now`:
                            // base·2^(n−1) capped, plus deterministic jitter
                            // keyed on (sender seed, message id, attempt).
                            let exp = (attempt_no - 1).min(16);
                            let backoff =
                                (policy.backoff_base * (1u64 << exp)).min(policy.backoff_cap);
                            let mut jitter_rng = self
                                .rng
                                .fork("retry.jitter")
                                .fork_idx("msg", self.queue[idx].id)
                                .fork_idx("attempt", u64::from(attempt_no));
                            let jitter = backoff * (policy.jitter_frac * jitter_rng.unit_f64());
                            let floor = now + backoff + jitter;
                            if floor > next {
                                next = floor;
                                self.backoffs_applied += 1;
                            }
                        }
                    }
                    self.queue[idx].next_attempt_at = next;
                }
                _ => {
                    self.queue[idx].status = OutboundStatus::Expired;
                    self.generate_bounce(idx, now, BounceReason::Expired);
                }
            }
        }
        self.records.extend(produced.iter().cloned());
        produced
    }

    /// An inert placeholder that stands in for the MTA while [`drain`]
    /// moves the real one into an engine episode; never sends.
    ///
    /// [`drain`]: SendingMta::drain
    fn parked() -> Self {
        SendingMta {
            fqdn: String::new(),
            dialect: Dialect::compliant_mta(""),
            ip_pool: Vec::new(),
            ip_selection: IpSelection::Fixed,
            profile: MtaProfile::postfix(),
            queue: Vec::new(),
            records: Vec::new(),
            bounces: Vec::new(),
            next_id: 0,
            rr_cursor: 0,
            retry_policy: None,
            breakers: BTreeMap::new(),
            breaker_trips: 0,
            breaker_skipped: 0,
            backoffs_applied: 0,
            rng: DetRng::seed(0).fork("parked"),
        }
    }

    /// Drives the queue to completion against `world` as one engine
    /// episode ([`WorldSim::episode`]): the MTA becomes a
    /// [`SenderActor`] whose retry schedule is a self-rescheduling
    /// timer. Returns the time of the last attempt (or `start` when the
    /// queue was already idle).
    pub fn drain(&mut self, start: SimTime, world: &mut MailWorld) -> SimTime {
        let Some(due) = self.next_due() else { return start };
        let mta = std::mem::replace(self, SendingMta::parked());
        let (actor, _outcome, end) =
            WorldSim::episode(world, SenderActor::new(mta), due.max(start), None);
        *self = actor.into_inner();
        end.max(start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::receive::{ReceivingMta, RecipientPolicy};
    use spamward_dns::Zone;
    use spamward_greylist::{Greylist, GreylistConfig};

    fn domain() -> DomainName {
        "foo.net".parse().unwrap()
    }

    fn world_with_greylist(delay_secs: u64) -> (MailWorld, Ipv4Addr) {
        let mut w = MailWorld::new(9);
        let mx = Ipv4Addr::new(192, 0, 2, 10);
        w.install_server(ReceivingMta::new("mail.foo.net", mx).with_greylist(Greylist::new(
            GreylistConfig::with_delay(SimDuration::from_secs(delay_secs)).without_auto_whitelist(),
        )));
        w.dns.publish(Zone::single_mx(domain(), mx));
        (w, mx)
    }

    fn sender(profile: MtaProfile) -> SendingMta {
        SendingMta::new("relay.example", vec![Ipv4Addr::new(198, 51, 100, 1)], profile)
    }

    fn submit_one(s: &mut SendingMta, now: SimTime) -> u64 {
        s.submit(
            domain(),
            ReversePath::Address("a@relay.example".parse().unwrap()),
            vec!["u@foo.net".parse().unwrap()],
            Message::builder().header("Subject", "x").body("b").build(),
            now,
        )
    }

    #[test]
    fn delivers_through_greylist_via_schedule() {
        let (mut w, mx) = world_with_greylist(300);
        let mut s = sender(MtaProfile::postfix());
        submit_one(&mut s, SimTime::ZERO);
        let end = s.drain(SimTime::ZERO, &mut w);
        // postfix first retry at 5 min = exactly the 300 s delay.
        assert_eq!(s.queue()[0].status, OutboundStatus::Delivered);
        assert_eq!(s.records().len(), 2, "initial attempt + one retry");
        assert!(s.records()[1].delivered);
        assert_eq!(s.records()[1].since_enqueue, SimDuration::from_mins(5));
        assert_eq!(w.server(mx).unwrap().mailbox().len(), 1);
        assert_eq!(end, SimTime::ZERO + SimDuration::from_mins(5));
    }

    #[test]
    fn sendmail_needs_one_retry_at_10min() {
        let (mut w, _) = world_with_greylist(300);
        let mut s = sender(MtaProfile::sendmail());
        submit_one(&mut s, SimTime::ZERO);
        s.drain(SimTime::ZERO, &mut w);
        assert_eq!(s.records().len(), 2);
        assert_eq!(s.records()[1].since_enqueue, SimDuration::from_mins(10));
    }

    #[test]
    fn six_hour_greylist_takes_many_retries() {
        let (mut w, _) = world_with_greylist(21_600);
        let mut s = sender(MtaProfile::postfix());
        submit_one(&mut s, SimTime::ZERO);
        s.drain(SimTime::ZERO, &mut w);
        assert_eq!(s.queue()[0].status, OutboundStatus::Delivered);
        let last = s.records().last().unwrap();
        assert!(last.delivered);
        assert!(last.since_enqueue >= SimDuration::from_hours(6));
        assert!(s.records().len() > 10, "a 6 h greylist forces many postfix retries");
    }

    #[test]
    fn exchange_two_day_queue_expires_against_impossible_greylist() {
        // A greylist longer than exchange's queue life can never be passed.
        let (mut w, mx) = world_with_greylist(3 * 86_400);
        let mut s = sender(MtaProfile::exchange());
        submit_one(&mut s, SimTime::ZERO);
        s.drain(SimTime::ZERO, &mut w);
        assert_eq!(s.queue()[0].status, OutboundStatus::Expired);
        assert_eq!(w.server(mx).unwrap().mailbox().len(), 0);
        let last = s.records().last().unwrap();
        assert!(last.since_enqueue <= SimDuration::from_days(2));
    }

    #[test]
    fn permanent_rejection_stops_retrying() {
        let mut w = MailWorld::new(11);
        let mx = Ipv4Addr::new(192, 0, 2, 10);
        w.install_server(
            ReceivingMta::new("mail.foo.net", mx)
                .with_recipients(RecipientPolicy::List(Default::default())),
        );
        w.dns.publish(Zone::single_mx(domain(), mx));
        let mut s = sender(MtaProfile::postfix());
        submit_one(&mut s, SimTime::ZERO);
        s.drain(SimTime::ZERO, &mut w);
        assert_eq!(s.queue()[0].status, OutboundStatus::Rejected);
        assert_eq!(s.records().len(), 1, "5xx must not be retried");
    }

    #[test]
    fn round_robin_pool_rotates_and_random_stays_in_pool() {
        let pool: Vec<Ipv4Addr> = (1..=3).map(|d| Ipv4Addr::new(198, 51, 100, d)).collect();
        let mut s = SendingMta::new("relay.example", pool.clone(), MtaProfile::postfix())
            .with_ip_selection(IpSelection::RoundRobin);
        let picks: Vec<Ipv4Addr> = (0..6).map(|_| s.pick_source()).collect();
        assert_eq!(&picks[..3], &pool[..]);
        assert_eq!(&picks[3..], &pool[..]);

        let mut s = SendingMta::new("relay.example", pool.clone(), MtaProfile::postfix())
            .with_ip_selection(IpSelection::RandomPerAttempt)
            .with_seed(5);
        for _ in 0..32 {
            assert!(pool.contains(&s.pick_source()));
        }
    }

    #[test]
    fn hopping_ips_delays_delivery() {
        // Two addresses in *different* /24s: each address starts its own
        // greylist clock, so delivery needs an extra round trip through the
        // pool — the paper's "this behavior increases the delivery time"
        // observation (§V-C). Round-robin reuses the first address on
        // attempt 3, whose clock started at t0.
        let (mut w, mx) = world_with_greylist(300);
        let pool = vec![Ipv4Addr::new(198, 51, 100, 1), Ipv4Addr::new(203, 0, 113, 1)];
        let mut s = SendingMta::new("relay.example", pool, MtaProfile::exchange())
            .with_ip_selection(IpSelection::RoundRobin);
        submit_one(&mut s, SimTime::ZERO);
        s.drain(SimTime::ZERO, &mut w);
        assert_eq!(s.queue()[0].status, OutboundStatus::Delivered);
        assert_eq!(s.records().len(), 3, "IP hopping costs an extra attempt");
        assert_eq!(s.records().last().unwrap().since_enqueue, SimDuration::from_mins(30));
        assert_eq!(w.server(mx).unwrap().mailbox().len(), 1);
    }

    #[test]
    fn same_subnet_pool_passes_greylist() {
        // Two addresses in the *same* /24: Postgrey's netmask keying saves
        // the day (why small pools still deliver in Table III).
        let (mut w, mx) = world_with_greylist(300);
        let pool = vec![Ipv4Addr::new(198, 51, 100, 1), Ipv4Addr::new(198, 51, 100, 2)];
        let mut s = SendingMta::new("relay.example", pool, MtaProfile::postfix())
            .with_ip_selection(IpSelection::RoundRobin);
        submit_one(&mut s, SimTime::ZERO);
        s.drain(SimTime::ZERO, &mut w);
        assert_eq!(s.queue()[0].status, OutboundStatus::Delivered);
        assert_eq!(w.server(mx).unwrap().mailbox().len(), 1);
    }

    #[test]
    fn expired_message_generates_bounce_to_sender() {
        let (mut w, _) = world_with_greylist(3 * 86_400);
        let mut s = sender(MtaProfile::exchange());
        submit_one(&mut s, SimTime::ZERO);
        s.drain(SimTime::ZERO, &mut w);
        assert_eq!(s.queue()[0].status, OutboundStatus::Expired);
        let bounces = s.bounces();
        assert_eq!(bounces.len(), 1);
        let b = &bounces[0];
        assert_eq!(b.reason, BounceReason::Expired);
        assert_eq!(b.recipient.to_string(), "a@relay.example");
        assert_eq!(b.message.header("Subject"), Some("Undelivered Mail Returned to Sender"));
        assert!(b.message.body().contains("u@foo.net"));
    }

    #[test]
    fn rejected_message_generates_bounce() {
        let mut w = MailWorld::new(17);
        let mx = Ipv4Addr::new(192, 0, 2, 10);
        w.install_server(
            ReceivingMta::new("mail.foo.net", mx)
                .with_recipients(RecipientPolicy::List(Default::default())),
        );
        w.dns.publish(Zone::single_mx(domain(), mx));
        let mut s = sender(MtaProfile::postfix());
        submit_one(&mut s, SimTime::ZERO);
        s.drain(SimTime::ZERO, &mut w);
        assert_eq!(s.bounces().len(), 1);
        assert_eq!(s.bounces()[0].reason, BounceReason::Rejected);
    }

    #[test]
    fn null_sender_failures_never_bounce() {
        // Mail-loop protection: a failed DSN dies silently.
        let (mut w, _) = world_with_greylist(3 * 86_400);
        let mut s = sender(MtaProfile::exchange());
        s.submit(
            domain(),
            ReversePath::Null,
            vec!["u@foo.net".parse().unwrap()],
            Message::builder().body("dsn").build(),
            SimTime::ZERO,
        );
        s.drain(SimTime::ZERO, &mut w);
        assert_eq!(s.queue()[0].status, OutboundStatus::Expired);
        assert!(s.bounces().is_empty(), "null-path mail must not bounce");
    }

    #[test]
    fn delivered_messages_do_not_bounce_and_take_drains() {
        let (mut w, _) = world_with_greylist(300);
        let mut s = sender(MtaProfile::postfix());
        submit_one(&mut s, SimTime::ZERO);
        s.drain(SimTime::ZERO, &mut w);
        assert!(s.bounces().is_empty());
        assert!(s.take_bounces().is_empty());
    }

    #[test]
    fn next_due_reflects_queue() {
        let mut s = sender(MtaProfile::postfix());
        assert_eq!(s.next_due(), None);
        submit_one(&mut s, SimTime::from_secs(50));
        assert_eq!(s.next_due(), Some(SimTime::from_secs(50)));
    }

    #[test]
    #[should_panic(expected = "at least one source IP")]
    fn empty_pool_panics() {
        let _ = SendingMta::new("x", vec![], MtaProfile::postfix());
    }

    /// A world whose MX resolves to an address nothing listens on: every
    /// attempt dies at the connection stage.
    fn dead_destination_world(seed: u64) -> MailWorld {
        let mut w = MailWorld::new(seed);
        w.dns.publish(Zone::single_mx(domain(), Ipv4Addr::new(192, 0, 2, 10)));
        w
    }

    #[test]
    fn breaker_opens_skips_and_half_open_probes() {
        let mut w = dead_destination_world(23);
        let policy = RetryPolicy {
            backoff_base: SimDuration::from_secs(1),
            backoff_cap: SimDuration::from_secs(1),
            jitter_frac: 0.0,
            breaker_threshold: 2,
            breaker_cooldown: SimDuration::from_hours(2),
        };
        let mut s = sender(MtaProfile::postfix()).with_retry_policy(policy);
        submit_one(&mut s, SimTime::ZERO);
        assert_eq!(s.run_due(SimTime::ZERO, &mut w).len(), 1);
        let t1 = s.next_due().unwrap();
        s.run_due(t1, &mut w); // second consecutive connect failure
        assert_eq!(s.breaker_trips(), 1);

        let t2 = s.next_due().unwrap();
        let skipped = s.run_due(t2, &mut w);
        assert!(skipped.is_empty(), "open breaker must hold the attempt");
        assert_eq!(s.breaker_skipped(), 1);
        assert_eq!(s.records().len(), 2, "a skip is not an attempt");

        let t3 = s.next_due().unwrap();
        assert_eq!(t3, t1 + SimDuration::from_hours(2), "skip reschedules to cooldown end");
        let probe = s.run_due(t3, &mut w);
        assert_eq!(probe.len(), 1, "half-open breaker lets one probe through");
        assert_eq!(s.breaker_trips(), 1, "one probe failure does not instantly re-trip");
    }

    #[test]
    fn connection_failures_apply_bounded_backoff() {
        let mut w = dead_destination_world(25);
        let policy = RetryPolicy {
            backoff_base: SimDuration::from_mins(30),
            backoff_cap: SimDuration::from_hours(2),
            jitter_frac: 0.0,
            breaker_threshold: 100,
            breaker_cooldown: SimDuration::from_mins(5),
        };
        let mut s = sender(MtaProfile::postfix()).with_retry_policy(policy);
        submit_one(&mut s, SimTime::ZERO);
        s.run_due(SimTime::ZERO, &mut w);
        assert_eq!(s.backoffs_applied(), 1);
        assert_eq!(s.next_due(), Some(SimTime::ZERO + SimDuration::from_mins(30)));
        // Second failure doubles the floor relative to its own "now".
        let t1 = SimTime::ZERO + SimDuration::from_mins(30);
        s.run_due(t1, &mut w);
        assert_eq!(s.backoffs_applied(), 2);
        assert_eq!(s.next_due(), Some(t1 + SimDuration::from_hours(1)));
    }

    #[test]
    fn backoff_jitter_is_deterministic_and_bounded() {
        let policy = RetryPolicy {
            backoff_base: SimDuration::from_mins(30),
            backoff_cap: SimDuration::from_hours(2),
            jitter_frac: 0.5,
            breaker_threshold: 100,
            breaker_cooldown: SimDuration::from_mins(5),
        };
        let run = || {
            let mut w = dead_destination_world(27);
            let mut s = sender(MtaProfile::postfix()).with_retry_policy(policy).with_seed(9);
            submit_one(&mut s, SimTime::ZERO);
            s.run_due(SimTime::ZERO, &mut w);
            s.next_due().unwrap()
        };
        let (a, b) = (run(), run());
        assert_eq!(a, b, "jitter must be a pure function of seed, id and attempt");
        assert!(a >= SimTime::ZERO + SimDuration::from_mins(30));
        assert!(a <= SimTime::ZERO + SimDuration::from_mins(45), "jitter stays within frac");
    }

    #[test]
    fn greylist_tempfail_never_trips_the_breaker() {
        let (mut w, mx) = world_with_greylist(300);
        let policy = RetryPolicy { breaker_threshold: 1, ..RetryPolicy::resilient() };
        let mut s = sender(MtaProfile::postfix()).with_retry_policy(policy);
        submit_one(&mut s, SimTime::ZERO);
        s.drain(SimTime::ZERO, &mut w);
        assert_eq!(s.queue()[0].status, OutboundStatus::Delivered);
        assert_eq!(s.breaker_trips(), 0, "a completed SMTP exchange proves the host alive");
        assert_eq!(s.backoffs_applied(), 0, "greylist deferrals keep the Table IV cadence");
        assert_eq!(s.records().len(), 2);
        assert_eq!(w.server(mx).unwrap().mailbox().len(), 1);
    }

    #[test]
    fn mid_session_crash_drop_treated_like_drop_after_data() {
        use spamward_net::{FaultPlan, FaultProfile, LatencyModel, Network};

        // Pin the RTT so the crash instant lands deterministically inside
        // the first session's span (6 round trips = 600 ms).
        let mut w = MailWorld::new(9);
        w.network =
            Network::new(9).with_latency(LatencyModel::Constant(SimDuration::from_millis(100)));
        let mx = Ipv4Addr::new(192, 0, 2, 10);
        w.install_server(ReceivingMta::new("mail.foo.net", mx).with_greylist(Greylist::new(
            GreylistConfig::with_delay(SimDuration::from_secs(300)).without_auto_whitelist(),
        )));
        w.dns.publish(Zone::single_mx(domain(), mx));
        let plan = FaultPlan::compile(
            &FaultProfile::crash_restart(
                "mail.foo.net",
                SimTime::ZERO + SimDuration::from_millis(300),
                SimDuration::from_secs(60),
            ),
            9,
        );
        w.install_faults(&plan);

        let policy = RetryPolicy { breaker_threshold: 1, ..RetryPolicy::resilient() };
        let mut s = sender(MtaProfile::postfix()).with_retry_policy(policy);
        submit_one(&mut s, SimTime::ZERO);
        s.drain(SimTime::ZERO, &mut w);

        // The first session was cut mid-DATA by the crash: a transient
        // failure whose MX trail shows an *established* connection —
        // exactly the shape of an injected DropAfterData — so even a
        // hair-trigger breaker must not trip, and the Table IV retry
        // cadence stays untouched.
        assert_eq!(s.breaker_trips(), 0, "mid-session drop is not a connect failure");
        assert_eq!(s.backoffs_applied(), 0, "retry cadence stays on the paper schedule");
        assert_eq!(s.queue()[0].status, OutboundStatus::Delivered);
        // No double-delivery: the cut session stored nothing, and the
        // greylisted retry path delivered exactly one copy.
        assert_eq!(w.server(mx).unwrap().mailbox().len(), 1);
        let crash = w.server(mx).unwrap().crash_stats();
        assert_eq!(crash.sessions_dropped, 1);
        assert_eq!((crash.crashes, crash.restarts), (1, 1));
        // t0 (cut mid-DATA), 300 s (greylisted first contact), 600 s (pass).
        assert_eq!(s.records().len(), 3);
    }

    #[test]
    fn without_a_policy_counters_stay_zero() {
        let (mut w, _) = world_with_greylist(300);
        let mut s = sender(MtaProfile::postfix());
        submit_one(&mut s, SimTime::ZERO);
        s.drain(SimTime::ZERO, &mut w);
        assert!(s.retry_policy().is_none());
        assert_eq!(s.breaker_trips() + s.breaker_skipped() + s.backoffs_applied(), 0);
    }

    #[test]
    fn drain_records_engine_stats_on_world() {
        let (mut w, _) = world_with_greylist(300);
        let mut s = sender(MtaProfile::postfix());
        submit_one(&mut s, SimTime::ZERO);
        s.drain(SimTime::ZERO, &mut w);
        assert_eq!(w.engine_stats.outcomes.drained, 1);
        assert_eq!(w.engine_stats.actor_events["mta.send"], vec![2], "two wake-ups: t0 + retry");
        assert_eq!(w.engine_stats.events, 2);
        assert!(w.engine_stats.queue_high_water >= 1);
    }

    #[test]
    fn cumulative_event_budget_truncates_drain() {
        let (mut w, _) = world_with_greylist(21_600);
        w.event_budget = Some(3);
        let mut s = sender(MtaProfile::postfix());
        submit_one(&mut s, SimTime::ZERO);
        s.drain(SimTime::ZERO, &mut w);
        assert_eq!(w.engine_stats.events, 3);
        assert_eq!(w.engine_stats.outcomes.budget_exhausted, 1);
        // A subsequent episode has nothing left and is cut immediately.
        let mut s2 = sender(MtaProfile::postfix());
        submit_one(&mut s2, SimTime::ZERO);
        let end = s2.drain(SimTime::ZERO, &mut w);
        assert_eq!(end, SimTime::ZERO);
        assert!(s2.records().is_empty());
        assert_eq!(w.engine_stats.outcomes.budget_exhausted, 2);
    }
}
