//! Mail transfer agents for the `spamward` suite.
//!
//! Two sides of the measurement meet here:
//!
//! * **Receiving** — [`ReceivingMta`] is the victim server of the paper's
//!   lab: a Postfix-like filter chain (recipient validation first, then
//!   whitelists, then Postgrey-style greylisting) wired into the
//!   [`spamward_smtp::ServerPolicy`] hooks, with a mailbox and an
//!   anonymized log in the format the university dataset provides.
//! * **Sending** — [`SendingMta`] is a queue-and-retry engine
//!   parameterized by an [`MtaProfile`]: the Table IV retransmission
//!   schedules of sendmail, exim, postfix, qmail, courier and exchange,
//!   with their maximum queue lifetimes, plus outbound IP-pool selection
//!   (the Table III "same IP" column is a consequence of this knob).
//! * **Glue** — [`MailWorld`] owns the simulated network, DNS and the
//!   receiving servers, and executes one complete delivery attempt
//!   ([`MailWorld::attempt_delivery`]): resolve MXs, pick candidates per
//!   [`MxStrategy`], connect, and run the SMTP exchange.
//! * **Execution** — [`WorldSim`] runs drivers (sending MTAs, botnet
//!   chains, webmail tiers) as self-rescheduling actors on the
//!   `spamward_sim` event engine, one episode at a time, accumulating
//!   [`MailWorld::engine_stats`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod log;
pub mod metrics;
mod receive;
mod schedule;
mod send;
mod world;
pub mod worldsim;

pub use log::{LogEvent, MtaLogEntry};
pub use receive::{
    CrashStats, DegradationMode, ReceiveStats, ReceivingMta, RecipientPolicy, StoredMessage,
};
pub use schedule::{MtaProfile, RetrySchedule};
pub use send::{
    AttemptRecord, BounceReason, BounceReport, IpSelection, OutboundStatus, QueuedMessage,
    RetryPolicy, SendingMta,
};
pub use world::{AttemptReport, MailWorld, MxAttempt, MxStrategy};
pub use worldsim::{
    ChaosActor, CheckpointActor, FaultActor, SenderActor, StoreMaintenanceActor, WorldSim,
};
