//! Bounded flight-recorder timeline of causally-linked span events.
//!
//! A [`Timeline`] records the lifecycle of individual messages — campaign
//! emit → DNS → connect → greylist decision → retry → delivery — as named
//! instant events on per-message *tracks*, in virtual time. Like the
//! trace recorder in `spamward_sim::trace` it is a bounded ring buffer
//! (oldest events drop first, with a drop counter), so enabling it on a
//! long campaign cannot grow without bound.
//!
//! The export format is Chrome trace-event JSON (`to_chrome_trace`), the
//! schema read by `chrome://tracing` and Perfetto: each track becomes a
//! named thread, each event an instant (`"ph":"i"`) on that thread at its
//! virtual-time microsecond offset. Events are sorted and tracks numbered
//! deterministically, so the rendered bytes are a pure function of the
//! recorded events regardless of shard merge order.

use crate::registry::json_str;
use spamward_sim::SimTime;
use std::collections::BTreeSet;
use std::collections::VecDeque;
use std::fmt::Write as _;

/// Default ring-buffer capacity of an enabled timeline.
pub const DEFAULT_TIMELINE_CAPACITY: usize = 65_536;

/// One recorded instant event on a timeline track.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimelineEvent {
    /// Virtual time of the event.
    pub at: SimTime,
    /// Event name (a `timeline.*` constant; rule O1 keeps literals out of
    /// call sites).
    pub name: String,
    /// Track the event belongs to — one track per message lifecycle.
    pub track: String,
    /// Free-form detail rendered into the trace `args`.
    pub detail: String,
}

/// A bounded, deterministic ring buffer of [`TimelineEvent`]s.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Timeline {
    capacity: usize,
    events: VecDeque<TimelineEvent>,
    dropped: u64,
}

impl Timeline {
    /// An enabled timeline with the default capacity.
    pub fn new() -> Self {
        Timeline::with_capacity(DEFAULT_TIMELINE_CAPACITY)
    }

    /// An enabled timeline holding at most `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        Timeline { capacity, events: VecDeque::new(), dropped: 0 }
    }

    /// A disabled timeline: recording is a no-op and nothing allocates.
    pub fn disabled() -> Self {
        Timeline::with_capacity(0)
    }

    /// Whether this timeline records anything at all.
    pub fn is_enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Records an instant event; the oldest event drops once full.
    pub fn record_event(&mut self, name: &str, at: SimTime, track: &str, detail: String) {
        if self.capacity == 0 {
            return;
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(TimelineEvent {
            at,
            name: name.to_owned(),
            track: track.to_owned(),
            detail,
        });
    }

    /// Appends every event of `other` (oldest dropping as needed) and sums
    /// drop counts. The capacity (and enabled state) of `self` is adopted
    /// from `other` if `self` is disabled, so merging shard timelines into
    /// a fresh accumulator keeps them.
    pub fn merge(&mut self, other: &Timeline) {
        if self.capacity < other.capacity {
            self.capacity = other.capacity;
        }
        self.dropped += other.dropped;
        for event in &other.events {
            if self.capacity == 0 {
                return;
            }
            if self.events.len() == self.capacity {
                self.events.pop_front();
                self.dropped += 1;
            }
            self.events.push_back(event.clone());
        }
    }

    /// Recorded events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TimelineEvent> {
        self.events.iter()
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events evicted by the ring bound since creation.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Renders Chrome trace-event JSON (the Perfetto / `chrome://tracing`
    /// format): one process, one named thread per track, one instant event
    /// per record, `ts` in virtual-time microseconds.
    ///
    /// Events are sorted by `(at, track, name, detail)` and threads are
    /// numbered by sorted track name, so the bytes do not depend on the
    /// order shard timelines were merged in.
    pub fn to_chrome_trace(&self) -> String {
        let mut sorted: Vec<&TimelineEvent> = self.events.iter().collect();
        sorted.sort_by(|a, b| {
            (a.at, &a.track, &a.name, &a.detail).cmp(&(b.at, &b.track, &b.name, &b.detail))
        });
        let tracks: BTreeSet<&str> = sorted.iter().map(|e| e.track.as_str()).collect();
        let tid_of = |track: &str| tracks.range(..=track).count();

        let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        let mut first = true;
        for (tid, track) in tracks.iter().enumerate() {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{},\
                 \"args\":{{\"name\":{}}}}}",
                tid + 1,
                json_str(track)
            );
        }
        for event in sorted {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "{{\"name\":{},\"cat\":\"spamward\",\"ph\":\"i\",\"ts\":{},\"pid\":1,\
                 \"tid\":{},\"s\":\"t\",\"args\":{{\"detail\":{}}}}}",
                json_str(&event.name),
                event.at.as_micros(),
                tid_of(&event.track),
                json_str(&event.detail)
            );
        }
        out.push_str("]}");
        out
    }
}

impl Default for Timeline {
    fn default() -> Self {
        Timeline::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spamward_sim::SimDuration;

    fn t(secs: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(secs)
    }

    #[test]
    fn disabled_timeline_records_nothing() {
        let mut tl = Timeline::disabled();
        tl.record_event("timeline.emit", t(1), "msg-1", String::new());
        assert!(!tl.is_enabled());
        assert!(tl.is_empty());
        assert_eq!(tl.dropped(), 0);
    }

    #[test]
    fn ring_bound_drops_oldest() {
        let mut tl = Timeline::with_capacity(2);
        tl.record_event("timeline.emit", t(1), "msg-1", String::new());
        tl.record_event("timeline.retry", t(2), "msg-1", String::new());
        tl.record_event("timeline.deliver", t(3), "msg-1", String::new());
        assert_eq!(tl.len(), 2);
        assert_eq!(tl.dropped(), 1);
        assert_eq!(tl.events().next().map(|e| e.name.as_str()), Some("timeline.retry"));
    }

    #[test]
    fn chrome_trace_bytes_ignore_merge_order() {
        let mut a = Timeline::new();
        a.record_event("timeline.emit", t(1), "msg-a", "first".to_owned());
        let mut b = Timeline::new();
        b.record_event("timeline.emit", t(1), "msg-b", "first".to_owned());
        b.record_event("timeline.deliver", t(9), "msg-b", "done".to_owned());

        let mut ab = Timeline::new();
        ab.merge(&a);
        ab.merge(&b);
        let mut ba = Timeline::new();
        ba.merge(&b);
        ba.merge(&a);
        assert_eq!(ab.to_chrome_trace(), ba.to_chrome_trace());
    }

    #[test]
    fn chrome_trace_shape_is_pinned() {
        let mut tl = Timeline::new();
        tl.record_event("timeline.emit", t(1), "msg-1", "first attempt".to_owned());
        assert_eq!(
            tl.to_chrome_trace(),
            "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\
             {\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":1,\
             \"args\":{\"name\":\"msg-1\"}},\
             {\"name\":\"timeline.emit\",\"cat\":\"spamward\",\"ph\":\"i\",\"ts\":1000000,\
             \"pid\":1,\"tid\":1,\"s\":\"t\",\"args\":{\"detail\":\"first attempt\"}}]}"
        );
        assert_eq!(
            Timeline::disabled().to_chrome_trace(),
            "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[]}"
        );
    }
}
