//! Lightweight timed spans over virtual time.
//!
//! A [`Span`] brackets a region of interest (one wire exchange, one store
//! lookup) between two explicit [`SimTime`] readings — or a [`Clock`], which
//! on sim paths is always the injected manual clock, never wall time (D1).
//! Durations accumulate into [`SpanStats`], a plain struct that the owning
//! component exports via [`Registry::record_span`](crate::Registry::record_span).

use spamward_sim::{Clock, SimDuration, SimTime};

/// An open span: remembers when the region of interest started.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    started: SimTime,
}

impl Span {
    /// Opens a span at the given virtual instant.
    #[inline]
    pub fn enter(now: SimTime) -> Self {
        Span { started: now }
    }

    /// Opens a span by reading the injected clock.
    #[inline]
    pub fn enter_at(clock: &dyn Clock) -> Self {
        Span { started: clock.now() }
    }

    /// When the span was opened.
    pub fn started(&self) -> SimTime {
        self.started
    }

    /// Virtual time elapsed since the span opened, saturating at zero.
    #[inline]
    pub fn elapsed(&self, now: SimTime) -> SimDuration {
        now.checked_elapsed_since(self.started).unwrap_or(SimDuration::ZERO)
    }

    /// Closes the span, returning its duration.
    #[inline]
    pub fn exit(self, now: SimTime) -> SimDuration {
        self.elapsed(now)
    }

    /// Closes the span against the injected clock.
    #[inline]
    pub fn exit_at(self, clock: &dyn Clock) -> SimDuration {
        self.elapsed(clock.now())
    }
}

/// Accumulated statistics for a named span: how many times the region ran,
/// total and maximum virtual time spent inside it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanStats {
    count: u64,
    total_us: u64,
    max_us: u64,
}

impl SpanStats {
    /// Empty stats.
    pub const fn new() -> Self {
        SpanStats { count: 0, total_us: 0, max_us: 0 }
    }

    /// Records one completed span duration.
    #[inline]
    pub fn record(&mut self, d: SimDuration) {
        let us = d.as_micros();
        self.count += 1;
        self.total_us = self.total_us.saturating_add(us);
        self.max_us = self.max_us.max(us);
    }

    /// Closes `span` at `now` and records its duration in one step.
    #[inline]
    pub fn exit(&mut self, span: Span, now: SimTime) {
        self.record(span.exit(now));
    }

    /// How many spans were recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Total virtual microseconds across all recorded spans.
    pub fn total_us(&self) -> u64 {
        self.total_us
    }

    /// The longest recorded span, in virtual microseconds.
    pub fn max_us(&self) -> u64 {
        self.max_us
    }

    /// Folds another accumulator into this one.
    pub fn merge(&mut self, other: &SpanStats) {
        self.count += other.count;
        self.total_us = self.total_us.saturating_add(other.total_us);
        self.max_us = self.max_us.max(other.max_us);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spamward_sim::ManualClock;

    #[test]
    fn span_measures_virtual_time() {
        let t0 = SimTime::from_micros(100);
        let span = Span::enter(t0);
        assert_eq!(span.started(), t0);
        assert_eq!(span.elapsed(t0 + SimDuration::from_micros(40)), SimDuration::from_micros(40));
        // A clock that went "backwards" (caller bug) saturates instead of panicking.
        assert_eq!(span.exit(SimTime::ZERO), SimDuration::ZERO);
    }

    #[test]
    fn span_reads_injected_clock() {
        let clock = ManualClock::at(SimTime::from_micros(5));
        let span = Span::enter_at(&clock);
        clock.set(SimTime::from_micros(25));
        assert_eq!(span.exit_at(&clock), SimDuration::from_micros(20));
    }

    #[test]
    fn span_stats_accumulate_and_merge() {
        let mut a = SpanStats::new();
        a.record(SimDuration::from_micros(10));
        a.exit(Span::enter(SimTime::ZERO), SimTime::from_micros(30));
        assert_eq!(a.count(), 2);
        assert_eq!(a.total_us(), 40);
        assert_eq!(a.max_us(), 30);

        let mut b = SpanStats::new();
        b.record(SimDuration::from_micros(100));
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.total_us(), 140);
        assert_eq!(a.max_us(), 100);
    }
}
