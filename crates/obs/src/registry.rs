//! The named metric registry and its canonical renderings.
//!
//! A [`Registry`] is a snapshot container: components export their plain
//! instrument fields into it at collection time, binding names once (the O1
//! lint keeps those name literals in `metrics.rs` modules). The backing
//! store is a `BTreeMap` so every rendering — text, CSV, JSON — is a pure,
//! byte-stable function of the recorded values (the D3 rule).

use crate::metric::Histogram;
use crate::span::SpanStats;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One recorded metric value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricValue {
    /// A monotone event count.
    Counter(u64),
    /// A signed level (queue depth, store size).
    Gauge(i64),
    /// A fixed-bucket distribution.
    Histogram(Histogram),
}

/// A deterministic, name-ordered snapshot of metric values.
///
/// Recording the same name twice *merges*: counters and histogram buckets
/// add, gauges sum (so per-world levels aggregate across worlds). Merging
/// two registries merges every entry, which is how experiment runs fold
/// per-sample world snapshots into one report section.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Registry {
    metrics: BTreeMap<String, MetricValue>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Records (or adds to) a counter.
    pub fn record_counter(&mut self, name: &str, value: u64) {
        match self.metrics.get_mut(name) {
            Some(MetricValue::Counter(v)) => *v += value,
            Some(other) => *other = MetricValue::Counter(value),
            None => {
                self.metrics.insert(name.to_owned(), MetricValue::Counter(value));
            }
        }
    }

    /// Records (or sums into) a gauge level.
    pub fn record_gauge(&mut self, name: &str, value: i64) {
        match self.metrics.get_mut(name) {
            Some(MetricValue::Gauge(v)) => *v += value,
            Some(other) => *other = MetricValue::Gauge(value),
            None => {
                self.metrics.insert(name.to_owned(), MetricValue::Gauge(value));
            }
        }
    }

    /// Records (or merges into) a histogram snapshot.
    pub fn record_histogram(&mut self, name: &str, hist: &Histogram) {
        match self.metrics.get_mut(name) {
            Some(MetricValue::Histogram(h)) => h.merge(hist),
            Some(other) => *other = MetricValue::Histogram(hist.clone()),
            None => {
                self.metrics.insert(name.to_owned(), MetricValue::Histogram(hist.clone()));
            }
        }
    }

    /// Records accumulated span statistics as `<name>.count` /
    /// `<name>.total_us` counters (the mean is derivable; the max does not
    /// merge additively so it is not exported).
    pub fn record_span(&mut self, name: &str, stats: &SpanStats) {
        self.record_counter(&format!("{name}.count"), stats.count());
        self.record_counter(&format!("{name}.total_us"), stats.total_us());
    }

    /// Folds every entry of `other` into this registry.
    pub fn merge(&mut self, other: &Registry) {
        for (name, value) in &other.metrics {
            match value {
                MetricValue::Counter(v) => self.record_counter(name, *v),
                MetricValue::Gauge(v) => self.record_gauge(name, *v),
                MetricValue::Histogram(h) => self.record_histogram(name, h),
            }
        }
    }

    /// Looks up a metric by exact name.
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.metrics.get(name)
    }

    /// The value of a counter, if `name` is a recorded counter.
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.metrics.get(name) {
            Some(MetricValue::Counter(v)) => Some(*v),
            _ => None,
        }
    }

    /// The level of a gauge, if `name` is a recorded gauge.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        match self.metrics.get(name) {
            Some(MetricValue::Gauge(v)) => Some(*v),
            _ => None,
        }
    }

    /// Iterates entries in canonical (name) order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &MetricValue)> {
        self.metrics.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of recorded metrics.
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// Renders `name value` lines (histograms as one `count=/sum=/le...`
    /// line), in canonical order.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.metrics {
            match value {
                MetricValue::Counter(v) => {
                    let _ = writeln!(out, "{name} {v}");
                }
                MetricValue::Gauge(v) => {
                    let _ = writeln!(out, "{name} {v}");
                }
                MetricValue::Histogram(h) => {
                    let _ = write!(out, "{name} count={} sum={}", h.count(), h.sum());
                    for (bound, n) in h.bounds().iter().zip(h.counts()) {
                        let _ = write!(out, " le{bound}={n}");
                    }
                    if let Some(overflow) = h.counts().last() {
                        let _ = write!(out, " le+inf={overflow}");
                    }
                    if h.count() > 0 {
                        for pct in [50u64, 90, 99] {
                            let _ = write!(out, " p{pct}={}", quantile_cell(h, pct));
                        }
                    }
                    out.push('\n');
                }
            }
        }
        out
    }

    /// Renders `metric,kind,value` CSV rows (header included); histogram
    /// buckets become one `<name>{le=<bound>}` row each.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("metric,kind,value\n");
        for (name, value) in &self.metrics {
            match value {
                MetricValue::Counter(v) => {
                    let _ = writeln!(out, "{name},counter,{v}");
                }
                MetricValue::Gauge(v) => {
                    let _ = writeln!(out, "{name},gauge,{v}");
                }
                MetricValue::Histogram(h) => {
                    let _ = writeln!(out, "{name},histogram_count,{}", h.count());
                    let _ = writeln!(out, "{name},histogram_sum,{}", h.sum());
                    for (bound, n) in h.bounds().iter().zip(h.counts()) {
                        let _ = writeln!(out, "{name}{{le={bound}}},histogram_bucket,{n}");
                    }
                    if let Some(overflow) = h.counts().last() {
                        let _ = writeln!(out, "{name}{{le=+inf}},histogram_bucket,{overflow}");
                    }
                }
            }
        }
        out
    }

    /// Renders the canonical JSON array form embedded in report JSON:
    /// `[{"name":...,"kind":...,...},...]` in name order.
    pub fn to_json(&self) -> String {
        let mut out = String::from("[");
        for (i, (name, value)) in self.metrics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            match value {
                MetricValue::Counter(v) => {
                    let _ = write!(
                        out,
                        "{{\"name\":{},\"kind\":\"counter\",\"value\":{v}}}",
                        json_str(name)
                    );
                }
                MetricValue::Gauge(v) => {
                    let _ = write!(
                        out,
                        "{{\"name\":{},\"kind\":\"gauge\",\"value\":{v}}}",
                        json_str(name)
                    );
                }
                MetricValue::Histogram(h) => {
                    let _ = write!(
                        out,
                        "{{\"name\":{},\"kind\":\"histogram\",\"count\":{},\"sum\":{},\"buckets\":[",
                        json_str(name),
                        h.count(),
                        h.sum()
                    );
                    for (j, (bound, n)) in h.bounds().iter().zip(h.counts()).enumerate() {
                        if j > 0 {
                            out.push(',');
                        }
                        let _ = write!(out, "{{\"le\":{bound},\"count\":{n}}}");
                    }
                    if let Some(overflow) = h.counts().last() {
                        if !h.bounds().is_empty() {
                            out.push(',');
                        }
                        let _ = write!(out, "{{\"le\":null,\"count\":{overflow}}}");
                    }
                    out.push_str("]}");
                }
            }
        }
        out.push(']');
        out
    }
}

/// The upper bucket bound covering the `pct`-th percentile observation, as
/// a text cell: the smallest bound whose cumulative count reaches the
/// percentile rank, or `+inf` when it falls in the overflow bucket. All
/// integral arithmetic — the cell is a bucket *bound*, not an
/// interpolation, so it renders identically on every platform.
fn quantile_cell(h: &Histogram, pct: u64) -> String {
    let rank = (u128::from(h.count()) * u128::from(pct)).div_ceil(100).max(1);
    let mut cumulative = 0u128;
    for (bound, n) in h.bounds().iter().zip(h.counts()) {
        cumulative += u128::from(*n);
        if cumulative >= rank {
            return bound.to_string();
        }
    }
    "+inf".to_owned()
}

/// Escapes a metric name as a JSON string literal (same canonical escaping
/// as `spamward_analysis::json::json_string`; duplicated to keep this crate
/// dependency-light).
pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::SpanStats;
    use spamward_sim::SimDuration;

    fn sample() -> Registry {
        let mut reg = Registry::new();
        reg.record_counter("smtp.command.total", 12);
        reg.record_gauge("greylist.store.size", 3);
        let mut h = Histogram::new(&[10, 100]);
        h.observe(5);
        h.observe(500);
        reg.record_histogram("mta.retry.delay_s", &h);
        reg
    }

    #[test]
    fn recording_same_name_merges() {
        let mut reg = sample();
        reg.record_counter("smtp.command.total", 8);
        reg.record_gauge("greylist.store.size", -1);
        let mut h = Histogram::new(&[10, 100]);
        h.observe(50);
        reg.record_histogram("mta.retry.delay_s", &h);

        assert_eq!(reg.counter("smtp.command.total"), Some(20));
        assert_eq!(reg.gauge("greylist.store.size"), Some(2));
        match reg.get("mta.retry.delay_s") {
            Some(MetricValue::Histogram(h)) => assert_eq!(h.count(), 3),
            other => panic!("expected histogram, got {other:?}"),
        }
    }

    #[test]
    fn merge_folds_every_kind() {
        let mut a = sample();
        let b = sample();
        a.merge(&b);
        assert_eq!(a.counter("smtp.command.total"), Some(24));
        assert_eq!(a.gauge("greylist.store.size"), Some(6));
        match a.get("mta.retry.delay_s") {
            Some(MetricValue::Histogram(h)) => {
                assert_eq!(h.count(), 4);
                assert_eq!(h.bucket(10), Some(2));
            }
            other => panic!("expected histogram, got {other:?}"),
        }
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn span_export_uses_derived_counters() {
        let mut stats = SpanStats::new();
        stats.record(SimDuration::from_micros(7));
        stats.record(SimDuration::from_micros(9));
        let mut reg = Registry::new();
        reg.record_span("smtp.wire.exchange", &stats);
        assert_eq!(reg.counter("smtp.wire.exchange.count"), Some(2));
        assert_eq!(reg.counter("smtp.wire.exchange.total_us"), Some(16));
    }

    #[test]
    fn renderings_are_canonical() {
        let reg = sample();
        assert_eq!(
            reg.to_text(),
            "greylist.store.size 3\n\
             mta.retry.delay_s count=2 sum=505 le10=1 le100=0 le+inf=1 p50=10 p90=+inf p99=+inf\n\
             smtp.command.total 12\n"
        );
        assert_eq!(
            reg.to_csv(),
            "metric,kind,value\n\
             greylist.store.size,gauge,3\n\
             mta.retry.delay_s,histogram_count,2\n\
             mta.retry.delay_s,histogram_sum,505\n\
             mta.retry.delay_s{le=10},histogram_bucket,1\n\
             mta.retry.delay_s{le=100},histogram_bucket,0\n\
             mta.retry.delay_s{le=+inf},histogram_bucket,1\n\
             smtp.command.total,counter,12\n"
        );
        assert_eq!(
            reg.to_json(),
            "[{\"name\":\"greylist.store.size\",\"kind\":\"gauge\",\"value\":3},\
             {\"name\":\"mta.retry.delay_s\",\"kind\":\"histogram\",\"count\":2,\"sum\":505,\
             \"buckets\":[{\"le\":10,\"count\":1},{\"le\":100,\"count\":0},\
             {\"le\":null,\"count\":1}]},\
             {\"name\":\"smtp.command.total\",\"kind\":\"counter\",\"value\":12}]"
        );
        // Rendering twice yields identical bytes.
        assert_eq!(reg.to_json(), reg.clone().to_json());
        assert_eq!(Registry::new().to_json(), "[]");
    }

    #[test]
    fn histogram_text_pins_the_quantile_summary_format() {
        // 10 observations: 5 land in le10, 3 more in le100, 2 overflow.
        let mut h = Histogram::new(&[10, 100]);
        for _ in 0..5 {
            h.observe(1);
        }
        for _ in 0..3 {
            h.observe(50);
        }
        h.observe(1_000);
        h.observe(2_000);
        let mut reg = Registry::new();
        reg.record_histogram("mta.retry.delay_s", &h);
        // p50 rank 5 → le10; p90 rank 9 → le+inf; p99 rank 10 → le+inf.
        assert_eq!(
            reg.to_text(),
            "mta.retry.delay_s count=10 sum=3155 le10=5 le100=3 le+inf=2 p50=10 p90=+inf p99=+inf\n"
        );

        // An empty histogram has no quantiles to summarise.
        let empty = Histogram::new(&[10, 100]);
        let mut reg = Registry::new();
        reg.record_histogram("mta.retry.delay_s", &empty);
        assert_eq!(reg.to_text(), "mta.retry.delay_s count=0 sum=0 le10=0 le100=0 le+inf=0\n");
    }

    #[test]
    fn names_escape_like_report_json() {
        let mut reg = Registry::new();
        reg.record_counter("weird\"name\\", 1);
        assert!(reg.to_json().contains("\"weird\\\"name\\\\\""));
    }
}
