//! Deterministic metrics and span instrumentation for the spamward stack.
//!
//! The paper's conclusions are aggregate counters over protocol events —
//! connections per MX, retries per schedule bucket, greylist defers vs.
//! passes, delivery-delay distributions (§IV–§VI of Pagani et al.). This
//! crate gives those counters a first-class, *deterministic* home:
//!
//! - **Zero ambient state.** There is no global registry, no thread-local,
//!   no lazy static. Components own plain [`Counter`]/[`Gauge`]/
//!   [`Histogram`]/[`SpanStats`] fields (O(1) unsynchronised increments on
//!   hot paths) and export them into a caller-owned [`Registry`] at
//!   collection time. Two worlds never share metric state, so parallel
//!   `repro --jobs N` runs stay byte-identical to serial runs.
//! - **Deterministic snapshots.** [`Registry`] is backed by a `BTreeMap`
//!   (the D3 lint rule), so its text/CSV/JSON renderings are a pure
//!   function of the recorded values — no hash-iteration order, no
//!   timestamps.
//! - **Virtual time only.** [`Span`]s are timed against the injected
//!   [`SimTime`]/[`Clock`](spamward_sim::Clock) substrate, never
//!   `std::time::Instant` (the D1 lint rule), so span durations are part
//!   of the reproducible output rather than noise.
//! - **Time as data.** [`TimeSeries`] holds sampled counter/gauge points in
//!   virtual time with an additive, order-insensitive merge (shard-width
//!   invariant byte renderings), and [`Timeline`] is a bounded flight
//!   recorder of message-lifecycle events exporting Chrome trace-event
//!   JSON. [`to_openmetrics`] renders any [`Registry`] in the OpenMetrics
//!   exposition format for standard tooling.
//!
//! Metric names follow the `crate.subsystem.event` convention and are bound
//! in each crate's `metrics.rs` constants module (the O1 lint rule keeps
//! literals out of protocol code), e.g. `greylist.check.deferred.new` or
//! `dns.query.mx`.
//!
//! ```
//! use spamward_obs::{Registry, Span, SpanStats};
//! use spamward_sim::{SimDuration, SimTime};
//!
//! // A component counts events in plain fields...
//! let mut lookups: u64 = 0;
//! let mut lookup_time = SpanStats::default();
//! let t0 = SimTime::ZERO;
//! let span = Span::enter(t0);
//! lookups += 1;
//! lookup_time.record(span.exit(t0 + SimDuration::from_micros(12)));
//!
//! // ...and a collector binds names once, at snapshot time.
//! let mut reg = Registry::new();
//! reg.record_counter("store.lookup.total", lookups);
//! reg.record_span("store.lookup", &lookup_time);
//! assert_eq!(reg.counter("store.lookup.total"), Some(1));
//! assert!(reg.to_text().contains("store.lookup.total_us 12"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod export;
mod metric;
mod registry;
mod span;
mod timeline;
mod timeseries;

pub use export::to_openmetrics;
pub use metric::{Counter, Gauge, Histogram};
pub use registry::{MetricValue, Registry};
pub use span::{Span, SpanStats};
pub use timeline::{Timeline, TimelineEvent, DEFAULT_TIMELINE_CAPACITY};
pub use timeseries::TimeSeries;
