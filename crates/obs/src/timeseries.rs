//! Deterministic time series sampled in virtual time.
//!
//! A [`TimeSeries`] holds named series of `(SimTime, i64)` points. It is the
//! temporal companion to [`Registry`](crate::Registry): where a registry is
//! an end-of-run snapshot, a time series records how a counter or gauge
//! evolved over the simulated run — greylist defers per sampling window,
//! queue high-water over a campaign, per-shard engine events.
//!
//! The container is built for sharded merging: points recorded at the same
//! `(series, time)` key *add*, and the backing store is a nested `BTreeMap`,
//! so merging per-shard series in any order yields byte-identical CSV/JSON
//! renderings. That is what lets `repro --timeseries` promise identical
//! files for `--shards 1` and `--shards 8`.

use crate::registry::json_str;
use spamward_sim::SimTime;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Named series of `(SimTime, i64)` sample points with additive,
/// order-insensitive merge and canonical renderings.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TimeSeries {
    points: BTreeMap<String, BTreeMap<SimTime, i64>>,
}

impl TimeSeries {
    /// An empty time series.
    pub fn new() -> Self {
        TimeSeries::default()
    }

    /// Records (or adds to) the point of `series` at virtual time `at`.
    ///
    /// Addition at the same key is what makes [`merge`](TimeSeries::merge)
    /// commutative and associative: shards sampling the same virtual
    /// instant fold into one total regardless of merge order.
    pub fn record_point(&mut self, series: &str, at: SimTime, value: i64) {
        let entry = self.points.entry(series.to_owned()).or_default().entry(at).or_insert(0);
        *entry += value;
    }

    /// Folds every point of `other` into this series.
    pub fn merge(&mut self, other: &TimeSeries) {
        for (series, points) in &other.points {
            let dst = self.points.entry(series.clone()).or_default();
            for (at, value) in points {
                *dst.entry(*at).or_insert(0) += value;
            }
        }
    }

    /// The recorded value of `series` at exactly `at`, if any.
    pub fn get(&self, series: &str, at: SimTime) -> Option<i64> {
        self.points.get(series).and_then(|points| points.get(&at)).copied()
    }

    /// Number of distinct named series.
    pub fn series_len(&self) -> usize {
        self.points.len()
    }

    /// Total number of points across all series.
    pub fn len(&self) -> usize {
        self.points.values().map(BTreeMap::len).sum()
    }

    /// Whether no point has been recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Iterates `(series, time, value)` in canonical (name, then time)
    /// order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, SimTime, i64)> {
        self.points
            .iter()
            .flat_map(|(name, points)| points.iter().map(move |(at, v)| (name.as_str(), *at, *v)))
    }

    /// Renders `series,t_us,value` CSV rows (header included) in canonical
    /// order. Times are integral microseconds so the bytes are exact.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("series,t_us,value\n");
        for (series, at, value) in self.iter() {
            let _ = writeln!(out, "{series},{},{value}", at.as_micros());
        }
        out
    }

    /// Renders the canonical JSON array form:
    /// `[{"series":...,"points":[[t_us,value],...]},...]` in name order.
    pub fn to_json(&self) -> String {
        let mut out = String::from("[");
        for (i, (series, points)) in self.points.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"series\":{},\"points\":[", json_str(series));
            for (j, (at, value)) in points.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "[{},{value}]", at.as_micros());
            }
            out.push_str("]}");
        }
        out.push(']');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spamward_sim::SimDuration;

    fn t(secs: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(secs)
    }

    #[test]
    fn points_at_the_same_key_add() {
        let mut ts = TimeSeries::new();
        ts.record_point("obs.sample.test", t(60), 3);
        ts.record_point("obs.sample.test", t(60), 4);
        ts.record_point("obs.sample.test", t(120), 1);
        assert_eq!(ts.get("obs.sample.test", t(60)), Some(7));
        assert_eq!(ts.get("obs.sample.test", t(120)), Some(1));
        assert_eq!(ts.series_len(), 1);
        assert_eq!(ts.len(), 2);
    }

    #[test]
    fn merge_is_order_insensitive() {
        let mut a = TimeSeries::new();
        a.record_point("obs.sample.a", t(0), 1);
        a.record_point("obs.sample.b", t(60), 5);
        let mut b = TimeSeries::new();
        b.record_point("obs.sample.b", t(60), 2);
        b.record_point("obs.sample.c", t(0), -3);

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.to_csv(), ba.to_csv());
        assert_eq!(ab.get("obs.sample.b", t(60)), Some(7));
    }

    #[test]
    fn renderings_are_canonical() {
        let mut ts = TimeSeries::new();
        ts.record_point("obs.sample.b", t(60), 2);
        ts.record_point("obs.sample.a", t(120), -1);
        ts.record_point("obs.sample.a", t(60), 4);
        assert_eq!(
            ts.to_csv(),
            "series,t_us,value\n\
             obs.sample.a,60000000,4\n\
             obs.sample.a,120000000,-1\n\
             obs.sample.b,60000000,2\n"
        );
        assert_eq!(
            ts.to_json(),
            "[{\"series\":\"obs.sample.a\",\"points\":[[60000000,4],[120000000,-1]]},\
             {\"series\":\"obs.sample.b\",\"points\":[[60000000,2]]}]"
        );
        assert_eq!(TimeSeries::new().to_json(), "[]");
        assert!(TimeSeries::new().is_empty());
    }
}
