//! OpenMetrics text rendering of a [`Registry`].
//!
//! The simulator's canonical renderings (`Registry::to_text`/`to_csv`/
//! `to_json`) are internal formats pinned byte-for-byte by golden tests.
//! This module renders the *interchange* format instead: the OpenMetrics
//! text exposition understood by Prometheus scrapers, so the registry of a
//! run — and, later, of the real SMTP front end the roadmap plans — can be
//! pasted straight into standard tooling.
//!
//! The rendering is as deterministic as every other one in this crate:
//! metric order is registry (name) order, names are sanitised with a pure
//! character map, and all arithmetic is integral.

use crate::registry::{MetricValue, Registry};
use std::fmt::Write as _;

/// Renders `reg` in OpenMetrics text exposition format, terminated by the
/// mandatory `# EOF` marker.
///
/// Dotted registry names become underscore-joined OpenMetrics names
/// (`smtp.command.total` → `smtp_command_total`); counters gain the
/// conventional `_total` suffix, and histograms render cumulative
/// `_bucket{le=...}` rows plus `_count`/`_sum`.
pub fn to_openmetrics(reg: &Registry) -> String {
    let mut out = String::new();
    for (name, value) in reg.iter() {
        let om = sanitize(name);
        match value {
            MetricValue::Counter(v) => {
                // OpenMetrics counter families carry the `_total` suffix on
                // the sample, not the family name.
                let family = om.strip_suffix("_total").unwrap_or(&om);
                let _ = writeln!(out, "# TYPE {family} counter");
                let _ = writeln!(out, "{family}_total {v}");
            }
            MetricValue::Gauge(v) => {
                let _ = writeln!(out, "# TYPE {om} gauge");
                let _ = writeln!(out, "{om} {v}");
            }
            MetricValue::Histogram(h) => {
                let _ = writeln!(out, "# TYPE {om} histogram");
                let mut cumulative = 0u64;
                for (bound, n) in h.bounds().iter().zip(h.counts()) {
                    cumulative += *n;
                    let _ = writeln!(out, "{om}_bucket{{le=\"{bound}\"}} {cumulative}");
                }
                let _ = writeln!(out, "{om}_bucket{{le=\"+Inf\"}} {}", h.count());
                let _ = writeln!(out, "{om}_count {}", h.count());
                let _ = writeln!(out, "{om}_sum {}", h.sum());
            }
        }
    }
    out.push_str("# EOF\n");
    out
}

/// Maps a dotted registry name onto the OpenMetrics name charset
/// (`[a-zA-Z0-9_]`, not starting with a digit).
fn sanitize(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        if c.is_ascii_alphanumeric() && !(i == 0 && c.is_ascii_digit()) {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric::Histogram;

    #[test]
    fn exposition_format_is_pinned() {
        let mut reg = Registry::new();
        reg.record_counter("smtp.command.total", 12);
        reg.record_gauge("greylist.store.size", 3);
        let mut h = Histogram::new(&[10, 100]);
        h.observe(5);
        h.observe(500);
        reg.record_histogram("mta.retry.delay_s", &h);

        assert_eq!(
            to_openmetrics(&reg),
            "# TYPE greylist_store_size gauge\n\
             greylist_store_size 3\n\
             # TYPE mta_retry_delay_s histogram\n\
             mta_retry_delay_s_bucket{le=\"10\"} 1\n\
             mta_retry_delay_s_bucket{le=\"100\"} 1\n\
             mta_retry_delay_s_bucket{le=\"+Inf\"} 2\n\
             mta_retry_delay_s_count 2\n\
             mta_retry_delay_s_sum 505\n\
             # TYPE smtp_command counter\n\
             smtp_command_total 12\n\
             # EOF\n"
        );
    }

    #[test]
    fn empty_registry_renders_just_the_eof_marker() {
        assert_eq!(to_openmetrics(&Registry::new()), "# EOF\n");
    }

    #[test]
    fn names_outside_the_charset_are_mapped_to_underscores() {
        let mut reg = Registry::new();
        reg.record_counter("9sim.engine.shard.0.events", 1);
        assert!(to_openmetrics(&reg).contains("_sim_engine_shard_0_events_total 1"));
    }
}
