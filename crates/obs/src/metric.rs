//! The three primitive metric instruments: counter, gauge, histogram.
//!
//! All three are plain owned values — incrementing is a field update, not a
//! map lookup, so instrumentation on hot paths (e.g. `smtp::wire` parsing)
//! costs a handful of nanoseconds. Names are attached only when a snapshot
//! is exported into a [`Registry`](crate::Registry).

/// A monotonically increasing event count.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// A counter starting at zero.
    pub const fn new() -> Self {
        Counter(0)
    }

    /// Increments by one.
    #[inline]
    pub fn inc(&mut self) {
        self.0 += 1;
    }

    /// Increments by `n`.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// The current count.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0
    }
}

/// A signed level that can go up and down (queue depth, store size).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Gauge(i64);

impl Gauge {
    /// A gauge starting at zero.
    pub const fn new() -> Self {
        Gauge(0)
    }

    /// Sets the level outright.
    #[inline]
    pub fn set(&mut self, v: i64) {
        self.0 = v;
    }

    /// Adjusts the level by `delta` (may be negative).
    #[inline]
    pub fn adjust(&mut self, delta: i64) {
        self.0 += delta;
    }

    /// The current level.
    #[inline]
    pub fn get(&self) -> i64 {
        self.0
    }
}

/// A fixed-bucket histogram over `u64` observations.
///
/// Bucket upper bounds are chosen at construction and never change, so two
/// histograms built from the same bounds merge bucket-by-bucket and their
/// snapshots are byte-stable. Observations above the last bound land in an
/// implicit overflow (`+inf`) bucket.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// Inclusive upper bounds, strictly increasing.
    bounds: Vec<u64>,
    /// One count per bound, plus the trailing overflow bucket.
    counts: Vec<u64>,
    total: u64,
    sum: u64,
}

impl Histogram {
    /// A histogram with the given inclusive upper bounds.
    ///
    /// Bounds are sorted and deduplicated defensively so construction never
    /// panics; an empty bound list yields a single overflow bucket.
    pub fn new(bounds: &[u64]) -> Self {
        let mut bounds = bounds.to_vec();
        bounds.sort_unstable();
        bounds.dedup();
        let counts = vec![0; bounds.len() + 1];
        Histogram { bounds, counts, total: 0, sum: 0 }
    }

    /// Records one observation.
    #[inline]
    pub fn observe(&mut self, v: u64) {
        let idx = self.bounds.partition_point(|&b| b < v);
        self.counts[idx] += 1;
        self.total += 1;
        self.sum = self.sum.saturating_add(v);
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Sum of all observations (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// The configured inclusive upper bounds (overflow bucket excluded).
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// Per-bucket counts; the last entry is the overflow bucket.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// The count in the bucket whose inclusive upper bound is `bound`.
    pub fn bucket(&self, bound: u64) -> Option<u64> {
        let idx = self.bounds.iter().position(|&b| b == bound)?;
        Some(self.counts[idx])
    }

    /// Folds another histogram into this one.
    ///
    /// Same-bounds histograms merge bucket-by-bucket. If the bounds differ
    /// (a collector bug, not a runtime condition), the observation count and
    /// sum still merge and the other side's observations land in the
    /// overflow bucket so no event is silently lost.
    pub fn merge(&mut self, other: &Histogram) {
        if self.bounds == other.bounds {
            for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
                *mine += theirs;
            }
        } else if let Some(last) = self.counts.last_mut() {
            *last += other.total;
        }
        self.total += other.total;
        self.sum = self.sum.saturating_add(other.sum);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let mut c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);

        let mut g = Gauge::new();
        g.set(7);
        g.adjust(-3);
        assert_eq!(g.get(), 4);
    }

    #[test]
    fn histogram_buckets_inclusively() {
        let mut h = Histogram::new(&[10, 100]);
        for v in [0, 10, 11, 100, 101, 5000] {
            h.observe(v);
        }
        assert_eq!(h.bucket(10), Some(2), "0 and 10 fall in the <=10 bucket");
        assert_eq!(h.bucket(100), Some(2), "11 and 100 fall in the <=100 bucket");
        assert_eq!(h.counts().last(), Some(&2), "overflow holds 101 and 5000");
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 5222);
    }

    #[test]
    fn histogram_bounds_are_sanitised() {
        let h = Histogram::new(&[100, 10, 10]);
        assert_eq!(h.bounds(), &[10, 100]);
        let empty = Histogram::new(&[]);
        assert_eq!(empty.counts().len(), 1, "just the overflow bucket");
    }

    #[test]
    fn histogram_merge_same_and_different_bounds() {
        let mut a = Histogram::new(&[10]);
        a.observe(1);
        let mut b = Histogram::new(&[10]);
        b.observe(99);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.bucket(10), Some(1));
        assert_eq!(a.counts().last(), Some(&1));

        let mut odd = Histogram::new(&[7]);
        odd.observe(3);
        a.merge(&odd);
        assert_eq!(a.count(), 3, "mismatched bounds still merge the totals");
        assert_eq!(a.counts().last(), Some(&2), "mismatched observations go to overflow");
    }
}
