//! Property tests for the algebra the sharded experiments lean on.
//!
//! `--shards N` byte-invariance rests on two merge laws: [`Registry::merge`]
//! must be commutative and associative over same-kind metrics, and
//! [`TimeSeries::merge`] must be insensitive to the order per-shard series
//! are folded in. These properties exercise those laws over generated
//! operation soups instead of the single examples in the unit tests.
//!
//! The generated names are kind-disjoint on purpose (`prop.counter.*` vs.
//! `prop.gauge.*` vs. `prop.hist.*`, one shared bucket layout): recording a
//! name as two different kinds is a programming error — the registry
//! resolves it last-writer-wins — and the O2 lint keeps real metric names
//! unique, so the law is only claimed on the lint-clean domain.

use proptest::prelude::*;
use spamward_obs::{Histogram, Registry, TimeSeries};
use spamward_sim::{SimDuration, SimTime};

/// One shared bucket layout: histogram merge with mismatched bounds dumps
/// into overflow, so the algebra is claimed per-layout (as in real use,
/// where a metric name implies its bucket layout).
const BOUNDS: &[u64] = &[10, 100, 1_000];

/// Builds a registry from generated `(kind, name slot, value)` ops.
fn registry_from(ops: &[(u8, u8, u16)]) -> Registry {
    let mut reg = Registry::new();
    for (kind, slot, value) in ops {
        match kind {
            0 => reg.record_counter(&format!("prop.counter.{slot}"), u64::from(*value)),
            1 => reg.record_gauge(&format!("prop.gauge.{slot}"), i64::from(*value) - 300),
            _ => {
                let mut h = Histogram::new(BOUNDS);
                h.observe(u64::from(*value) * 7);
                reg.record_histogram(&format!("prop.hist.{slot}"), &h);
            }
        }
    }
    reg
}

/// Builds a time series from generated `(series slot, minute, value)` ops.
fn series_from(ops: &[(u8, u16, i16)]) -> TimeSeries {
    let mut ts = TimeSeries::new();
    for (slot, minute, value) in ops {
        let at = SimTime::ZERO + SimDuration::from_secs(u64::from(*minute) * 60);
        ts.record_point(&format!("prop.series.{slot}"), at, i64::from(*value));
    }
    ts
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// a ∪ b == b ∪ a, down to the rendered bytes.
    #[test]
    fn registry_merge_is_commutative(
        a in proptest::collection::vec((0u8..3, 0u8..4, 0u16..600), 0..12),
        b in proptest::collection::vec((0u8..3, 0u8..4, 0u16..600), 0..12),
    ) {
        let (ra, rb) = (registry_from(&a), registry_from(&b));
        let mut ab = ra.clone();
        ab.merge(&rb);
        let mut ba = rb.clone();
        ba.merge(&ra);
        prop_assert_eq!(ab.to_json(), ba.to_json());
        prop_assert_eq!(ab.to_text(), ba.to_text());
    }

    /// (a ∪ b) ∪ c == a ∪ (b ∪ c), down to the rendered bytes.
    #[test]
    fn registry_merge_is_associative(
        a in proptest::collection::vec((0u8..3, 0u8..4, 0u16..600), 0..10),
        b in proptest::collection::vec((0u8..3, 0u8..4, 0u16..600), 0..10),
        c in proptest::collection::vec((0u8..3, 0u8..4, 0u16..600), 0..10),
    ) {
        let (ra, rb, rc) = (registry_from(&a), registry_from(&b), registry_from(&c));
        let mut left = ra.clone();
        left.merge(&rb);
        left.merge(&rc);
        let mut bc = rb.clone();
        bc.merge(&rc);
        let mut right = ra.clone();
        right.merge(&bc);
        prop_assert_eq!(left.to_json(), right.to_json());
        prop_assert_eq!(left.to_csv(), right.to_csv());
    }

    /// Folding per-shard series in any order yields identical bytes — the
    /// law behind `--timeseries` shard-width invariance.
    #[test]
    fn timeseries_merge_is_order_insensitive(
        a in proptest::collection::vec((0u8..5, 0u16..30, -500i16..500), 0..16),
        b in proptest::collection::vec((0u8..5, 0u16..30, -500i16..500), 0..16),
        c in proptest::collection::vec((0u8..5, 0u16..30, -500i16..500), 0..16),
    ) {
        let (sa, sb, sc) = (series_from(&a), series_from(&b), series_from(&c));
        let mut abc = sa.clone();
        abc.merge(&sb);
        abc.merge(&sc);
        let mut cba = sc.clone();
        cba.merge(&sb);
        cba.merge(&sa);
        let mut bca = sb.clone();
        bca.merge(&sc);
        bca.merge(&sa);
        prop_assert_eq!(abc.to_csv(), cba.to_csv());
        prop_assert_eq!(abc.to_csv(), bca.to_csv());
        prop_assert_eq!(abc.to_json(), cba.to_json());
    }
}
