//! A caching stub resolver implementing mail-client MX resolution.

use crate::authority::{Authority, Rcode};
use crate::name::DomainName;
use crate::record::{RecordData, RecordType};
use spamward_net::faults::DnsFaults;
use spamward_sim::{SimDuration, SimTime};
use std::collections::HashMap;
use std::fmt;
use std::net::Ipv4Addr;

/// One usable (or dangling) mail exchanger for a domain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MxHost {
    /// MX preference; lower is tried first (RFC 5321 §5.1).
    pub preference: u16,
    /// The exchanger's name.
    pub name: DomainName,
    /// Resolved address; `None` when the MX target has no A record (the
    /// "missing entries" the paper's parallel scanner chased).
    pub ip: Option<Ipv4Addr>,
}

/// Why MX resolution failed outright.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResolveError {
    /// The domain does not exist.
    NxDomain,
    /// The authority answered SERVFAIL.
    ServFail,
    /// The domain exists but publishes neither MX nor apex A records.
    NoMailServer,
}

impl fmt::Display for ResolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResolveError::NxDomain => write!(f, "domain does not exist"),
            ResolveError::ServFail => write!(f, "authoritative server failure"),
            ResolveError::NoMailServer => write!(f, "domain has no MX and no apex A record"),
        }
    }
}

impl std::error::Error for ResolveError {}

#[derive(Debug, Clone)]
struct CacheEntry {
    expires: SimTime,
    rcode: Rcode,
    answers: Vec<crate::record::ResourceRecord>,
}

/// Cache and query statistics.
///
/// Plain counter fields on the hot path; `spamward_dns::metrics` binds the
/// registry names at collection time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResolverStats {
    /// Queries answered from cache.
    pub hits: u64,
    /// Queries forwarded to the authority.
    pub misses: u64,
    /// A queries issued (cached or not).
    pub a_queries: u64,
    /// MX queries issued.
    pub mx_queries: u64,
    /// CNAME queries issued.
    pub cname_queries: u64,
    /// Queries of any other record type.
    pub other_queries: u64,
    /// Answers that came back NXDOMAIN.
    pub nxdomain: u64,
    /// Answers that came back SERVFAIL.
    pub servfail: u64,
    /// MX resolutions that fell back to the implicit (apex A) exchanger —
    /// the path a nolisting zone without MX records would exercise.
    pub implicit_mx_fallbacks: u64,
}

/// A caching resolver over an [`Authority`].
///
/// The cache honors record TTLs against virtual time and negative-caches
/// NXDOMAIN/SERVFAIL briefly, mirroring a stub resolver in front of the
/// experiments.
///
/// # Example
///
/// ```
/// use std::net::Ipv4Addr;
/// use spamward_dns::{Authority, Resolver, Zone};
/// use spamward_sim::SimTime;
///
/// let mut dns = Authority::new();
/// dns.publish(Zone::nolisting(
///     "foo.net".parse()?,
///     Ipv4Addr::new(192, 0, 2, 1),
///     Ipv4Addr::new(192, 0, 2, 2),
/// ));
/// let mut resolver = Resolver::new();
///
/// let mxs = resolver.resolve_mx(&mut dns, &"foo.net".parse()?, SimTime::ZERO)?;
/// assert_eq!(mxs.len(), 2);
/// assert!(mxs[0].preference < mxs[1].preference);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Default)]
pub struct Resolver {
    cache: HashMap<(DomainName, RecordType), CacheEntry>,
    stats: ResolverStats,
    faults: Option<DnsFaults>,
    /// Lifetime of cached negative answers.
    pub negative_ttl: SimDuration,
}

impl Resolver {
    /// Creates a resolver with a 5-minute negative-cache TTL.
    pub fn new() -> Self {
        Resolver {
            cache: HashMap::new(),
            stats: ResolverStats::default(),
            faults: None,
            negative_ttl: SimDuration::from_mins(5),
        }
    }

    /// Cache/query statistics so far.
    pub fn stats(&self) -> ResolverStats {
        self.stats
    }

    /// Installs DNS faults (a compiled plan's `dns` half). Until this is
    /// called the resolver behaves exactly as if the fault layer did not
    /// exist.
    pub fn install_faults(&mut self, faults: DnsFaults) {
        self.faults = Some(faults);
    }

    /// The installed fault state (with its fired-fault counters), if any.
    pub fn faults(&self) -> Option<&DnsFaults> {
        self.faults.as_ref()
    }

    /// Extra resolution latency the slow-resolver fault charges at `now`
    /// ([`SimDuration::ZERO`] when no fault is active). Callers that model
    /// time spent resolving add this to their clock.
    pub fn fault_extra_latency(&mut self, now: SimTime) -> SimDuration {
        match &mut self.faults {
            Some(f) => f.extra_latency(now),
            None => SimDuration::ZERO,
        }
    }

    /// Drops all cached entries.
    pub fn flush(&mut self) {
        self.cache.clear();
    }

    fn query_cached(
        &mut self,
        authority: &mut Authority,
        name: &DomainName,
        rtype: RecordType,
        now: SimTime,
    ) -> (Rcode, Vec<crate::record::ResourceRecord>) {
        match rtype {
            RecordType::A => self.stats.a_queries += 1,
            RecordType::Mx => self.stats.mx_queries += 1,
            RecordType::Cname => self.stats.cname_queries += 1,
            _ => self.stats.other_queries += 1,
        }
        let key = (name.clone(), rtype);
        if let Some(entry) = self.cache.get(&key) {
            if entry.expires > now {
                self.stats.hits += 1;
                match entry.rcode {
                    Rcode::NxDomain => self.stats.nxdomain += 1,
                    Rcode::ServFail => self.stats.servfail += 1,
                    Rcode::NoError => {}
                }
                return (entry.rcode, entry.answers.clone());
            }
        }
        self.stats.misses += 1;
        let out = authority.query(name, rtype);
        match out.rcode {
            Rcode::NxDomain => self.stats.nxdomain += 1,
            Rcode::ServFail => self.stats.servfail += 1,
            Rcode::NoError => {}
        }
        let ttl = match out.rcode {
            Rcode::NoError => out.answers.iter().map(|r| r.ttl).min().unwrap_or(self.negative_ttl),
            _ => self.negative_ttl,
        };
        self.cache.insert(
            key,
            CacheEntry { expires: now + ttl, rcode: out.rcode, answers: out.answers.clone() },
        );
        (out.rcode, out.answers)
    }

    /// Resolves a single A record, following CNAME chains up to 8 deep
    /// (loop protection; real resolvers bound similarly).
    pub fn resolve_a(
        &mut self,
        authority: &mut Authority,
        name: &DomainName,
        now: SimTime,
    ) -> Option<Ipv4Addr> {
        let mut cursor = name.clone();
        for _ in 0..8 {
            let (rcode, answers) = self.query_cached(authority, &cursor, RecordType::A, now);
            if rcode != Rcode::NoError {
                return None;
            }
            if let Some(ip) = answers.iter().find_map(|r| match r.data {
                RecordData::A(ip) => Some(ip),
                _ => None,
            }) {
                return Some(ip);
            }
            // No A answer; is there an alias to chase?
            let (rcode, answers) = self.query_cached(authority, &cursor, RecordType::Cname, now);
            if rcode != Rcode::NoError {
                return None;
            }
            match answers.iter().find_map(|r| match &r.data {
                RecordData::Cname(target) => Some(target.clone()),
                _ => None,
            }) {
                Some(target) => cursor = target,
                None => return None,
            }
        }
        None // chain too long or looping
    }

    /// Resolves the ordered mail-exchanger list for `domain`, following RFC
    /// 5321 §5.1:
    ///
    /// 1. Query MX; sort ascending by preference (ties keep zone order).
    /// 2. Resolve each exchanger's A record (missing glue ⇒ `ip: None`).
    /// 3. If the domain publishes no MX at all, fall back to the *implicit
    ///    MX*: the apex A record with preference 0.
    ///
    /// # Errors
    ///
    /// * [`ResolveError::NxDomain`] / [`ResolveError::ServFail`] — forwarded
    ///   from the authority.
    /// * [`ResolveError::NoMailServer`] — no MX and no apex A.
    pub fn resolve_mx(
        &mut self,
        authority: &mut Authority,
        domain: &DomainName,
        now: SimTime,
    ) -> Result<Vec<MxHost>, ResolveError> {
        if let Some(faults) = &mut self.faults {
            if faults.servfail(now) {
                // An injected SERVFAIL never reaches the authority and is
                // not cached: the outage window, not the negative TTL,
                // decides when resolution recovers.
                self.stats.servfail += 1;
                return Err(ResolveError::ServFail);
            }
        }
        let (rcode, answers) = self.query_cached(authority, domain, RecordType::Mx, now);
        match rcode {
            Rcode::ServFail => return Err(ResolveError::ServFail),
            Rcode::NxDomain => return Err(ResolveError::NxDomain),
            Rcode::NoError => {}
        }
        let mut mxs: Vec<(u16, DomainName)> = answers
            .iter()
            .filter_map(|r| match &r.data {
                RecordData::Mx { preference, exchange } => Some((*preference, exchange.clone())),
                _ => None,
            })
            .collect();

        if mxs.is_empty() {
            // Implicit MX: an apex A record stands in as a preference-0
            // exchanger.
            self.stats.implicit_mx_fallbacks += 1;
            return match self.resolve_a(authority, domain, now) {
                Some(ip) => Ok(vec![MxHost { preference: 0, name: domain.clone(), ip: Some(ip) }]),
                None => Err(ResolveError::NoMailServer),
            };
        }

        mxs.sort_by_key(|a| a.0);
        let hosts = mxs
            .into_iter()
            .map(|(preference, name)| {
                let ip = self.resolve_a(authority, &name, now);
                MxHost { preference, name, ip }
            })
            .collect();
        Ok(hosts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zone::Zone;

    fn name(s: &str) -> DomainName {
        s.parse().unwrap()
    }

    fn ip(d: u8) -> Ipv4Addr {
        Ipv4Addr::new(192, 0, 2, d)
    }

    #[test]
    fn injected_servfail_window_gates_resolution() {
        use spamward_net::faults::{FaultPlan, FaultProfile};
        let mut dns = Authority::new();
        dns.publish(Zone::builder(name("foo.net")).mx(10, "mx1", ip(1)).build());
        let mut r = Resolver::new();
        // dns_degraded: SERVFAIL over [2min, 12min), slow resolver [0, 30min).
        r.install_faults(FaultPlan::compile(&FaultProfile::dns_degraded(), 4).dns);
        let at = |m: u64| SimTime::ZERO + SimDuration::from_mins(m);

        assert!(r.resolve_mx(&mut dns, &name("foo.net"), at(0)).is_ok());
        assert_eq!(r.resolve_mx(&mut dns, &name("foo.net"), at(5)), Err(ResolveError::ServFail));
        // The injected failure is not negative-cached: the moment the window
        // closes, resolution works again (the positive cache answers).
        assert!(r.resolve_mx(&mut dns, &name("foo.net"), at(12)).is_ok());

        assert_eq!(r.fault_extra_latency(at(20)), SimDuration::from_secs(2));
        assert_eq!(r.fault_extra_latency(at(31)), SimDuration::ZERO);
        let stats = r.faults().unwrap().stats;
        assert_eq!(stats.servfails, 1);
        assert_eq!(stats.slowed, 1);
        // The forced SERVFAIL also lands in the ordinary resolver stats.
        assert_eq!(r.stats().servfail, 1);
    }

    #[test]
    fn orders_by_preference() {
        let mut dns = Authority::new();
        dns.publish(
            Zone::builder(name("foo.net"))
                .mx(20, "mx2", ip(2))
                .mx(5, "mx0", ip(0))
                .mx(10, "mx1", ip(1))
                .build(),
        );
        let mut r = Resolver::new();
        let mxs = r.resolve_mx(&mut dns, &name("foo.net"), SimTime::ZERO).unwrap();
        let prefs: Vec<u16> = mxs.iter().map(|m| m.preference).collect();
        assert_eq!(prefs, vec![5, 10, 20]);
        assert_eq!(mxs[0].ip, Some(ip(0)));
    }

    #[test]
    fn implicit_mx_fallback() {
        let mut dns = Authority::new();
        dns.publish(Zone::no_mx(name("bar.org"), ip(7)));
        let mut r = Resolver::new();
        let mxs = r.resolve_mx(&mut dns, &name("bar.org"), SimTime::ZERO).unwrap();
        assert_eq!(mxs.len(), 1);
        assert_eq!(mxs[0].preference, 0);
        assert_eq!(mxs[0].name, name("bar.org"));
        assert_eq!(mxs[0].ip, Some(ip(7)));
    }

    #[test]
    fn dangling_mx_yields_none_ip() {
        let mut dns = Authority::new();
        dns.publish(Zone::dangling_mx(name("baz.io")));
        let mut r = Resolver::new();
        let mxs = r.resolve_mx(&mut dns, &name("baz.io"), SimTime::ZERO).unwrap();
        assert_eq!(mxs.len(), 1);
        assert_eq!(mxs[0].ip, None);
    }

    #[test]
    fn cname_chain_followed() {
        let mut dns = Authority::new();
        dns.publish(
            Zone::builder(name("foo.net"))
                .mx_to(10, name("mail.foo.net"))
                .cname(name("mail.foo.net"), name("real.foo.net"))
                .a_at(name("real.foo.net"), ip(9))
                .build(),
        );
        let mut r = Resolver::new();
        let mxs = r.resolve_mx(&mut dns, &name("foo.net"), SimTime::ZERO).unwrap();
        assert_eq!(mxs[0].ip, Some(ip(9)), "MX → CNAME → A must resolve");
    }

    #[test]
    fn cname_loop_bounded() {
        let mut dns = Authority::new();
        dns.publish(
            Zone::builder(name("loop.net"))
                .mx_to(10, name("a.loop.net"))
                .cname(name("a.loop.net"), name("b.loop.net"))
                .cname(name("b.loop.net"), name("a.loop.net"))
                .build(),
        );
        let mut r = Resolver::new();
        let mxs = r.resolve_mx(&mut dns, &name("loop.net"), SimTime::ZERO).unwrap();
        assert_eq!(mxs[0].ip, None, "CNAME loop must terminate with no address");
    }

    #[test]
    fn errors_forwarded() {
        let mut dns = Authority::new();
        dns.publish(Zone::builder(name("lame.org")).a(ip(1)).lame().build());
        let mut r = Resolver::new();
        assert_eq!(
            r.resolve_mx(&mut dns, &name("gone.example"), SimTime::ZERO),
            Err(ResolveError::NxDomain)
        );
        assert_eq!(
            r.resolve_mx(&mut dns, &name("lame.org"), SimTime::ZERO),
            Err(ResolveError::ServFail)
        );
    }

    #[test]
    fn no_mail_server_error() {
        let mut dns = Authority::new();
        dns.publish(Zone::builder(name("textonly.example")).txt("hello").build());
        let mut r = Resolver::new();
        assert_eq!(
            r.resolve_mx(&mut dns, &name("textonly.example"), SimTime::ZERO),
            Err(ResolveError::NoMailServer)
        );
    }

    #[test]
    fn cache_hits_within_ttl_and_expires_after() {
        let mut dns = Authority::new();
        dns.publish(Zone::single_mx(name("foo.net"), ip(1)));
        let mut r = Resolver::new();
        let t0 = SimTime::ZERO;
        r.resolve_mx(&mut dns, &name("foo.net"), t0).unwrap();
        let after_first = r.stats();
        r.resolve_mx(&mut dns, &name("foo.net"), t0 + SimDuration::from_mins(1)).unwrap();
        let after_second = r.stats();
        assert_eq!(after_second.misses, after_first.misses, "second resolve must hit cache");
        assert!(after_second.hits > after_first.hits);

        // Past the 1 h TTL the cache must refresh.
        r.resolve_mx(&mut dns, &name("foo.net"), t0 + SimDuration::from_hours(2)).unwrap();
        assert!(r.stats().misses > after_second.misses);
    }

    #[test]
    fn cache_serves_stale_config_until_expiry() {
        let mut dns = Authority::new();
        dns.publish(Zone::single_mx(name("foo.net"), ip(1)));
        let mut r = Resolver::new();
        let t0 = SimTime::ZERO;
        let first = r.resolve_mx(&mut dns, &name("foo.net"), t0).unwrap();
        // The domain re-publishes with a different MX.
        dns.publish(Zone::single_mx(name("foo.net"), ip(9)));
        let cached =
            r.resolve_mx(&mut dns, &name("foo.net"), t0 + SimDuration::from_mins(10)).unwrap();
        assert_eq!(first, cached, "stale answer expected within TTL");
        let fresh =
            r.resolve_mx(&mut dns, &name("foo.net"), t0 + SimDuration::from_hours(2)).unwrap();
        assert_eq!(fresh[0].ip, Some(ip(9)));
    }

    #[test]
    fn negative_cache_applies() {
        let mut dns = Authority::new();
        let mut r = Resolver::new();
        let t0 = SimTime::ZERO;
        let _ = r.resolve_mx(&mut dns, &name("ghost.example"), t0);
        let misses = r.stats().misses;
        let _ = r.resolve_mx(&mut dns, &name("ghost.example"), t0 + SimDuration::from_secs(30));
        assert_eq!(r.stats().misses, misses, "negative answer must be cached");
    }

    #[test]
    fn flush_clears_cache() {
        let mut dns = Authority::new();
        dns.publish(Zone::single_mx(name("foo.net"), ip(1)));
        let mut r = Resolver::new();
        r.resolve_mx(&mut dns, &name("foo.net"), SimTime::ZERO).unwrap();
        r.flush();
        let misses = r.stats().misses;
        r.resolve_mx(&mut dns, &name("foo.net"), SimTime::ZERO).unwrap();
        assert!(r.stats().misses > misses);
    }
}
