//! Resource records.

use crate::name::DomainName;
use serde::{Deserialize, Serialize};
use spamward_sim::SimDuration;
use std::fmt;
use std::net::Ipv4Addr;

/// The record types the suite queries for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RecordType {
    /// IPv4 address record.
    A,
    /// Canonical-name alias record.
    Cname,
    /// Mail exchanger record.
    Mx,
    /// Authoritative name server record.
    Ns,
    /// Reverse-lookup pointer record.
    Ptr,
    /// Free-form text record.
    Txt,
}

impl fmt::Display for RecordType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RecordType::A => "A",
            RecordType::Cname => "CNAME",
            RecordType::Mx => "MX",
            RecordType::Ns => "NS",
            RecordType::Ptr => "PTR",
            RecordType::Txt => "TXT",
        };
        f.write_str(s)
    }
}

/// The payload of a resource record.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RecordData {
    /// An IPv4 address.
    A(Ipv4Addr),
    /// An alias to another name. RFC 2181 §10.3 forbids MX targets from
    /// being CNAMEs, but the real DNS is full of them — a misconfiguration
    /// flavour the resolver must survive.
    Cname(DomainName),
    /// A mail exchanger: lower preference values are tried first.
    Mx {
        /// Priority; RFC 5321 mandates trying exchangers in ascending order.
        preference: u16,
        /// The exchanger's host name (needs its own A record to be usable).
        exchange: DomainName,
    },
    /// A delegation.
    Ns(DomainName),
    /// A reverse pointer: the host name an address maps back to.
    Ptr(DomainName),
    /// Arbitrary text.
    Txt(String),
}

impl RecordData {
    /// The type this payload answers for.
    pub fn record_type(&self) -> RecordType {
        match self {
            RecordData::A(_) => RecordType::A,
            RecordData::Cname(_) => RecordType::Cname,
            RecordData::Mx { .. } => RecordType::Mx,
            RecordData::Ns(_) => RecordType::Ns,
            RecordData::Ptr(_) => RecordType::Ptr,
            RecordData::Txt(_) => RecordType::Txt,
        }
    }
}

impl fmt::Display for RecordData {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecordData::A(ip) => write!(f, "A {ip}"),
            RecordData::Cname(target) => write!(f, "CNAME {target}"),
            RecordData::Mx { preference, exchange } => write!(f, "MX {preference} {exchange}"),
            RecordData::Ns(ns) => write!(f, "NS {ns}"),
            RecordData::Ptr(target) => write!(f, "PTR {target}"),
            RecordData::Txt(t) => write!(f, "TXT {t:?}"),
        }
    }
}

/// A complete resource record: owner name, TTL and payload.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResourceRecord {
    /// The owner name the record answers for.
    pub name: DomainName,
    /// Cache lifetime.
    pub ttl: SimDuration,
    /// The payload.
    pub data: RecordData,
}

impl ResourceRecord {
    /// Default TTL used by the zone builders (1 hour).
    pub const DEFAULT_TTL: SimDuration = SimDuration::from_secs(3_600);

    /// Creates a record with the default TTL.
    pub fn new(name: DomainName, data: RecordData) -> Self {
        ResourceRecord { name, ttl: Self::DEFAULT_TTL, data }
    }

    /// The record's type.
    pub fn record_type(&self) -> RecordType {
        self.data.record_type()
    }
}

impl fmt::Display for ResourceRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.name, self.ttl, self.data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn name(s: &str) -> DomainName {
        s.parse().unwrap()
    }

    #[test]
    fn payload_type_mapping() {
        assert_eq!(RecordData::A(Ipv4Addr::LOCALHOST).record_type(), RecordType::A);
        assert_eq!(
            RecordData::Mx { preference: 0, exchange: name("mx.x.y") }.record_type(),
            RecordType::Mx
        );
        assert_eq!(RecordData::Ns(name("ns.x.y")).record_type(), RecordType::Ns);
        assert_eq!(RecordData::Txt("v=spf1".into()).record_type(), RecordType::Txt);
    }

    #[test]
    fn display_forms() {
        let rr = ResourceRecord::new(
            name("foo.net"),
            RecordData::Mx { preference: 10, exchange: name("smtp.foo.net") },
        );
        assert_eq!(rr.to_string(), "foo.net 1h00m00s MX 10 smtp.foo.net");
        assert_eq!(RecordType::Mx.to_string(), "MX");
    }
}
