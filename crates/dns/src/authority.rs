//! The simulated global DNS authority.

use crate::name::DomainName;
use crate::record::{RecordType, ResourceRecord};
use crate::zone::Zone;
use std::collections::HashMap;
use std::fmt;

/// DNS response codes the suite distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rcode {
    /// Query answered (answer set may still be empty: NODATA).
    NoError,
    /// The queried name does not exist.
    NxDomain,
    /// The authority failed (lame delegation, server bug).
    ServFail,
}

impl fmt::Display for Rcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Rcode::NoError => "NOERROR",
            Rcode::NxDomain => "NXDOMAIN",
            Rcode::ServFail => "SERVFAIL",
        };
        f.write_str(s)
    }
}

/// The outcome of one query against the authority.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryOutcome {
    /// Response code.
    pub rcode: Rcode,
    /// Matching records (empty on errors or NODATA).
    pub answers: Vec<ResourceRecord>,
}

impl QueryOutcome {
    fn nxdomain() -> Self {
        QueryOutcome { rcode: Rcode::NxDomain, answers: Vec::new() }
    }

    fn servfail() -> Self {
        QueryOutcome { rcode: Rcode::ServFail, answers: Vec::new() }
    }
}

/// The set of all zones in the simulated internet, indexed by origin.
///
/// Queries walk up the name's ancestor chain to find the enclosing zone, so
/// a query for `smtp.foo.net` is answered by the `foo.net` zone.
///
/// # Example
///
/// ```
/// use std::net::Ipv4Addr;
/// use spamward_dns::{Authority, Zone, RecordType, Rcode};
///
/// let mut dns = Authority::new();
/// dns.publish(Zone::single_mx("foo.net".parse()?, Ipv4Addr::new(192, 0, 2, 1)));
///
/// let out = dns.query(&"foo.net".parse()?, RecordType::Mx);
/// assert_eq!(out.rcode, Rcode::NoError);
/// assert_eq!(out.answers.len(), 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Default)]
pub struct Authority {
    zones: HashMap<DomainName, Zone>,
    reverse: HashMap<std::net::Ipv4Addr, DomainName>,
    queries_served: u64,
}

impl Authority {
    /// Creates an empty authority.
    pub fn new() -> Self {
        Self::default()
    }

    /// Publishes (or replaces) a zone.
    pub fn publish(&mut self, zone: Zone) {
        self.zones.insert(zone.origin().clone(), zone);
    }

    /// Registers a reverse (PTR) mapping for an address. Real deployments
    /// keep these in `in-addr.arpa` zones; the suite stores them directly.
    pub fn publish_ptr(&mut self, ip: std::net::Ipv4Addr, name: DomainName) {
        self.reverse.insert(ip, name);
    }

    /// Reverse-resolves `ip`, counting the query.
    pub fn resolve_ptr(&mut self, ip: std::net::Ipv4Addr) -> Option<DomainName> {
        self.queries_served += 1;
        self.reverse.get(&ip).cloned()
    }

    /// Removes a zone, returning it if present.
    pub fn withdraw(&mut self, origin: &DomainName) -> Option<Zone> {
        self.zones.remove(origin)
    }

    /// The zone with the given origin.
    pub fn zone(&self, origin: &DomainName) -> Option<&Zone> {
        self.zones.get(origin)
    }

    /// Mutable access to a zone (e.g. to flip it lame mid-experiment).
    pub fn zone_mut(&mut self, origin: &DomainName) -> Option<&mut Zone> {
        self.zones.get_mut(origin)
    }

    /// Number of published zones.
    pub fn len(&self) -> usize {
        self.zones.len()
    }

    /// Whether no zones are published.
    pub fn is_empty(&self) -> bool {
        self.zones.is_empty()
    }

    /// Total queries served (for the §VI "cost to the Internet community"
    /// accounting).
    pub fn queries_served(&self) -> u64 {
        self.queries_served
    }

    /// Finds the most-specific zone enclosing `name`.
    fn enclosing_zone(&self, name: &DomainName) -> Option<&Zone> {
        let mut cursor = Some(name.clone());
        while let Some(n) = cursor {
            if let Some(z) = self.zones.get(&n) {
                return Some(z);
            }
            cursor = n.parent();
        }
        None
    }

    /// Answers a typed query.
    ///
    /// Returns SERVFAIL for lame zones, NXDOMAIN when no enclosing zone
    /// exists or the name is absent from its zone, and NOERROR (possibly
    /// with no answers — NODATA) otherwise.
    pub fn query(&mut self, name: &DomainName, rtype: RecordType) -> QueryOutcome {
        self.queries_served += 1;
        self.query_ro(name, rtype)
    }

    /// Like [`Authority::query`] but without the served-queries counter,
    /// usable from shared references — the entry point for parallel
    /// scanners that fan queries out across threads.
    pub fn query_ro(&self, name: &DomainName, rtype: RecordType) -> QueryOutcome {
        let Some(zone) = self.enclosing_zone(name) else {
            return QueryOutcome::nxdomain();
        };
        if zone.lame {
            return QueryOutcome::servfail();
        }
        if !zone.has_name(name) {
            return QueryOutcome::nxdomain();
        }
        let answers = zone.lookup(name, rtype).into_iter().cloned().collect();
        QueryOutcome { rcode: Rcode::NoError, answers }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn name(s: &str) -> DomainName {
        s.parse().unwrap()
    }

    fn authority_with_foo() -> Authority {
        let mut a = Authority::new();
        a.publish(Zone::nolisting(
            name("foo.net"),
            Ipv4Addr::new(1, 2, 3, 4),
            Ipv4Addr::new(1, 2, 3, 5),
        ));
        a
    }

    #[test]
    fn answers_mx_at_origin() {
        let mut a = authority_with_foo();
        let out = a.query(&name("foo.net"), RecordType::Mx);
        assert_eq!(out.rcode, Rcode::NoError);
        assert_eq!(out.answers.len(), 2);
    }

    #[test]
    fn answers_a_for_exchanger_via_enclosing_zone() {
        let mut a = authority_with_foo();
        let out = a.query(&name("smtp.foo.net"), RecordType::A);
        assert_eq!(out.rcode, Rcode::NoError);
        assert_eq!(out.answers.len(), 1);
    }

    #[test]
    fn nxdomain_for_unknown_domain_and_name() {
        let mut a = authority_with_foo();
        assert_eq!(a.query(&name("bar.net"), RecordType::Mx).rcode, Rcode::NxDomain);
        assert_eq!(a.query(&name("nope.foo.net"), RecordType::A).rcode, Rcode::NxDomain);
    }

    #[test]
    fn nodata_for_existing_name_wrong_type() {
        let mut a = authority_with_foo();
        let out = a.query(&name("smtp.foo.net"), RecordType::Mx);
        assert_eq!(out.rcode, Rcode::NoError);
        assert!(out.answers.is_empty());
    }

    #[test]
    fn lame_zone_servfails() {
        let mut a = Authority::new();
        a.publish(Zone::builder(name("lame.org")).a(Ipv4Addr::new(9, 9, 9, 9)).lame().build());
        assert_eq!(a.query(&name("lame.org"), RecordType::A).rcode, Rcode::ServFail);
    }

    #[test]
    fn publish_replaces_and_withdraw_removes() {
        let mut a = authority_with_foo();
        assert_eq!(a.len(), 1);
        a.publish(Zone::single_mx(name("foo.net"), Ipv4Addr::new(8, 8, 8, 8)));
        let out = a.query(&name("foo.net"), RecordType::Mx);
        assert_eq!(out.answers.len(), 1, "republish must replace the zone");
        assert!(a.withdraw(&name("foo.net")).is_some());
        assert!(a.is_empty());
        assert_eq!(a.query(&name("foo.net"), RecordType::Mx).rcode, Rcode::NxDomain);
    }

    #[test]
    fn ptr_records_resolve() {
        let mut a = Authority::new();
        let ip = Ipv4Addr::new(64, 233, 160, 5);
        a.publish_ptr(ip, name("mail-a.google.com"));
        assert_eq!(a.resolve_ptr(ip), Some(name("mail-a.google.com")));
        assert_eq!(a.resolve_ptr(Ipv4Addr::new(1, 1, 1, 1)), None);
    }

    #[test]
    fn counts_queries() {
        let mut a = authority_with_foo();
        let before = a.queries_served();
        a.query(&name("foo.net"), RecordType::Mx);
        a.query(&name("foo.net"), RecordType::A);
        assert_eq!(a.queries_served(), before + 2);
    }
}
