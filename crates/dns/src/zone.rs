//! Zones: a domain's record set, with builders for the mail topologies the
//! study encounters.

use crate::name::DomainName;
use crate::record::{RecordData, RecordType, ResourceRecord};
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// The record set a domain publishes.
///
/// # Example — a conventional two-MX domain
///
/// ```
/// use std::net::Ipv4Addr;
/// use spamward_dns::{Zone, RecordType};
///
/// let zone = Zone::builder("foo.net".parse()?)
///     .mx(0, "smtp", Ipv4Addr::new(192, 0, 2, 10))
///     .mx(15, "smtp1", Ipv4Addr::new(192, 0, 2, 11))
///     .build();
/// assert_eq!(zone.records_of(RecordType::Mx).count(), 2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Zone {
    origin: DomainName,
    records: Vec<ResourceRecord>,
    /// When set, the authority answers SERVFAIL for every query in the zone.
    pub lame: bool,
}

impl Zone {
    /// Starts building a zone rooted at `origin`.
    pub fn builder(origin: DomainName) -> ZoneBuilder {
        ZoneBuilder { zone: Zone { origin, records: Vec::new(), lame: false } }
    }

    /// The zone origin (the domain itself).
    pub fn origin(&self) -> &DomainName {
        &self.origin
    }

    /// All records in the zone.
    pub fn records(&self) -> &[ResourceRecord] {
        &self.records
    }

    /// Records of a given type, at any owner name in the zone.
    pub fn records_of(&self, rtype: RecordType) -> impl Iterator<Item = &ResourceRecord> {
        self.records.iter().filter(move |r| r.record_type() == rtype)
    }

    /// Records answering `(name, rtype)` exactly.
    pub fn lookup(&self, name: &DomainName, rtype: RecordType) -> Vec<&ResourceRecord> {
        self.records.iter().filter(|r| r.record_type() == rtype && &r.name == name).collect()
    }

    /// Whether any record exists at `name` (for NXDOMAIN vs NODATA).
    pub fn has_name(&self, name: &DomainName) -> bool {
        self.records.iter().any(|r| &r.name == name)
    }

    /// A standard "one MX" zone: single exchanger with glue.
    pub fn single_mx(origin: DomainName, mx_ip: Ipv4Addr) -> Zone {
        Zone::builder(origin).mx(10, "mail", mx_ip).build()
    }

    /// A **nolisting** zone (paper §II): the primary MX resolves to
    /// `dead_ip` — a real machine that does *not* listen on port 25 — and
    /// the secondary points at the actual mail server `live_ip`.
    ///
    /// The caller is responsible for registering hosts in the simulated
    /// network such that `dead_ip` has port 25 closed and `live_ip` open;
    /// [`crate::zone::NOLISTING_PRIMARY_PREF`] and
    /// [`crate::zone::NOLISTING_SECONDARY_PREF`] are the preferences used.
    pub fn nolisting(origin: DomainName, dead_ip: Ipv4Addr, live_ip: Ipv4Addr) -> Zone {
        Zone::builder(origin)
            .mx(NOLISTING_PRIMARY_PREF, "smtp", dead_ip)
            .mx(NOLISTING_SECONDARY_PREF, "smtp1", live_ip)
            .build()
    }

    /// A misconfigured zone with **no MX records at all** (5.78% of the
    /// Fig. 2 population): only an apex A record, which RFC 5321 clients
    /// treat as an implicit MX.
    pub fn no_mx(origin: DomainName, apex_ip: Ipv4Addr) -> Zone {
        let apex = origin.clone();
        Zone::builder(origin).a_at(apex, apex_ip).build()
    }

    /// A misconfigured zone whose MX target has **no A record** (the
    /// "missing entries" the paper re-resolved with a parallel scanner;
    /// unresolvable ones count toward DNS misconfiguration).
    pub fn dangling_mx(origin: DomainName) -> Zone {
        let exchange = origin.prefixed("mail").expect("valid label");
        let mut b = Zone::builder(origin);
        b.zone.records.push(ResourceRecord::new(
            b.zone.origin.clone(),
            RecordData::Mx { preference: 10, exchange },
        ));
        b.build()
    }
}

/// MX preference of the intentionally dead primary in a nolisting zone.
pub const NOLISTING_PRIMARY_PREF: u16 = 0;
/// MX preference of the working secondary in a nolisting zone.
pub const NOLISTING_SECONDARY_PREF: u16 = 15;

/// Incremental [`Zone`] construction.
#[derive(Debug)]
pub struct ZoneBuilder {
    zone: Zone,
}

impl ZoneBuilder {
    /// Adds an MX record for the origin plus the glue A record for its
    /// target `label.origin` → `ip`.
    pub fn mx(mut self, preference: u16, label: &str, ip: Ipv4Addr) -> Self {
        let exchange = self.zone.origin.prefixed(label).expect("valid MX label");
        self.zone.records.push(ResourceRecord::new(
            self.zone.origin.clone(),
            RecordData::Mx { preference, exchange: exchange.clone() },
        ));
        self.zone.records.push(ResourceRecord::new(exchange, RecordData::A(ip)));
        self
    }

    /// Adds an MX record pointing at an already-named exchanger, without
    /// glue (use [`ZoneBuilder::a_at`] to add the address separately, or
    /// leave it dangling).
    pub fn mx_to(mut self, preference: u16, exchange: DomainName) -> Self {
        self.zone.records.push(ResourceRecord::new(
            self.zone.origin.clone(),
            RecordData::Mx { preference, exchange },
        ));
        self
    }

    /// Adds an A record at the zone origin.
    pub fn a(mut self, ip: Ipv4Addr) -> Self {
        self.zone.records.push(ResourceRecord::new(self.zone.origin.clone(), RecordData::A(ip)));
        self
    }

    /// Adds an A record at an arbitrary owner name.
    pub fn a_at(mut self, name: DomainName, ip: Ipv4Addr) -> Self {
        self.zone.records.push(ResourceRecord::new(name, RecordData::A(ip)));
        self
    }

    /// Adds a CNAME record: `name` → `target`.
    pub fn cname(mut self, name: DomainName, target: DomainName) -> Self {
        self.zone.records.push(ResourceRecord::new(name, RecordData::Cname(target)));
        self
    }

    /// Adds a TXT record at the origin.
    pub fn txt(mut self, text: &str) -> Self {
        self.zone
            .records
            .push(ResourceRecord::new(self.zone.origin.clone(), RecordData::Txt(text.to_owned())));
        self
    }

    /// Marks the zone lame: every query is answered SERVFAIL.
    pub fn lame(mut self) -> Self {
        self.zone.lame = true;
        self
    }

    /// Finishes the zone.
    pub fn build(self) -> Zone {
        self.zone
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn name(s: &str) -> DomainName {
        s.parse().unwrap()
    }

    fn ip(d: u8) -> Ipv4Addr {
        Ipv4Addr::new(192, 0, 2, d)
    }

    #[test]
    fn builder_adds_glue() {
        let z = Zone::builder(name("foo.net")).mx(0, "smtp", ip(1)).build();
        assert_eq!(z.lookup(&name("foo.net"), RecordType::Mx).len(), 1);
        let a = z.lookup(&name("smtp.foo.net"), RecordType::A);
        assert_eq!(a.len(), 1);
        assert_eq!(a[0].data, RecordData::A(ip(1)));
    }

    #[test]
    fn nolisting_zone_shape() {
        let z = Zone::nolisting(name("foo.net"), ip(1), ip(2));
        let mut mxs: Vec<(u16, String)> = z
            .records_of(RecordType::Mx)
            .filter_map(|r| match &r.data {
                RecordData::Mx { preference, exchange } => {
                    Some((*preference, exchange.to_string()))
                }
                _ => None,
            })
            .collect();
        mxs.sort();
        assert_eq!(
            mxs,
            vec![
                (NOLISTING_PRIMARY_PREF, "smtp.foo.net".to_owned()),
                (NOLISTING_SECONDARY_PREF, "smtp1.foo.net".to_owned()),
            ]
        );
        // Both exchangers have proper A records — the primary *resolves*,
        // it just doesn't accept SMTP (that's the network's job to model).
        assert_eq!(z.lookup(&name("smtp.foo.net"), RecordType::A).len(), 1);
        assert_eq!(z.lookup(&name("smtp1.foo.net"), RecordType::A).len(), 1);
    }

    #[test]
    fn no_mx_zone_has_apex_a_only() {
        let z = Zone::no_mx(name("bar.org"), ip(3));
        assert_eq!(z.records_of(RecordType::Mx).count(), 0);
        assert_eq!(z.lookup(&name("bar.org"), RecordType::A).len(), 1);
    }

    #[test]
    fn dangling_mx_has_no_glue() {
        let z = Zone::dangling_mx(name("baz.io"));
        assert_eq!(z.records_of(RecordType::Mx).count(), 1);
        assert_eq!(z.records_of(RecordType::A).count(), 0);
        assert!(!z.has_name(&name("mail.baz.io")));
    }

    #[test]
    fn has_name_distinguishes_nodata_from_nxdomain() {
        let z = Zone::builder(name("foo.net")).mx(0, "smtp", ip(1)).build();
        assert!(z.has_name(&name("smtp.foo.net")));
        assert!(z.lookup(&name("smtp.foo.net"), RecordType::Mx).is_empty());
        assert!(!z.has_name(&name("other.foo.net")));
    }

    #[test]
    fn lame_flag() {
        let z = Zone::builder(name("foo.net")).lame().build();
        assert!(z.lame);
    }
}
