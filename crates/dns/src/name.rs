//! Validated domain names.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// A validated, canonical (lowercase, no trailing dot) domain name.
///
/// # Example
///
/// ```
/// use spamward_dns::DomainName;
/// let d: DomainName = "SMTP.Foo.NET.".parse()?;
/// assert_eq!(d.as_str(), "smtp.foo.net");
/// assert_eq!(d.parent().unwrap().as_str(), "foo.net");
/// # Ok::<(), spamward_dns::ParseNameError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct DomainName(String);

/// Error parsing a [`DomainName`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseNameError {
    /// The name was empty (or only a trailing dot).
    Empty,
    /// The name exceeded 253 characters.
    TooLong,
    /// A label was empty, longer than 63 characters, or had a bad edge char.
    BadLabel(String),
    /// A character outside `[a-z0-9-]` appeared.
    BadChar(char),
}

impl fmt::Display for ParseNameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseNameError::Empty => write!(f, "empty domain name"),
            ParseNameError::TooLong => write!(f, "domain name longer than 253 characters"),
            ParseNameError::BadLabel(l) => write!(f, "invalid label {l:?}"),
            ParseNameError::BadChar(c) => write!(f, "invalid character {c:?} in domain name"),
        }
    }
}

impl std::error::Error for ParseNameError {}

impl DomainName {
    /// Parses and canonicalizes a name.
    ///
    /// # Errors
    ///
    /// Returns [`ParseNameError`] when the name violates the LDH
    /// (letters-digits-hyphen) rule, has empty/oversized labels, or is
    /// empty/too long overall.
    pub fn parse(s: &str) -> Result<Self, ParseNameError> {
        let trimmed = s.strip_suffix('.').unwrap_or(s);
        if trimmed.is_empty() {
            return Err(ParseNameError::Empty);
        }
        if trimmed.len() > 253 {
            return Err(ParseNameError::TooLong);
        }
        let lower = trimmed.to_ascii_lowercase();
        for label in lower.split('.') {
            if label.is_empty() || label.len() > 63 {
                return Err(ParseNameError::BadLabel(label.to_owned()));
            }
            if label.starts_with('-') || label.ends_with('-') {
                return Err(ParseNameError::BadLabel(label.to_owned()));
            }
            for c in label.chars() {
                if !(c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-' || c == '_') {
                    return Err(ParseNameError::BadChar(c));
                }
            }
        }
        Ok(DomainName(lower))
    }

    /// The canonical textual form.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// The labels, most-specific first.
    pub fn labels(&self) -> impl Iterator<Item = &str> {
        self.0.split('.')
    }

    /// The name with the leftmost label removed, or `None` at a TLD.
    pub fn parent(&self) -> Option<DomainName> {
        self.0.split_once('.').map(|(_, rest)| DomainName(rest.to_owned()))
    }

    /// Whether `self` equals `other` or is a subdomain of it.
    pub fn is_subdomain_of(&self, other: &DomainName) -> bool {
        self == other
            || (self.0.len() > other.0.len()
                && self.0.ends_with(&other.0)
                && self.0.as_bytes()[self.0.len() - other.0.len() - 1] == b'.')
    }

    /// Prefixes a label, e.g. `"smtp"` + `foo.net` → `smtp.foo.net`.
    ///
    /// # Errors
    ///
    /// Returns [`ParseNameError`] if the resulting name is invalid.
    pub fn prefixed(&self, label: &str) -> Result<DomainName, ParseNameError> {
        DomainName::parse(&format!("{label}.{}", self.0))
    }
}

impl FromStr for DomainName {
    type Err = ParseNameError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        DomainName::parse(s)
    }
}

impl fmt::Display for DomainName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl AsRef<str> for DomainName {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn canonicalizes_case_and_trailing_dot() {
        let d = DomainName::parse("MAIL.Example.COM.").unwrap();
        assert_eq!(d.as_str(), "mail.example.com");
        assert_eq!(d, DomainName::parse("mail.example.com").unwrap());
    }

    #[test]
    fn rejects_bad_names() {
        assert_eq!(DomainName::parse(""), Err(ParseNameError::Empty));
        assert_eq!(DomainName::parse("."), Err(ParseNameError::Empty));
        assert!(matches!(DomainName::parse("a..b"), Err(ParseNameError::BadLabel(_))));
        assert!(matches!(DomainName::parse("-bad.com"), Err(ParseNameError::BadLabel(_))));
        assert!(matches!(DomainName::parse("bad-.com"), Err(ParseNameError::BadLabel(_))));
        assert!(matches!(DomainName::parse("sp ace.com"), Err(ParseNameError::BadChar(' '))));
        let long_label = "x".repeat(64);
        assert!(matches!(
            DomainName::parse(&format!("{long_label}.com")),
            Err(ParseNameError::BadLabel(_))
        ));
        let long_name = format!("{}.com", "abcde.".repeat(50));
        assert_eq!(DomainName::parse(&long_name), Err(ParseNameError::TooLong));
    }

    #[test]
    fn parent_chain() {
        let d = DomainName::parse("a.b.c").unwrap();
        let p = d.parent().unwrap();
        assert_eq!(p.as_str(), "b.c");
        assert_eq!(p.parent().unwrap().as_str(), "c");
        assert_eq!(p.parent().unwrap().parent(), None);
    }

    #[test]
    fn subdomain_relation() {
        let base = DomainName::parse("foo.net").unwrap();
        let sub = DomainName::parse("smtp.foo.net").unwrap();
        let other = DomainName::parse("notfoo.net").unwrap();
        assert!(sub.is_subdomain_of(&base));
        assert!(base.is_subdomain_of(&base));
        assert!(!base.is_subdomain_of(&sub));
        assert!(!other.is_subdomain_of(&base), "suffix match must respect label boundary");
    }

    #[test]
    fn prefixed_builds_child() {
        let base = DomainName::parse("foo.net").unwrap();
        assert_eq!(base.prefixed("smtp").unwrap().as_str(), "smtp.foo.net");
        assert!(base.prefixed("bad label").is_err());
    }

    #[test]
    fn labels_iterate_left_to_right() {
        let d = DomainName::parse("a.b.c").unwrap();
        assert_eq!(d.labels().collect::<Vec<_>>(), vec!["a", "b", "c"]);
    }

    proptest! {
        #[test]
        fn prop_parse_is_idempotent(s in "[a-z0-9]{1,10}(\\.[a-z0-9]{1,10}){0,3}") {
            let once = DomainName::parse(&s).unwrap();
            let twice = DomainName::parse(once.as_str()).unwrap();
            prop_assert_eq!(once, twice);
        }

        #[test]
        fn prop_case_insensitive(s in "[a-zA-Z]{1,12}\\.[a-zA-Z]{2,6}") {
            let lower = DomainName::parse(&s.to_ascii_lowercase()).unwrap();
            let mixed = DomainName::parse(&s).unwrap();
            prop_assert_eq!(lower, mixed);
        }
    }
}
