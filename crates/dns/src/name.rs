//! Validated domain names with optional interning.
//!
//! [`DomainName`] stores its canonical text behind an [`Arc<str>`], so
//! cloning a name — which `dns` resolution and `net` host lookups do on
//! every hot path — bumps a reference count instead of copying a `String`.
//! A name can additionally be *interned* into a [`NameTable`], which
//! assigns it a `u32` id; two names interned in the same table compare by
//! id (one integer compare) instead of by bytes. Uninterned names and
//! names from different tables fall back to text comparison, so every
//! comparison trait remains a pure function of the canonical text — the
//! id is only ever a fast path, never a different answer.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::collections::BTreeMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::str::FromStr;
use std::sync::Arc;

/// The id a [`NameTable`] assigns to an interned [`DomainName`].
///
/// Ids are only comparable within the table that issued them, so the id
/// carries its table's tag; [`DomainName`] equality uses the id fast path
/// only when both tags match.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NameId {
    table: u32,
    index: u32,
}

impl NameId {
    /// The tag of the issuing [`NameTable`].
    #[must_use]
    pub fn table(self) -> u32 {
        self.table
    }

    /// The name's slot in the issuing table.
    #[must_use]
    pub fn index(self) -> u32 {
        self.index
    }
}

/// A validated, canonical (lowercase, no trailing dot) domain name.
///
/// # Example
///
/// ```
/// use spamward_dns::DomainName;
/// let d: DomainName = "SMTP.Foo.NET.".parse()?;
/// assert_eq!(d.as_str(), "smtp.foo.net");
/// assert_eq!(d.parent().unwrap().as_str(), "foo.net");
/// # Ok::<(), spamward_dns::ParseNameError>(())
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DomainName {
    text: Arc<str>,
    id: Option<NameId>,
}

// Equality, ordering and hashing are all defined by the canonical text;
// the interned id is a fast path that agrees with the text because a
// NameTable is a bijection between its ids and its texts.

impl PartialEq for DomainName {
    fn eq(&self, other: &Self) -> bool {
        match (self.id, other.id) {
            (Some(a), Some(b)) if a.table() == b.table() => a.index() == b.index(),
            _ => Arc::ptr_eq(&self.text, &other.text) || self.text == other.text,
        }
    }
}

impl Eq for DomainName {}

impl PartialOrd for DomainName {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for DomainName {
    fn cmp(&self, other: &Self) -> Ordering {
        if self == other {
            // Covers the id and pointer fast paths without re-deriving them.
            return Ordering::Equal;
        }
        self.text.cmp(&other.text)
    }
}

impl Hash for DomainName {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Must agree with Eq across interned and uninterned copies of the
        // same name, so only the text participates.
        self.text.hash(state);
    }
}

/// Error parsing a [`DomainName`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseNameError {
    /// The name was empty (or only a trailing dot).
    Empty,
    /// The name exceeded 253 characters.
    TooLong,
    /// A label was empty, longer than 63 characters, or had a bad edge char.
    BadLabel(String),
    /// A character outside `[a-z0-9-]` appeared.
    BadChar(char),
}

impl fmt::Display for ParseNameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseNameError::Empty => write!(f, "empty domain name"),
            ParseNameError::TooLong => write!(f, "domain name longer than 253 characters"),
            ParseNameError::BadLabel(l) => write!(f, "invalid label {l:?}"),
            ParseNameError::BadChar(c) => write!(f, "invalid character {c:?} in domain name"),
        }
    }
}

impl std::error::Error for ParseNameError {}

impl DomainName {
    /// Parses and canonicalizes a name.
    ///
    /// # Errors
    ///
    /// Returns [`ParseNameError`] when the name violates the LDH
    /// (letters-digits-hyphen) rule, has empty/oversized labels, or is
    /// empty/too long overall.
    pub fn parse(s: &str) -> Result<Self, ParseNameError> {
        let trimmed = s.strip_suffix('.').unwrap_or(s);
        if trimmed.is_empty() {
            return Err(ParseNameError::Empty);
        }
        if trimmed.len() > 253 {
            return Err(ParseNameError::TooLong);
        }
        let lower = trimmed.to_ascii_lowercase();
        for label in lower.split('.') {
            if label.is_empty() || label.len() > 63 {
                return Err(ParseNameError::BadLabel(label.to_owned()));
            }
            if label.starts_with('-') || label.ends_with('-') {
                return Err(ParseNameError::BadLabel(label.to_owned()));
            }
            for c in label.chars() {
                if !(c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-' || c == '_') {
                    return Err(ParseNameError::BadChar(c));
                }
            }
        }
        Ok(DomainName { text: Arc::from(lower), id: None })
    }

    /// The canonical textual form.
    pub fn as_str(&self) -> &str {
        &self.text
    }

    /// The id assigned by a [`NameTable`], if this copy is interned.
    #[must_use]
    pub fn id(&self) -> Option<NameId> {
        self.id
    }

    /// The labels, most-specific first.
    pub fn labels(&self) -> impl Iterator<Item = &str> {
        self.text.split('.')
    }

    /// The name with the leftmost label removed, or `None` at a TLD.
    pub fn parent(&self) -> Option<DomainName> {
        self.text.split_once('.').map(|(_, rest)| DomainName { text: Arc::from(rest), id: None })
    }

    /// Whether `self` equals `other` or is a subdomain of it.
    pub fn is_subdomain_of(&self, other: &DomainName) -> bool {
        self == other
            || (self.text.len() > other.text.len()
                && self.text.ends_with(&*other.text)
                && self.text.as_bytes()[self.text.len() - other.text.len() - 1] == b'.')
    }

    /// Prefixes a label, e.g. `"smtp"` + `foo.net` → `smtp.foo.net`.
    ///
    /// # Errors
    ///
    /// Returns [`ParseNameError`] if the resulting name is invalid.
    pub fn prefixed(&self, label: &str) -> Result<DomainName, ParseNameError> {
        DomainName::parse(&format!("{label}.{}", self.text))
    }
}

impl FromStr for DomainName {
    type Err = ParseNameError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        DomainName::parse(s)
    }
}

impl fmt::Display for DomainName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

impl AsRef<str> for DomainName {
    fn as_ref(&self) -> &str {
        &self.text
    }
}

/// A `u32` symbol table for [`DomainName`]s.
///
/// Interning deduplicates the backing text (one `Arc<str>` per distinct
/// name, shared by every interned copy) and stamps each name with a
/// [`NameId`], which turns comparisons between two names from the same
/// table into integer compares. Tables are identified by a caller-chosen
/// `tag`; id fast paths only apply when both names carry the same tag, so
/// mixing tables is safe (just slower).
///
/// # Example
///
/// ```
/// use spamward_dns::NameTable;
/// let mut names = NameTable::new(1);
/// let a = names.intern("foo.net")?;
/// let b = names.intern("FOO.net.")?;
/// assert_eq!(a.id(), b.id());
/// assert_eq!(names.len(), 1);
/// # Ok::<(), spamward_dns::ParseNameError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct NameTable {
    tag: u32,
    names: Vec<Arc<str>>,
    index: BTreeMap<Arc<str>, u32>,
}

impl NameTable {
    /// An empty table identified by `tag`.
    #[must_use]
    pub fn new(tag: u32) -> Self {
        NameTable { tag, names: Vec::new(), index: BTreeMap::new() }
    }

    /// The table's tag.
    #[must_use]
    pub fn tag(&self) -> u32 {
        self.tag
    }

    /// Parses `s` and interns it, returning the interned name.
    ///
    /// # Errors
    ///
    /// Returns [`ParseNameError`] when `s` is not a valid domain name.
    pub fn intern(&mut self, s: &str) -> Result<DomainName, ParseNameError> {
        let name = DomainName::parse(s)?;
        Ok(self.intern_name(&name))
    }

    /// Interns an already-validated name, sharing its text allocation.
    ///
    /// # Panics
    ///
    /// Panics if the table exceeds `u32::MAX` entries.
    pub fn intern_name(&mut self, name: &DomainName) -> DomainName {
        if let Some(&index) = self.index.get(name.as_str()) {
            return DomainName {
                text: Arc::clone(&self.names[index as usize]),
                id: Some(NameId { table: self.tag, index }),
            };
        }
        let index = u32::try_from(self.names.len()).expect("name table holds at most 2^32 names");
        self.names.push(Arc::clone(&name.text));
        self.index.insert(Arc::clone(&name.text), index);
        DomainName { text: Arc::clone(&name.text), id: Some(NameId { table: self.tag, index }) }
    }

    /// Looks an interned name back up by id.
    ///
    /// Returns `None` for ids from other tables or out-of-range indices.
    #[must_use]
    pub fn get(&self, id: NameId) -> Option<DomainName> {
        if id.table != self.tag {
            return None;
        }
        self.names
            .get(id.index as usize)
            .map(|text| DomainName { text: Arc::clone(text), id: Some(id) })
    }

    /// The number of distinct names interned.
    #[must_use]
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the table is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn canonicalizes_case_and_trailing_dot() {
        let d = DomainName::parse("MAIL.Example.COM.").unwrap();
        assert_eq!(d.as_str(), "mail.example.com");
        assert_eq!(d, DomainName::parse("mail.example.com").unwrap());
    }

    #[test]
    fn rejects_bad_names() {
        assert_eq!(DomainName::parse(""), Err(ParseNameError::Empty));
        assert_eq!(DomainName::parse("."), Err(ParseNameError::Empty));
        assert!(matches!(DomainName::parse("a..b"), Err(ParseNameError::BadLabel(_))));
        assert!(matches!(DomainName::parse("-bad.com"), Err(ParseNameError::BadLabel(_))));
        assert!(matches!(DomainName::parse("bad-.com"), Err(ParseNameError::BadLabel(_))));
        assert!(matches!(DomainName::parse("sp ace.com"), Err(ParseNameError::BadChar(' '))));
        let long_label = "x".repeat(64);
        assert!(matches!(
            DomainName::parse(&format!("{long_label}.com")),
            Err(ParseNameError::BadLabel(_))
        ));
        let long_name = format!("{}.com", "abcde.".repeat(50));
        assert_eq!(DomainName::parse(&long_name), Err(ParseNameError::TooLong));
    }

    #[test]
    fn parent_chain() {
        let d = DomainName::parse("a.b.c").unwrap();
        let p = d.parent().unwrap();
        assert_eq!(p.as_str(), "b.c");
        assert_eq!(p.parent().unwrap().as_str(), "c");
        assert_eq!(p.parent().unwrap().parent(), None);
    }

    #[test]
    fn subdomain_relation() {
        let base = DomainName::parse("foo.net").unwrap();
        let sub = DomainName::parse("smtp.foo.net").unwrap();
        let other = DomainName::parse("notfoo.net").unwrap();
        assert!(sub.is_subdomain_of(&base));
        assert!(base.is_subdomain_of(&base));
        assert!(!base.is_subdomain_of(&sub));
        assert!(!other.is_subdomain_of(&base), "suffix match must respect label boundary");
    }

    #[test]
    fn prefixed_builds_child() {
        let base = DomainName::parse("foo.net").unwrap();
        assert_eq!(base.prefixed("smtp").unwrap().as_str(), "smtp.foo.net");
        assert!(base.prefixed("bad label").is_err());
    }

    #[test]
    fn labels_iterate_left_to_right() {
        let d = DomainName::parse("a.b.c").unwrap();
        assert_eq!(d.labels().collect::<Vec<_>>(), vec!["a", "b", "c"]);
    }

    #[test]
    fn clone_shares_the_text_allocation() {
        let a = DomainName::parse("mail.foo.net").unwrap();
        let b = a.clone();
        assert!(std::ptr::eq(a.as_str(), b.as_str()), "clone must not copy the text");
    }

    #[test]
    fn interning_dedupes_and_assigns_stable_ids() {
        let mut table = NameTable::new(9);
        let a = table.intern("foo.net").unwrap();
        let b = table.intern("bar.net").unwrap();
        let a2 = table.intern("FOO.net.").unwrap();
        assert_eq!(table.len(), 2);
        assert_eq!(a.id(), a2.id());
        assert_ne!(a.id(), b.id());
        assert_eq!(a.id().unwrap().table(), 9);
        assert_eq!(a, a2);
        assert!(std::ptr::eq(a.as_str(), a2.as_str()), "interned copies share one text");
        assert_eq!(table.get(a.id().unwrap()).unwrap(), a);
    }

    #[test]
    fn interned_and_uninterned_copies_agree_on_all_traits() {
        use std::collections::hash_map::DefaultHasher;
        let mut table = NameTable::new(1);
        let plain = DomainName::parse("smtp.foo.net").unwrap();
        let interned = table.intern_name(&plain);
        assert_eq!(plain, interned);
        assert_eq!(plain.cmp(&interned), Ordering::Equal);
        let hash = |d: &DomainName| {
            let mut h = DefaultHasher::new();
            d.hash(&mut h);
            h.finish()
        };
        assert_eq!(hash(&plain), hash(&interned));
    }

    #[test]
    fn ids_from_different_tables_never_alias() {
        let mut t1 = NameTable::new(1);
        let mut t2 = NameTable::new(2);
        let a = t1.intern("foo.net").unwrap();
        let b = t2.intern("bar.net").unwrap();
        // Same index, different tables: must compare by text, not by id.
        assert_eq!(a.id().unwrap().index(), b.id().unwrap().index());
        assert_ne!(a, b);
        assert!(t1.get(b.id().unwrap()).is_none());
    }

    #[test]
    fn interned_ordering_matches_text_ordering() {
        let mut table = NameTable::new(3);
        // Intern in an order that disagrees with lexicographic order.
        let z = table.intern("zeta.net").unwrap();
        let a = table.intern("alpha.net").unwrap();
        let m = table.intern("mid.net").unwrap();
        let mut v = vec![z.clone(), a.clone(), m.clone()];
        v.sort();
        assert_eq!(v, vec![a, m, z], "sort order is the text order, never the id order");
    }

    proptest! {
        #[test]
        fn prop_parse_is_idempotent(s in "[a-z0-9]{1,10}(\\.[a-z0-9]{1,10}){0,3}") {
            let once = DomainName::parse(&s).unwrap();
            let twice = DomainName::parse(once.as_str()).unwrap();
            prop_assert_eq!(once, twice);
        }

        #[test]
        fn prop_case_insensitive(s in "[a-zA-Z]{1,12}\\.[a-zA-Z]{2,6}") {
            let lower = DomainName::parse(&s.to_ascii_lowercase()).unwrap();
            let mixed = DomainName::parse(&s).unwrap();
            prop_assert_eq!(lower, mixed);
        }

        #[test]
        fn prop_interning_preserves_comparisons(
            names in proptest::collection::vec("[a-z0-9]{1,8}\\.[a-z]{2,4}", 2..12)
        ) {
            let mut table = NameTable::new(7);
            let plain: Vec<DomainName> =
                names.iter().map(|s| DomainName::parse(s).unwrap()).collect();
            let interned: Vec<DomainName> =
                plain.iter().map(|d| table.intern_name(d)).collect();
            for (i, a) in plain.iter().enumerate() {
                for (j, b) in plain.iter().enumerate() {
                    prop_assert_eq!(a.cmp(b), interned[i].cmp(&interned[j]));
                    prop_assert_eq!(a == b, interned[i] == interned[j]);
                    prop_assert_eq!(a.cmp(b), a.cmp(&interned[j]));
                }
            }
        }
    }
}
