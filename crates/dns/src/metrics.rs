//! Metric name constants and collectors for the DNS crate.
//!
//! All `dns.*` registry names live here (the O1 lint rule); hot paths only
//! bump the plain counter fields of
//! [`ResolverStats`](crate::resolver::ResolverStats).

use crate::authority::Authority;
use crate::resolver::ResolverStats;
use spamward_obs::Registry;

/// A queries issued by the resolver.
pub const QUERY_A: &str = "dns.query.a";
/// MX queries issued by the resolver.
pub const QUERY_MX: &str = "dns.query.mx";
/// CNAME queries issued by the resolver.
pub const QUERY_CNAME: &str = "dns.query.cname";
/// Queries of any other record type.
pub const QUERY_OTHER: &str = "dns.query.other";
/// Queries answered from the resolver cache.
pub const CACHE_HIT: &str = "dns.cache.hit";
/// Queries forwarded to the authority.
pub const CACHE_MISS: &str = "dns.cache.miss";
/// Answers that came back NXDOMAIN.
pub const RCODE_NXDOMAIN: &str = "dns.rcode.nxdomain";
/// Answers that came back SERVFAIL.
pub const RCODE_SERVFAIL: &str = "dns.rcode.servfail";
/// MX resolutions that fell back to the implicit (apex A) exchanger.
pub const IMPLICIT_MX_FALLBACK: &str = "dns.resolve.implicit_mx_fallback";
/// Queries the authoritative server answered (all resolvers combined).
pub const AUTHORITY_SERVED: &str = "dns.authority.queries_served";
/// Resolutions forced to SERVFAIL by an injected DNS outage window.
pub const FAULT_SERVFAIL: &str = "net.fault.dns.servfail";
/// Resolutions that paid the slow-resolver surcharge.
pub const FAULT_SLOWED: &str = "net.fault.dns.slowed";

/// Exports injected-fault counters. Only call when a plan is installed (the
/// MTA world collector gates on [`Resolver::faults`]); fault-free runs keep
/// their exact metric composition.
///
/// [`Resolver::faults`]: crate::Resolver::faults
pub fn collect_resolver_faults(stats: &spamward_net::faults::DnsFaultStats, reg: &mut Registry) {
    reg.record_counter(FAULT_SERVFAIL, stats.servfails);
    reg.record_counter(FAULT_SLOWED, stats.slowed);
}

/// Exports resolver statistics under the canonical `dns.*` names.
pub fn collect_resolver(stats: &ResolverStats, reg: &mut Registry) {
    reg.record_counter(QUERY_A, stats.a_queries);
    reg.record_counter(QUERY_MX, stats.mx_queries);
    reg.record_counter(QUERY_CNAME, stats.cname_queries);
    reg.record_counter(QUERY_OTHER, stats.other_queries);
    reg.record_counter(CACHE_HIT, stats.hits);
    reg.record_counter(CACHE_MISS, stats.misses);
    reg.record_counter(RCODE_NXDOMAIN, stats.nxdomain);
    reg.record_counter(RCODE_SERVFAIL, stats.servfail);
    reg.record_counter(IMPLICIT_MX_FALLBACK, stats.implicit_mx_fallbacks);
}

/// Exports authority-side counters.
pub fn collect_authority(authority: &Authority, reg: &mut Registry) {
    reg.record_counter(AUTHORITY_SERVED, authority.queries_served());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zone::Zone;
    use crate::Resolver;
    use spamward_sim::SimTime;
    use std::net::Ipv4Addr;

    #[test]
    fn collectors_mirror_the_stats_fields() {
        let mut dns = Authority::new();
        dns.publish(Zone::no_mx("bar.org".parse().unwrap(), Ipv4Addr::new(192, 0, 2, 7)));
        let mut r = Resolver::new();
        r.resolve_mx(&mut dns, &"bar.org".parse().unwrap(), SimTime::ZERO).unwrap();
        let _ = r.resolve_mx(&mut dns, &"ghost.example".parse().unwrap(), SimTime::ZERO);

        let mut reg = Registry::new();
        collect_resolver(&r.stats(), &mut reg);
        collect_authority(&dns, &mut reg);

        assert_eq!(reg.counter(QUERY_MX), Some(r.stats().mx_queries));
        assert_eq!(reg.counter(IMPLICIT_MX_FALLBACK), Some(1));
        assert_eq!(reg.counter(RCODE_NXDOMAIN), Some(r.stats().nxdomain));
        assert!(reg.counter(RCODE_NXDOMAIN).unwrap() >= 1, "ghost.example is NXDOMAIN");
        assert_eq!(reg.counter(AUTHORITY_SERVED), Some(dns.queries_served()));
        assert!(reg.len() >= 10);
    }
}
