//! DNS substrate for the `spamward` suite.
//!
//! Nolisting is "actually applied at the DNS level, and therefore at the
//! domain granularity" (paper §IV-A): a domain advertises a primary MX that
//! resolves to a machine with port 25 closed, and a working secondary. This
//! crate provides everything the experiments need from DNS:
//!
//! * [`DomainName`] — validated, lowercased domain names.
//! * [`RecordData`]/[`ResourceRecord`] — A, MX, NS and TXT records.
//! * [`Zone`] — a domain's record set, with builders for ordinary
//!   configurations, for [nolisting](zone::Zone::nolisting) and for the
//!   misconfiguration modes the Fig. 2 survey encounters (no MX at all,
//!   dangling MX targets, lame servers).
//! * [`Authority`] — the simulated global DNS answering typed queries.
//! * [`Resolver`] — a caching stub resolver implementing the MX resolution
//!   algorithm mail clients use (RFC 5321 §5.1), including the implicit-MX
//!   fallback and the follow-up A lookups the paper's "parallel scanner"
//!   had to perform for MX replies lacking glue.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod authority;
pub mod metrics;
mod name;
mod record;
mod resolver;
pub mod zone;

pub use authority::{Authority, QueryOutcome, Rcode};
pub use name::{DomainName, NameId, NameTable, ParseNameError};
pub use record::{RecordData, RecordType, ResourceRecord};
pub use resolver::{MxHost, ResolveError, Resolver, ResolverStats};
pub use zone::Zone;
