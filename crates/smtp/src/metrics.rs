//! Metric name constants and collectors for the SMTP crate.
//!
//! All `smtp.*` registry names live here (the O1 lint rule). The server
//! state machine bumps plain [`SessionMetrics`] fields per command/reply —
//! an O(1) field update on the wire hot path — and a receiving MTA absorbs
//! each finished session's snapshot, exporting names only at collect time.

use crate::command::Command;
use crate::reply::{codes, Reply};
use spamward_obs::Registry;

/// Commands the server parsed and dispatched.
pub const COMMANDS: &str = "smtp.server.commands";
/// Replies in the 2xx (success) class.
pub const REPLIES_2XX: &str = "smtp.server.replies.2xx";
/// Replies in the 3xx (intermediate, e.g. 354) class.
pub const REPLIES_3XX: &str = "smtp.server.replies.3xx";
/// Replies in the 4xx (transient failure) class — the greylisting class.
pub const REPLIES_4XX: &str = "smtp.server.replies.4xx";
/// Replies in the 5xx (permanent failure) class.
pub const REPLIES_5XX: &str = "smtp.server.replies.5xx";
/// Commands the server did not recognize (500) — a dialect-violation proxy.
pub const UNRECOGNIZED: &str = "smtp.server.unrecognized";
/// Commands issued out of RFC 5321 sequence (503).
pub const BAD_SEQUENCE: &str = "smtp.server.bad_sequence";
/// Unrecognized plus out-of-sequence commands: dialect violations.
pub const DIALECT_VIOLATIONS: &str = "smtp.server.dialect_violations";

/// Per-session protocol counters, kept as plain fields so the state machine
/// pays one integer increment per event.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionMetrics {
    /// Commands parsed and dispatched.
    pub commands: u64,
    /// Replies sent, by first digit.
    pub replies_2xx: u64,
    /// 3xx replies (354).
    pub replies_3xx: u64,
    /// 4xx replies (greylist defers, transient failures).
    pub replies_4xx: u64,
    /// 5xx replies (rejections).
    pub replies_5xx: u64,
    /// Unrecognized commands (500).
    pub unrecognized: u64,
    /// Out-of-sequence commands (503).
    pub bad_sequence: u64,
}

impl SessionMetrics {
    /// Notes one parsed command.
    #[inline]
    pub fn on_command(&mut self, cmd: &Command) {
        self.commands += 1;
        if matches!(cmd, Command::Unknown { .. }) {
            self.unrecognized += 1;
        }
    }

    /// Notes one reply about to go out.
    #[inline]
    pub fn on_reply(&mut self, reply: &Reply) {
        match reply.code() / 100 {
            2 => self.replies_2xx += 1,
            3 => self.replies_3xx += 1,
            4 => self.replies_4xx += 1,
            _ => self.replies_5xx += 1,
        }
        if reply.code() == codes::BAD_SEQUENCE {
            self.bad_sequence += 1;
        }
    }

    /// Unrecognized plus out-of-sequence commands — the sessions-eye view
    /// of dialect violations.
    pub fn dialect_violations(&self) -> u64 {
        self.unrecognized + self.bad_sequence
    }

    /// Folds a finished session's counters into an accumulator.
    pub fn merge(&mut self, other: &SessionMetrics) {
        self.commands += other.commands;
        self.replies_2xx += other.replies_2xx;
        self.replies_3xx += other.replies_3xx;
        self.replies_4xx += other.replies_4xx;
        self.replies_5xx += other.replies_5xx;
        self.unrecognized += other.unrecognized;
        self.bad_sequence += other.bad_sequence;
    }
}

/// Exports session counters under the canonical `smtp.*` names.
pub fn collect(m: &SessionMetrics, reg: &mut Registry) {
    reg.record_counter(COMMANDS, m.commands);
    reg.record_counter(REPLIES_2XX, m.replies_2xx);
    reg.record_counter(REPLIES_3XX, m.replies_3xx);
    reg.record_counter(REPLIES_4XX, m.replies_4xx);
    reg.record_counter(REPLIES_5XX, m.replies_5xx);
    reg.record_counter(UNRECOGNIZED, m.unrecognized);
    reg.record_counter(BAD_SEQUENCE, m.bad_sequence);
    reg.record_counter(DIALECT_VIOLATIONS, m.dialect_violations());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{AcceptAll, ServerSession};
    use spamward_sim::SimTime;
    use std::net::Ipv4Addr;

    #[test]
    fn session_counts_commands_and_reply_classes() {
        let mut policy = AcceptAll;
        let mut s = ServerSession::new("mx.test", Ipv4Addr::new(10, 0, 0, 1));
        let now = SimTime::ZERO;
        let _ = s.open(now, &mut policy);
        let _ = s.handle(now, &Command::parse("HELO bot.local"), &mut policy);
        let _ = s.handle(now, &Command::parse("DATA"), &mut policy); // 503: no MAIL yet
        let _ = s.handle(now, &Command::parse("BOGUS"), &mut policy); // 500
        let _ = s.handle(now, &Command::parse("QUIT"), &mut policy);

        let m = *s.metrics();
        assert_eq!(m.commands, 4);
        assert_eq!(m.replies_2xx, 3, "banner, HELO, QUIT");
        assert_eq!(m.bad_sequence, 1);
        assert_eq!(m.unrecognized, 1);
        assert_eq!(m.dialect_violations(), 2);

        let mut reg = Registry::new();
        collect(&m, &mut reg);
        assert_eq!(reg.counter(COMMANDS), Some(4));
        assert_eq!(reg.counter(DIALECT_VIOLATIONS), Some(2));
    }

    #[test]
    fn merge_accumulates_all_fields() {
        let mut a = SessionMetrics { commands: 1, replies_4xx: 2, ..Default::default() };
        let b =
            SessionMetrics { commands: 3, replies_4xx: 1, bad_sequence: 1, ..Default::default() };
        a.merge(&b);
        assert_eq!(a.commands, 4);
        assert_eq!(a.replies_4xx, 3);
        assert_eq!(a.bad_sequence, 1);
    }
}
