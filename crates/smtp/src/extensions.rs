//! ESMTP service extensions (RFC 1869 / 5321 §4.1.1.1).
//!
//! The experiments don't need TLS or 8-bit transport, but the *presence*
//! of extension negotiation matters twice over: capability lines are part
//! of the dialect surface that fingerprints senders, and the SIZE
//! extension gives the receiving MTA its first pre-acceptance rejection
//! point (an oversized MAIL FROM dies before any body is transferred).

use serde::{Deserialize, Serialize};

/// The extension set a server advertises in its EHLO response.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Capabilities {
    /// Maximum accepted message size in bytes; advertised as `SIZE n` and
    /// enforced against both the `MAIL FROM ... SIZE=` declaration and the
    /// actual body. `None` disables the extension.
    pub size_limit: Option<u64>,
    /// Advertise `PIPELINING`.
    pub pipelining: bool,
    /// Advertise `STARTTLS` (negotiation itself is stubbed: accepting it
    /// returns 454 so sessions continue in the clear).
    pub starttls: bool,
    /// Advertise `8BITMIME`.
    pub eight_bit_mime: bool,
    /// Advertise `ENHANCEDSTATUSCODES`.
    pub enhanced_status: bool,
}

impl Default for Capabilities {
    /// A Postfix-like default: 10 MiB SIZE, PIPELINING, 8BITMIME and
    /// enhanced status codes; no STARTTLS.
    fn default() -> Self {
        Capabilities {
            size_limit: Some(10 * 1024 * 1024),
            pipelining: true,
            starttls: false,
            eight_bit_mime: true,
            enhanced_status: true,
        }
    }
}

impl Capabilities {
    /// A minimal server advertising nothing (HELO-era behaviour).
    pub fn none() -> Self {
        Capabilities {
            size_limit: None,
            pipelining: false,
            starttls: false,
            eight_bit_mime: false,
            enhanced_status: false,
        }
    }

    /// The EHLO continuation lines (everything after the greeting line).
    pub fn ehlo_lines(&self) -> Vec<String> {
        let mut lines = Vec::new();
        if self.pipelining {
            lines.push("PIPELINING".to_owned());
        }
        if let Some(limit) = self.size_limit {
            lines.push(format!("SIZE {limit}"));
        }
        if self.eight_bit_mime {
            lines.push("8BITMIME".to_owned());
        }
        if self.starttls {
            lines.push("STARTTLS".to_owned());
        }
        if self.enhanced_status {
            lines.push("ENHANCEDSTATUSCODES".to_owned());
        }
        lines
    }

    /// Parses capability lines back from an EHLO reply (the client side of
    /// negotiation; also used by fingerprinting).
    pub fn from_ehlo_lines<'a>(lines: impl IntoIterator<Item = &'a str>) -> Self {
        let mut caps = Capabilities::none();
        for line in lines {
            let upper = line.trim().to_ascii_uppercase();
            if upper == "PIPELINING" {
                caps.pipelining = true;
            } else if upper == "8BITMIME" {
                caps.eight_bit_mime = true;
            } else if upper == "STARTTLS" {
                caps.starttls = true;
            } else if upper == "ENHANCEDSTATUSCODES" {
                caps.enhanced_status = true;
            } else if let Some(rest) = upper.strip_prefix("SIZE") {
                caps.size_limit = rest.trim().parse().ok();
            }
        }
        caps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_advertises_postfix_like_set() {
        let caps = Capabilities::default();
        let lines = caps.ehlo_lines();
        assert!(lines.contains(&"PIPELINING".to_owned()));
        assert!(lines.iter().any(|l| l.starts_with("SIZE ")));
        assert!(lines.contains(&"8BITMIME".to_owned()));
        assert!(!lines.contains(&"STARTTLS".to_owned()));
    }

    #[test]
    fn none_advertises_nothing() {
        assert!(Capabilities::none().ehlo_lines().is_empty());
    }

    #[test]
    fn roundtrip_through_ehlo_lines() {
        let caps = Capabilities {
            size_limit: Some(5_000_000),
            pipelining: true,
            starttls: true,
            eight_bit_mime: false,
            enhanced_status: true,
        };
        let lines = caps.ehlo_lines();
        let parsed = Capabilities::from_ehlo_lines(lines.iter().map(String::as_str));
        assert_eq!(parsed, caps);
    }

    #[test]
    fn parse_tolerates_case_and_unknowns() {
        let caps = Capabilities::from_ehlo_lines(vec!["pipelining", "size 1234", "X-UNKNOWN foo"]);
        assert!(caps.pipelining);
        assert_eq!(caps.size_limit, Some(1234));
        assert!(!caps.starttls);
    }

    #[test]
    fn malformed_size_ignored() {
        let caps = Capabilities::from_ehlo_lines(vec!["SIZE notanumber"]);
        assert_eq!(caps.size_limit, None);
    }
}
