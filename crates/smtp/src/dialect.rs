//! SMTP client dialects.
//!
//! Stringhini et al. (B@bel, USENIX Security 2012) showed that the small
//! deviations in how a client speaks SMTP — HELO vs EHLO, what it puts in
//! the greeting, whether it bothers to QUIT — fingerprint the software, and
//! the paper builds on that observation: fire-and-forget bots implement
//! "part of the message delivery protocol in custom ways". A [`Dialect`]
//! captures those session-level choices; retry behaviour (the axis
//! greylisting tests) lives one layer up, in the sending MTA / bot models.

use serde::{Deserialize, Serialize};
use std::fmt;

/// What a client presents as its HELO/EHLO argument.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HeloStyle {
    /// Its own (claimed) fully-qualified domain name.
    OwnFqdn(String),
    /// A bare address literal like `[203.0.113.9]` — common in bots.
    AddressLiteral,
    /// A hardcoded string shipped in the malware binary.
    Fixed(String),
}

/// Session-level protocol personality of a sending client.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Dialect {
    /// Human-readable name ("postfix", "cutwail", ...).
    pub name: String,
    /// `true` → opens with EHLO, falling back to HELO on 5xx; `false` →
    /// HELO only (old or minimal implementations).
    pub uses_ehlo: bool,
    /// What goes after the greeting verb.
    pub helo_style: HeloStyle,
    /// Whether the client politely QUITs after a failed transaction.
    /// Fire-and-forget bots typically just drop the connection.
    pub quits_on_failure: bool,
    /// Whether a transient error on the *first* RCPT aborts the whole
    /// transaction immediately (bots privileging volume over delivery)
    /// instead of trying the remaining recipients.
    pub aborts_on_first_rcpt_error: bool,
    /// Whether the client issues RSET before reusing a session (compliant
    /// MTAs) — recorded for fingerprinting.
    pub resets_between_messages: bool,
    /// Whether the client waits for the 220 banner before talking.
    /// Fire-and-forget bots often blast their greeting immediately — the
    /// "early talker" signature postscreen-style filters catch.
    pub waits_for_banner: bool,
}

impl Dialect {
    /// The dialect of a well-behaved, RFC-compliant MTA.
    pub fn compliant_mta(fqdn: &str) -> Self {
        Dialect {
            name: "compliant-mta".into(),
            uses_ehlo: true,
            helo_style: HeloStyle::OwnFqdn(fqdn.to_owned()),
            quits_on_failure: true,
            aborts_on_first_rcpt_error: false,
            resets_between_messages: true,
            waits_for_banner: true,
        }
    }

    /// A minimal fire-and-forget bot dialect.
    pub fn minimal_bot(name: &str) -> Self {
        Dialect {
            name: name.to_owned(),
            uses_ehlo: false,
            helo_style: HeloStyle::AddressLiteral,
            quits_on_failure: false,
            aborts_on_first_rcpt_error: true,
            resets_between_messages: false,
            waits_for_banner: false,
        }
    }

    /// The greeting argument for a client at `ip`.
    pub fn helo_argument(&self, ip: std::net::Ipv4Addr) -> String {
        match &self.helo_style {
            HeloStyle::OwnFqdn(fqdn) => fqdn.clone(),
            HeloStyle::AddressLiteral => format!("[{ip}]"),
            HeloStyle::Fixed(s) => s.clone(),
        }
    }

    /// The coarse feature vector used to fingerprint a session transcript.
    pub fn fingerprint(&self) -> DialectFingerprint {
        DialectFingerprint {
            greets_with_ehlo: self.uses_ehlo,
            helo_is_literal: matches!(self.helo_style, HeloStyle::AddressLiteral),
            quits_politely: self.quits_on_failure,
            retries_remaining_rcpts: !self.aborts_on_first_rcpt_error,
            early_talker: !self.waits_for_banner,
        }
    }
}

impl fmt::Display for Dialect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// A coarse behavioural fingerprint, comparable across observed sessions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DialectFingerprint {
    /// Opens with EHLO rather than HELO.
    pub greets_with_ehlo: bool,
    /// Greeting argument is an address literal.
    pub helo_is_literal: bool,
    /// Sends QUIT even after failures.
    pub quits_politely: bool,
    /// Continues with remaining recipients after a RCPT error.
    pub retries_remaining_rcpts: bool,
    /// Talks before the banner arrives.
    pub early_talker: bool,
}

impl DialectFingerprint {
    /// Hamming distance between two fingerprints (0–5).
    pub fn distance(self, other: DialectFingerprint) -> u32 {
        u32::from(self.greets_with_ehlo != other.greets_with_ehlo)
            + u32::from(self.helo_is_literal != other.helo_is_literal)
            + u32::from(self.quits_politely != other.quits_politely)
            + u32::from(self.retries_remaining_rcpts != other.retries_remaining_rcpts)
            + u32::from(self.early_talker != other.early_talker)
    }

    /// Whether this looks like full MTA software rather than a bot routine
    /// (heuristic: EHLO + polite QUIT + waits its turn).
    pub fn looks_like_mta(self) -> bool {
        self.greets_with_ehlo && self.quits_politely && !self.helo_is_literal && !self.early_talker
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    #[test]
    fn compliant_and_bot_presets_differ() {
        let mta = Dialect::compliant_mta("mail.example.org");
        let bot = Dialect::minimal_bot("cutwail");
        assert!(mta.uses_ehlo && !bot.uses_ehlo);
        assert!(mta.fingerprint().looks_like_mta());
        assert!(!bot.fingerprint().looks_like_mta());
        assert_eq!(mta.fingerprint().distance(bot.fingerprint()), 5);
        assert_eq!(mta.fingerprint().distance(mta.fingerprint()), 0);
    }

    #[test]
    fn helo_argument_styles() {
        let ip = Ipv4Addr::new(203, 0, 113, 9);
        assert_eq!(Dialect::compliant_mta("m.example").helo_argument(ip), "m.example");
        assert_eq!(Dialect::minimal_bot("x").helo_argument(ip), "[203.0.113.9]");
        let fixed = Dialect {
            helo_style: HeloStyle::Fixed("localhost".into()),
            ..Dialect::minimal_bot("y")
        };
        assert_eq!(fixed.helo_argument(ip), "localhost");
    }
}
