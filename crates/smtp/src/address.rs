//! Email addresses and reverse paths.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// A validated `local-part@domain` address, canonicalized to a lowercase
/// domain (the local part keeps its case per RFC 5321, but comparisons in
/// the greylist normalize it).
///
/// # Example
///
/// ```
/// use spamward_smtp::EmailAddress;
/// let a: EmailAddress = "Alice@Example.COM".parse()?;
/// assert_eq!(a.domain(), "example.com");
/// assert_eq!(a.local_part(), "Alice");
/// assert_eq!(a.to_string(), "Alice@example.com");
/// # Ok::<(), spamward_smtp::ParseAddressError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EmailAddress {
    local: String,
    domain: String,
}

/// Error parsing an [`EmailAddress`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseAddressError {
    /// No `@` separator found.
    MissingAt,
    /// Local part empty or containing forbidden characters.
    BadLocalPart,
    /// Domain empty or containing forbidden characters.
    BadDomain,
}

impl fmt::Display for ParseAddressError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseAddressError::MissingAt => write!(f, "address has no '@'"),
            ParseAddressError::BadLocalPart => write!(f, "invalid local part"),
            ParseAddressError::BadDomain => write!(f, "invalid domain part"),
        }
    }
}

impl std::error::Error for ParseAddressError {}

impl EmailAddress {
    /// Parses an address, accepting an optional surrounding `<...>` pair.
    ///
    /// # Errors
    ///
    /// Returns [`ParseAddressError`] for structurally invalid addresses.
    pub fn parse(s: &str) -> Result<Self, ParseAddressError> {
        let s = s.trim();
        let s = s.strip_prefix('<').and_then(|r| r.strip_suffix('>')).unwrap_or(s);
        let (local, domain) = s.rsplit_once('@').ok_or(ParseAddressError::MissingAt)?;
        if local.is_empty()
            || local.len() > 64
            || !local
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || "!#$%&'*+-/=?^_`{|}~.".contains(c))
            || local.starts_with('.')
            || local.ends_with('.')
            || local.contains("..")
        {
            return Err(ParseAddressError::BadLocalPart);
        }
        if domain.is_empty()
            || domain.len() > 253
            || !domain.chars().all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '.')
            || domain.starts_with('.')
            || domain.ends_with('.')
            || domain.contains("..")
        {
            return Err(ParseAddressError::BadDomain);
        }
        Ok(EmailAddress { local: local.to_owned(), domain: domain.to_ascii_lowercase() })
    }

    /// The part before the `@`, original case preserved.
    pub fn local_part(&self) -> &str {
        &self.local
    }

    /// The lowercased domain after the `@`.
    pub fn domain(&self) -> &str {
        &self.domain
    }

    /// The fully-lowercased form used as a greylist key.
    pub fn normalized(&self) -> String {
        format!("{}@{}", self.local.to_ascii_lowercase(), self.domain)
    }

    /// The address wrapped in angle brackets as it appears on the wire.
    pub fn to_path(&self) -> String {
        format!("<{self}>")
    }
}

impl FromStr for EmailAddress {
    type Err = ParseAddressError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        EmailAddress::parse(s)
    }
}

impl fmt::Display for EmailAddress {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.local, self.domain)
    }
}

/// The `MAIL FROM` argument: either the null path `<>` (bounces) or a real
/// address.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ReversePath {
    /// The null reverse path `<>` used for delivery status notifications.
    Null,
    /// An ordinary sender address.
    Address(EmailAddress),
}

impl ReversePath {
    /// Parses a `MAIL FROM` argument.
    ///
    /// # Errors
    ///
    /// Returns [`ParseAddressError`] when the argument is neither `<>` nor a
    /// valid address.
    pub fn parse(s: &str) -> Result<Self, ParseAddressError> {
        let t = s.trim();
        if t == "<>" {
            return Ok(ReversePath::Null);
        }
        EmailAddress::parse(t).map(ReversePath::Address)
    }

    /// The sender address, unless this is the null path.
    pub fn address(&self) -> Option<&EmailAddress> {
        match self {
            ReversePath::Null => None,
            ReversePath::Address(a) => Some(a),
        }
    }

    /// The lowercase string form used as a greylist key (`""` for null).
    pub fn normalized(&self) -> String {
        match self {
            ReversePath::Null => String::new(),
            ReversePath::Address(a) => a.normalized(),
        }
    }
}

impl fmt::Display for ReversePath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReversePath::Null => write!(f, "<>"),
            ReversePath::Address(a) => write!(f, "<{a}>"),
        }
    }
}

impl From<EmailAddress> for ReversePath {
    fn from(a: EmailAddress) -> Self {
        ReversePath::Address(a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn parses_and_canonicalizes() {
        let a = EmailAddress::parse("Bob.Smith@MAIL.Example.Org").unwrap();
        assert_eq!(a.local_part(), "Bob.Smith");
        assert_eq!(a.domain(), "mail.example.org");
        assert_eq!(a.normalized(), "bob.smith@mail.example.org");
    }

    #[test]
    fn angle_brackets_accepted() {
        let a = EmailAddress::parse("<user@example.com>").unwrap();
        assert_eq!(a.to_string(), "user@example.com");
        assert_eq!(a.to_path(), "<user@example.com>");
    }

    #[test]
    fn rejects_invalid() {
        assert_eq!(EmailAddress::parse("nodomain"), Err(ParseAddressError::MissingAt));
        assert_eq!(EmailAddress::parse("@example.com"), Err(ParseAddressError::BadLocalPart));
        assert_eq!(EmailAddress::parse(".dot@example.com"), Err(ParseAddressError::BadLocalPart));
        assert_eq!(EmailAddress::parse("a..b@example.com"), Err(ParseAddressError::BadLocalPart));
        assert_eq!(EmailAddress::parse("user@"), Err(ParseAddressError::BadDomain));
        assert_eq!(EmailAddress::parse("user@ex ample.com"), Err(ParseAddressError::BadDomain));
        assert_eq!(EmailAddress::parse("user@.com"), Err(ParseAddressError::BadDomain));
        let long_local = "x".repeat(65);
        assert_eq!(
            EmailAddress::parse(&format!("{long_local}@example.com")),
            Err(ParseAddressError::BadLocalPart)
        );
    }

    #[test]
    fn plus_and_specials_in_local_part() {
        assert!(EmailAddress::parse("user+tag@example.com").is_ok());
        assert!(EmailAddress::parse("o'brien@example.com").is_ok());
    }

    #[test]
    fn reverse_path_null_and_address() {
        assert_eq!(ReversePath::parse("<>").unwrap(), ReversePath::Null);
        assert_eq!(ReversePath::Null.normalized(), "");
        assert_eq!(ReversePath::Null.to_string(), "<>");
        assert_eq!(ReversePath::Null.address(), None);
        let p = ReversePath::parse("<spam@bot.net>").unwrap();
        assert_eq!(p.normalized(), "spam@bot.net");
        assert_eq!(p.to_string(), "<spam@bot.net>");
        assert!(p.address().is_some());
    }

    proptest! {
        #[test]
        fn prop_roundtrip(local in "[a-z][a-z0-9]{0,8}", domain in "[a-z]{1,8}\\.[a-z]{2,4}") {
            let s = format!("{local}@{domain}");
            let a = EmailAddress::parse(&s).unwrap();
            prop_assert_eq!(a.to_string(), s.clone());
            let b = EmailAddress::parse(&a.to_path()).unwrap();
            prop_assert_eq!(a, b);
        }
    }
}
