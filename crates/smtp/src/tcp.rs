//! Real-network transport: the same state machines over TCP.
//!
//! Everything else in the suite couples [`ClientSession`] and
//! [`ServerSession`] directly for simulation speed; this module runs them
//! over genuine sockets so the library doubles as a *working* SMTP
//! implementation — a greylisting server you can point `swaks` or a real
//! MTA at, and a client that can deliver to one.
//!
//! Time on the wire is real time: callers inject a [`Clock`] mapping it to
//! the virtual [`SimTime`](spamward_sim::SimTime) the policy layer expects — [`WallClock`] (the
//! workspace's one sanctioned host-clock reader, re-exported from
//! `spamward_sim::wall`) for real deployments, `ManualClock` for
//! deterministic tests.

use crate::client::{ClientAction, ClientSession, DeliveryOutcome};
use crate::reply::Reply;
use crate::server::{ServerPolicy, ServerSession};
use crate::wire::{dot_stuff, dot_unstuff};
use crate::Command;
use spamward_sim::Clock;
pub use spamward_sim::WallClock;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};

fn write_reply(stream: &mut TcpStream, reply: &Reply) -> io::Result<()> {
    stream.write_all(reply.to_wire().as_bytes())?;
    stream.flush()
}

/// Reads one (possibly multi-line) reply from the server side of `reader`.
fn read_reply(reader: &mut impl BufRead) -> io::Result<Reply> {
    let mut wire = String::new();
    loop {
        let mut line = String::new();
        let n = reader.read_line(&mut line)?;
        if n == 0 {
            return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "connection closed"));
        }
        let done = line.len() >= 4 && line.as_bytes()[3] == b' ';
        wire.push_str(line.trim_end_matches(['\r', '\n']));
        wire.push_str("\r\n");
        if done {
            break;
        }
    }
    Reply::from_wire(&wire)
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, format!("bad reply {wire:?}")))
}

/// Serves exactly one SMTP connection on `stream` with the given policy.
///
/// Returns the finished [`ServerSession`] (mailbox of accepted messages
/// included) when the client quits or disconnects.
///
/// # Errors
///
/// Propagates socket I/O errors; a client that just drops the connection
/// mid-session is *not* an error (fire-and-forget bots do exactly that).
pub fn serve_connection(
    mut stream: TcpStream,
    hostname: &str,
    policy: &mut dyn ServerPolicy,
    clock: &dyn Clock,
) -> io::Result<ServerSession> {
    let peer = match stream.peer_addr()? {
        SocketAddr::V4(a) => *a.ip(),
        SocketAddr::V6(_) => std::net::Ipv4Addr::LOCALHOST, // v6 loopback in tests
    };
    let mut session = ServerSession::new(hostname, peer);
    let banner = session.open(clock.now(), policy);
    write_reply(&mut stream, &banner)?;
    if session.is_closed() {
        return Ok(session);
    }

    let mut reader = BufReader::new(stream.try_clone()?);
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            // Peer hung up without QUIT.
            return Ok(session);
        }
        let cmd = Command::parse(&line);
        let reply = session.handle(clock.now(), &cmd, policy);
        let wants_data = reply.is_intermediate();
        write_reply(&mut stream, &reply)?;
        if wants_data {
            // Collect dot-stuffed body until the terminator line.
            let mut body_wire = String::new();
            loop {
                let mut body_line = String::new();
                if reader.read_line(&mut body_line)? == 0 {
                    return Ok(session);
                }
                let trimmed = body_line.trim_end_matches(['\r', '\n']);
                body_wire.push_str(trimmed);
                body_wire.push_str("\r\n");
                if trimmed == "." {
                    break;
                }
            }
            let unstuffed = dot_unstuff(&body_wire).unwrap_or_default();
            let reply = session.handle_data_body(clock.now(), &unstuffed, policy);
            write_reply(&mut stream, &reply)?;
        }
        if session.is_closed() {
            return Ok(session);
        }
    }
}

/// Accepts and serves `connections` sessions on `listener`, sequentially.
///
/// A tiny single-threaded driver for tests and demos; production servers
/// would thread per connection around [`serve_connection`].
///
/// # Errors
///
/// Propagates accept/IO errors.
pub fn serve_count(
    listener: &TcpListener,
    hostname: &str,
    policy: &mut dyn ServerPolicy,
    clock: &dyn Clock,
    connections: usize,
) -> io::Result<Vec<ServerSession>> {
    let mut sessions = Vec::with_capacity(connections);
    for _ in 0..connections {
        let (stream, _) = listener.accept()?;
        sessions.push(serve_connection(stream, hostname, policy, clock)?);
    }
    Ok(sessions)
}

/// Runs one delivery attempt over TCP, driving `client` against the server
/// at `addr`.
///
/// # Errors
///
/// Propagates connection and socket I/O errors; SMTP-level failures are
/// reported through the returned [`DeliveryOutcome`] instead.
pub fn deliver_tcp(addr: SocketAddr, mut client: ClientSession) -> io::Result<DeliveryOutcome> {
    let mut stream = TcpStream::connect(addr)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut reply = read_reply(&mut reader)?;
    loop {
        match client.on_reply(&reply) {
            ClientAction::Send(cmd) => {
                stream.write_all(cmd.to_wire().as_bytes())?;
                stream.flush()?;
                reply = read_reply(&mut reader)?;
            }
            ClientAction::SendBody(body) => {
                stream.write_all(dot_stuff(&body).as_bytes())?;
                stream.flush()?;
                reply = read_reply(&mut reader)?;
            }
            ClientAction::Close(outcome) => return Ok(outcome),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::address::ReversePath;
    use crate::dialect::Dialect;
    use crate::envelope::Envelope;
    use crate::message::Message;
    use crate::server::AcceptAll;
    use crate::server::{PolicyDecision, Transaction};
    use spamward_sim::SimTime;
    use std::net::Ipv4Addr;
    use std::thread;

    fn envelope(rcpt: &str) -> Envelope {
        Envelope::builder()
            .client_ip(Ipv4Addr::LOCALHOST)
            .helo("client.local")
            .mail_from(ReversePath::Address("alice@relay.example".parse().unwrap()))
            .rcpt(rcpt.parse().unwrap())
            .build()
    }

    fn message() -> Message {
        Message::builder()
            .header("Subject", "over tcp")
            .body("real sockets\n.leading dot line")
            .build()
    }

    #[test]
    fn delivers_over_real_sockets() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
        let addr = listener.local_addr().unwrap();
        let server = thread::spawn(move || {
            let mut policy = AcceptAll;
            let clock = WallClock::new();
            serve_count(&listener, "mx.tcp.test", &mut policy, &clock, 1).expect("serve")
        });

        let client = ClientSession::new(
            Dialect::compliant_mta("relay.example"),
            envelope("user@tcp.test"),
            message(),
        );
        let outcome = deliver_tcp(addr, client).expect("client io");
        assert!(outcome.is_delivered(), "{outcome:?}");

        let sessions = server.join().expect("server thread");
        assert_eq!(sessions.len(), 1);
        let accepted = sessions[0].accepted();
        assert_eq!(accepted.len(), 1);
        assert_eq!(accepted[0].1.header("subject"), Some("over tcp"));
        // Dot-stuffing survived the real wire.
        assert!(accepted[0].1.body().contains(".leading dot line"));
    }

    struct GreylistOnce {
        rejected: usize,
    }
    impl ServerPolicy for GreylistOnce {
        fn on_rcpt(
            &mut self,
            _: SimTime,
            _: &Transaction,
            _: &crate::address::EmailAddress,
        ) -> PolicyDecision {
            if self.rejected == 0 {
                self.rejected += 1;
                PolicyDecision::TempFail(Reply::greylisted(1))
            } else {
                PolicyDecision::Accept
            }
        }
    }

    #[test]
    fn greylisting_works_over_tcp() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
        let addr = listener.local_addr().unwrap();
        let server = thread::spawn(move || {
            let mut policy = GreylistOnce { rejected: 0 };
            let clock = WallClock::new();
            serve_count(&listener, "mx.tcp.test", &mut policy, &clock, 2).expect("serve")
        });

        // First attempt: deferred.
        let client = ClientSession::new(
            Dialect::compliant_mta("relay.example"),
            envelope("user@tcp.test"),
            message(),
        );
        let first = deliver_tcp(addr, client).expect("client io");
        assert!(!first.is_delivered());
        assert!(first.is_retryable());

        // Retry: accepted.
        let client = ClientSession::new(
            Dialect::compliant_mta("relay.example"),
            envelope("user@tcp.test"),
            message(),
        );
        let second = deliver_tcp(addr, client).expect("client io");
        assert!(second.is_delivered());
        server.join().expect("server thread");
    }

    #[test]
    fn bot_dropping_connection_is_not_a_server_error() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
        let addr = listener.local_addr().unwrap();
        let server = thread::spawn(move || {
            struct RejectRcpt;
            impl ServerPolicy for RejectRcpt {
                fn on_rcpt(
                    &mut self,
                    _: SimTime,
                    _: &Transaction,
                    _: &crate::address::EmailAddress,
                ) -> PolicyDecision {
                    PolicyDecision::TempFail(Reply::greylisted(300))
                }
            }
            let mut policy = RejectRcpt;
            let clock = WallClock::new();
            serve_count(&listener, "mx.tcp.test", &mut policy, &clock, 1).expect("serve")
        });

        // A fire-and-forget bot hangs up as soon as the RCPT is deferred.
        let client =
            ClientSession::new(Dialect::minimal_bot("bot"), envelope("user@tcp.test"), message());
        let outcome = deliver_tcp(addr, client).expect("client io");
        assert!(!outcome.is_delivered());
        let sessions = server.join().expect("server must survive the rude client");
        assert!(sessions[0].accepted().is_empty());
    }

    #[test]
    fn wall_clock_advances() {
        let clock = WallClock::new();
        let a = clock.now();
        let b = clock.now();
        assert!(b >= a);
    }
}
