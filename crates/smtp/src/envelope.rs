//! The SMTP envelope: what the transaction (not the message body) says.

use crate::address::{EmailAddress, ReversePath};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::net::Ipv4Addr;

/// The envelope of one mail transaction.
///
/// Greylisting keys on exactly three of these fields — the client IP, the
/// envelope sender and the envelope recipient — which is why the paper
/// stresses that "the message itself is irrelevant".
///
/// # Example
///
/// ```
/// use std::net::Ipv4Addr;
/// use spamward_smtp::Envelope;
///
/// let env = Envelope::builder()
///     .client_ip(Ipv4Addr::new(203, 0, 113, 9))
///     .helo("bot.local")
///     .mail_from("spam@botnet.example".parse::<spamward_smtp::EmailAddress>()?)
///     .rcpt("victim@foo.net".parse()?)
///     .build();
/// assert_eq!(env.recipients().len(), 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Envelope {
    client_ip: Ipv4Addr,
    helo: String,
    mail_from: ReversePath,
    recipients: Vec<EmailAddress>,
}

impl Envelope {
    /// Starts building an envelope.
    pub fn builder() -> EnvelopeBuilder {
        EnvelopeBuilder::default()
    }

    /// The connecting client's IP address.
    pub fn client_ip(&self) -> Ipv4Addr {
        self.client_ip
    }

    /// The HELO/EHLO argument the client presented.
    pub fn helo(&self) -> &str {
        &self.helo
    }

    /// The envelope sender.
    pub fn mail_from(&self) -> &ReversePath {
        &self.mail_from
    }

    /// The envelope recipients, in RCPT order.
    pub fn recipients(&self) -> &[EmailAddress] {
        &self.recipients
    }
}

impl fmt::Display for Envelope {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {} -> {}",
            self.client_ip,
            self.mail_from,
            self.recipients.iter().map(|r| r.to_string()).collect::<Vec<_>>().join(", ")
        )
    }
}

/// Builder for [`Envelope`].
#[derive(Debug, Default)]
pub struct EnvelopeBuilder {
    client_ip: Option<Ipv4Addr>,
    helo: String,
    mail_from: Option<ReversePath>,
    recipients: Vec<EmailAddress>,
}

impl EnvelopeBuilder {
    /// Sets the client IP (required).
    pub fn client_ip(mut self, ip: Ipv4Addr) -> Self {
        self.client_ip = Some(ip);
        self
    }

    /// Sets the HELO argument (defaults to empty).
    pub fn helo(mut self, helo: &str) -> Self {
        self.helo = helo.to_owned();
        self
    }

    /// Sets the envelope sender (required; accepts `EmailAddress` via
    /// `Into`).
    pub fn mail_from(mut self, path: impl Into<ReversePath>) -> Self {
        self.mail_from = Some(path.into());
        self
    }

    /// Sets the null reverse path `<>`.
    pub fn null_sender(mut self) -> Self {
        self.mail_from = Some(ReversePath::Null);
        self
    }

    /// Appends a recipient (at least one required).
    pub fn rcpt(mut self, address: EmailAddress) -> Self {
        self.recipients.push(address);
        self
    }

    /// Appends several recipients.
    pub fn rcpts(mut self, addresses: impl IntoIterator<Item = EmailAddress>) -> Self {
        self.recipients.extend(addresses);
        self
    }

    /// Finishes the envelope, reporting what is structurally missing.
    ///
    /// Protocol-path code (e.g. the server's DATA handler) uses this form
    /// so a half-built transaction surfaces as an SMTP error, not a panic.
    pub fn try_build(self) -> Result<Envelope, EnvelopeError> {
        let client_ip = self.client_ip.ok_or(EnvelopeError::MissingClientIp)?;
        let mail_from = self.mail_from.ok_or(EnvelopeError::MissingMailFrom)?;
        if self.recipients.is_empty() {
            return Err(EnvelopeError::NoRecipients);
        }
        Ok(Envelope { client_ip, helo: self.helo, mail_from, recipients: self.recipients })
    }

    /// Finishes the envelope.
    ///
    /// # Panics
    ///
    /// Panics if the client IP, sender, or all recipients are missing; use
    /// [`EnvelopeBuilder::try_build`] where that must not happen.
    pub fn build(self) -> Envelope {
        match self.try_build() {
            Ok(envelope) => envelope,
            Err(e) => panic!("invalid envelope: {e}"),
        }
    }
}

/// A structurally incomplete [`Envelope`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnvelopeError {
    /// No client IP was provided.
    MissingClientIp,
    /// No MAIL FROM reverse-path was provided.
    MissingMailFrom,
    /// No RCPT TO recipient was provided.
    NoRecipients,
}

impl fmt::Display for EnvelopeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EnvelopeError::MissingClientIp => write!(f, "envelope needs a client IP"),
            EnvelopeError::MissingMailFrom => write!(f, "envelope needs a MAIL FROM"),
            EnvelopeError::NoRecipients => write!(f, "envelope needs at least one recipient"),
        }
    }
}

impl std::error::Error for EnvelopeError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(s: &str) -> EmailAddress {
        s.parse().unwrap()
    }

    #[test]
    fn builder_happy_path() {
        let env = Envelope::builder()
            .client_ip(Ipv4Addr::new(1, 2, 3, 4))
            .helo("client.example")
            .mail_from(addr("a@b.cc"))
            .rcpt(addr("x@y.zz"))
            .rcpt(addr("w@y.zz"))
            .build();
        assert_eq!(env.client_ip(), Ipv4Addr::new(1, 2, 3, 4));
        assert_eq!(env.helo(), "client.example");
        assert_eq!(env.mail_from().normalized(), "a@b.cc");
        assert_eq!(env.recipients().len(), 2);
    }

    #[test]
    fn null_sender_bounce_envelope() {
        let env = Envelope::builder()
            .client_ip(Ipv4Addr::LOCALHOST)
            .null_sender()
            .rcpt(addr("x@y.zz"))
            .build();
        assert_eq!(env.mail_from(), &ReversePath::Null);
    }

    #[test]
    #[should_panic(expected = "client IP")]
    fn missing_ip_panics() {
        let _ = Envelope::builder().mail_from(addr("a@b.cc")).rcpt(addr("x@y.zz")).build();
    }

    #[test]
    #[should_panic(expected = "recipient")]
    fn missing_rcpt_panics() {
        let _ =
            Envelope::builder().client_ip(Ipv4Addr::LOCALHOST).mail_from(addr("a@b.cc")).build();
    }

    #[test]
    fn display_shows_triplet_fields() {
        let env = Envelope::builder()
            .client_ip(Ipv4Addr::new(9, 8, 7, 6))
            .mail_from(addr("a@b.cc"))
            .rcpt(addr("x@y.zz"))
            .build();
        let s = env.to_string();
        assert!(s.contains("9.8.7.6") && s.contains("a@b.cc") && s.contains("x@y.zz"));
    }
}
