//! The sending-side SMTP state machine.

use crate::address::EmailAddress;
use crate::command::Command;
use crate::dialect::Dialect;
use crate::envelope::Envelope;
use crate::extensions::Capabilities;
use crate::message::Message;
use crate::reply::Reply;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The protocol stage at which a delivery attempt failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FailStage {
    /// The TCP connection itself (refused / timed out) — filled in by the
    /// transport layer, not this state machine.
    Connect,
    /// The 220 banner was not positive.
    Banner,
    /// HELO/EHLO was refused.
    Greeting,
    /// MAIL FROM was refused.
    MailFrom,
    /// Every recipient was refused (greylisting lands here).
    RcptTo,
    /// DATA or the message body was refused.
    Data,
}

impl fmt::Display for FailStage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FailStage::Connect => "connect",
            FailStage::Banner => "banner",
            FailStage::Greeting => "greeting",
            FailStage::MailFrom => "mail-from",
            FailStage::RcptTo => "rcpt-to",
            FailStage::Data => "data",
        };
        f.write_str(s)
    }
}

/// The result of one complete delivery attempt.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum DeliveryOutcome {
    /// The message body was accepted for at least one recipient.
    Delivered {
        /// Recipients the server accepted.
        accepted: Vec<EmailAddress>,
        /// Recipients deferred with 4xx (retry may succeed later).
        tempfailed: Vec<EmailAddress>,
        /// Recipients rejected with 5xx.
        rejected: Vec<EmailAddress>,
    },
    /// Nothing was delivered, but a later retry may succeed (4xx).
    TempFailed {
        /// Stage of the failure.
        stage: FailStage,
        /// The server's reply code.
        code: u16,
        /// Recipients that were deferred (for per-recipient requeueing).
        tempfailed: Vec<EmailAddress>,
    },
    /// Nothing was delivered and retrying is pointless (5xx).
    PermFailed {
        /// Stage of the failure.
        stage: FailStage,
        /// The server's reply code.
        code: u16,
    },
}

impl DeliveryOutcome {
    /// Whether at least one recipient got the message.
    pub fn is_delivered(&self) -> bool {
        matches!(self, DeliveryOutcome::Delivered { .. })
    }

    /// Whether a retry later could help.
    pub fn is_retryable(&self) -> bool {
        match self {
            DeliveryOutcome::TempFailed { .. } => true,
            DeliveryOutcome::Delivered { tempfailed, .. } => !tempfailed.is_empty(),
            DeliveryOutcome::PermFailed { .. } => false,
        }
    }

    /// The recipients still owed a delivery (deferred with 4xx).
    pub fn pending_recipients(&self) -> &[EmailAddress] {
        match self {
            DeliveryOutcome::Delivered { tempfailed, .. }
            | DeliveryOutcome::TempFailed { tempfailed, .. } => tempfailed,
            DeliveryOutcome::PermFailed { .. } => &[],
        }
    }

    /// Convenience constructor for transport-level failures.
    pub fn connect_failed(recipients: &[EmailAddress], transient: bool) -> Self {
        if transient {
            DeliveryOutcome::TempFailed {
                stage: FailStage::Connect,
                code: 421,
                tempfailed: recipients.to_vec(),
            }
        } else {
            DeliveryOutcome::PermFailed { stage: FailStage::Connect, code: 521 }
        }
    }
}

impl fmt::Display for DeliveryOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeliveryOutcome::Delivered { accepted, tempfailed, rejected } => write!(
                f,
                "delivered to {} rcpt(s) ({} deferred, {} rejected)",
                accepted.len(),
                tempfailed.len(),
                rejected.len()
            ),
            DeliveryOutcome::TempFailed { stage, code, .. } => {
                write!(f, "deferred with {code} at {stage}")
            }
            DeliveryOutcome::PermFailed { stage, code } => {
                write!(f, "rejected with {code} at {stage}")
            }
        }
    }
}

/// What the client wants to do next.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientAction {
    /// Send this command and wait for a reply.
    Send(Command),
    /// Send the (dot-stuffed) message body and wait for a reply.
    SendBody(String),
    /// Close the connection; the attempt is finished.
    Close(DeliveryOutcome),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    AwaitBanner,
    SentEhlo,
    SentHeloFallback,
    SentMail,
    SentRcpt,
    SentData,
    SentBody,
    SentQuit,
    Done,
}

/// The sending-side state machine for one delivery attempt.
///
/// Feed it every server reply (starting with the banner) via
/// [`ClientSession::on_reply`]; it answers with the next [`ClientAction`].
/// The [`Dialect`] controls greeting style, error manners and recipient
/// perseverance.
///
/// # Example
///
/// ```
/// use std::net::Ipv4Addr;
/// use spamward_smtp::{
///     AcceptAll, ClientSession, Dialect, Envelope, Message, ServerSession, exchange,
/// };
/// use spamward_sim::SimTime;
///
/// let env = Envelope::builder()
///     .client_ip(Ipv4Addr::new(203, 0, 113, 9))
///     .mail_from("sender@relay.example".parse::<spamward_smtp::EmailAddress>()?)
///     .rcpt("user@foo.net".parse()?)
///     .build();
/// let msg = Message::builder().header("Subject", "hi").body("hello").build();
/// let mut client = ClientSession::new(Dialect::compliant_mta("relay.example"), env, msg);
/// let mut server = ServerSession::new("mx.foo.net", Ipv4Addr::new(203, 0, 113, 9));
/// let mut policy = AcceptAll;
///
/// let (outcome, _transcript) = exchange(&mut client, &mut server, &mut policy, SimTime::ZERO);
/// assert!(outcome.is_delivered());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct ClientSession {
    dialect: Dialect,
    envelope: Envelope,
    message: Message,
    state: State,
    server_caps: Capabilities,
    next_rcpt: usize,
    accepted: Vec<EmailAddress>,
    tempfailed: Vec<EmailAddress>,
    rejected: Vec<EmailAddress>,
    outcome_after_quit: Option<DeliveryOutcome>,
}

impl ClientSession {
    /// Creates a delivery attempt for `envelope` carrying `message`.
    pub fn new(dialect: Dialect, envelope: Envelope, message: Message) -> Self {
        ClientSession {
            dialect,
            envelope,
            message,
            state: State::AwaitBanner,
            server_caps: Capabilities::none(),
            next_rcpt: 0,
            accepted: Vec::new(),
            tempfailed: Vec::new(),
            rejected: Vec::new(),
            outcome_after_quit: None,
        }
    }

    /// The envelope being attempted.
    pub fn envelope(&self) -> &Envelope {
        &self.envelope
    }

    /// The dialect in use.
    pub fn dialect(&self) -> &Dialect {
        &self.dialect
    }

    /// The extensions the server advertised (empty until EHLO succeeds).
    pub fn server_capabilities(&self) -> &Capabilities {
        &self.server_caps
    }

    fn mail_command(&self) -> Command {
        // Declare SIZE when the server advertised the extension (RFC 1870
        // behaviour of full MTAs; bots use HELO and never negotiate).
        let declared_size =
            self.server_caps.size_limit.is_some().then(|| self.message.size() as u64);
        Command::MailFrom { path: self.envelope.mail_from().clone(), declared_size }
    }

    fn greeting_command(&self) -> Command {
        let domain = self.dialect.helo_argument(self.envelope.client_ip());
        if self.dialect.uses_ehlo {
            Command::Ehlo { domain }
        } else {
            Command::Helo { domain }
        }
    }

    fn fail(&mut self, stage: FailStage, reply: &Reply) -> ClientAction {
        let outcome = if reply.is_transient() {
            DeliveryOutcome::TempFailed {
                stage,
                code: reply.code(),
                tempfailed: self.envelope.recipients().to_vec(),
            }
        } else {
            DeliveryOutcome::PermFailed { stage, code: reply.code() }
        };
        self.finish(outcome)
    }

    fn finish(&mut self, outcome: DeliveryOutcome) -> ClientAction {
        if self.dialect.quits_on_failure && self.state != State::SentQuit {
            self.outcome_after_quit = Some(outcome);
            self.state = State::SentQuit;
            ClientAction::Send(Command::Quit)
        } else {
            self.state = State::Done;
            ClientAction::Close(outcome)
        }
    }

    fn rcpt_phase_done(&mut self) -> ClientAction {
        if self.accepted.is_empty() {
            // Nothing to send DATA for. Classify by what happened.
            let outcome = if !self.tempfailed.is_empty() {
                DeliveryOutcome::TempFailed {
                    stage: FailStage::RcptTo,
                    code: 450,
                    tempfailed: std::mem::take(&mut self.tempfailed),
                }
            } else {
                DeliveryOutcome::PermFailed { stage: FailStage::RcptTo, code: 550 }
            };
            return self.finish(outcome);
        }
        self.state = State::SentData;
        ClientAction::Send(Command::Data)
    }

    fn next_rcpt_or_data(&mut self) -> ClientAction {
        if self.next_rcpt < self.envelope.recipients().len() {
            let address = self.envelope.recipients()[self.next_rcpt].clone();
            self.next_rcpt += 1;
            self.state = State::SentRcpt;
            ClientAction::Send(Command::RcptTo { address })
        } else {
            self.rcpt_phase_done()
        }
    }

    /// Advances the state machine with the server's latest reply.
    ///
    /// The first call must pass the connection banner.
    ///
    /// # Panics
    ///
    /// Panics if called after the session produced [`ClientAction::Close`].
    pub fn on_reply(&mut self, reply: &Reply) -> ClientAction {
        match self.state {
            State::Done => panic!("on_reply() after session finished"),
            State::AwaitBanner => {
                if !reply.is_positive() {
                    return self.fail(FailStage::Banner, reply);
                }
                self.state = State::SentEhlo;
                ClientAction::Send(self.greeting_command())
            }
            State::SentEhlo => {
                if reply.is_positive() {
                    if self.dialect.uses_ehlo {
                        // Capability lines follow the greeting line.
                        self.server_caps = Capabilities::from_ehlo_lines(
                            reply.lines().iter().skip(1).map(String::as_str),
                        );
                    }
                    self.state = State::SentMail;
                    return ClientAction::Send(self.mail_command());
                }
                if reply.is_permanent() && self.dialect.uses_ehlo {
                    // Old server: fall back from EHLO to HELO.
                    self.state = State::SentHeloFallback;
                    let domain = self.dialect.helo_argument(self.envelope.client_ip());
                    return ClientAction::Send(Command::Helo { domain });
                }
                self.fail(FailStage::Greeting, reply)
            }
            State::SentHeloFallback => {
                if reply.is_positive() {
                    self.state = State::SentMail;
                    return ClientAction::Send(self.mail_command());
                }
                self.fail(FailStage::Greeting, reply)
            }
            State::SentMail => {
                if !reply.is_positive() {
                    return self.fail(FailStage::MailFrom, reply);
                }
                self.next_rcpt_or_data()
            }
            State::SentRcpt => {
                let rcpt = self.envelope.recipients()[self.next_rcpt - 1].clone();
                if reply.is_positive() {
                    self.accepted.push(rcpt);
                } else if reply.is_transient() {
                    self.tempfailed.push(rcpt);
                    if self.dialect.aborts_on_first_rcpt_error {
                        // Fire-and-forget: don't bother with the rest.
                        let mut tempfailed = std::mem::take(&mut self.tempfailed);
                        tempfailed
                            .extend(self.envelope.recipients()[self.next_rcpt..].iter().cloned());
                        return self.finish(DeliveryOutcome::TempFailed {
                            stage: FailStage::RcptTo,
                            code: reply.code(),
                            tempfailed,
                        });
                    }
                } else {
                    self.rejected.push(rcpt);
                    if self.dialect.aborts_on_first_rcpt_error {
                        return self.finish(DeliveryOutcome::PermFailed {
                            stage: FailStage::RcptTo,
                            code: reply.code(),
                        });
                    }
                }
                self.next_rcpt_or_data()
            }
            State::SentData => {
                if !reply.is_intermediate() {
                    return self.fail(FailStage::Data, reply);
                }
                self.state = State::SentBody;
                ClientAction::SendBody(self.message.to_wire())
            }
            State::SentBody => {
                if !reply.is_positive() {
                    return self.fail(FailStage::Data, reply);
                }
                let outcome = DeliveryOutcome::Delivered {
                    accepted: std::mem::take(&mut self.accepted),
                    tempfailed: std::mem::take(&mut self.tempfailed),
                    rejected: std::mem::take(&mut self.rejected),
                };
                self.outcome_after_quit = Some(outcome);
                self.state = State::SentQuit;
                ClientAction::Send(Command::Quit)
            }
            State::SentQuit => {
                // Whatever the server says to QUIT, we are done. The
                // outcome is recorded whenever we enter SentQuit; should
                // it ever be missing, a lost outcome is a failed delivery,
                // not a crashed relay.
                self.state = State::Done;
                let outcome =
                    self.outcome_after_quit.take().unwrap_or(DeliveryOutcome::PermFailed {
                        stage: FailStage::Connect,
                        code: 521,
                    });
                ClientAction::Close(outcome)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::address::ReversePath;
    use std::net::Ipv4Addr;

    fn envelope(rcpts: &[&str]) -> Envelope {
        let mut b = Envelope::builder()
            .client_ip(Ipv4Addr::new(203, 0, 113, 9))
            .mail_from(ReversePath::Address("sender@relay.example".parse().unwrap()));
        for r in rcpts {
            b = b.rcpt(r.parse().unwrap());
        }
        b.build()
    }

    fn msg() -> Message {
        Message::builder().header("Subject", "t").body("b").build()
    }

    fn mta_client(rcpts: &[&str]) -> ClientSession {
        ClientSession::new(Dialect::compliant_mta("relay.example"), envelope(rcpts), msg())
    }

    fn bot_client(rcpts: &[&str]) -> ClientSession {
        ClientSession::new(Dialect::minimal_bot("bot"), envelope(rcpts), msg())
    }

    #[test]
    fn happy_path_command_sequence() {
        let mut c = mta_client(&["u@foo.net"]);
        let a = c.on_reply(&Reply::banner("mx.foo.net"));
        assert_eq!(a, ClientAction::Send(Command::Ehlo { domain: "relay.example".into() }));
        let a = c.on_reply(&Reply::hello("mx.foo.net", "relay.example"));
        assert!(matches!(a, ClientAction::Send(Command::MailFrom { .. })));
        let a = c.on_reply(&Reply::ok());
        assert!(matches!(a, ClientAction::Send(Command::RcptTo { .. })));
        let a = c.on_reply(&Reply::ok());
        assert_eq!(a, ClientAction::Send(Command::Data));
        let a = c.on_reply(&Reply::start_mail_input());
        assert!(matches!(a, ClientAction::SendBody(_)));
        let a = c.on_reply(&Reply::single(250, "queued"));
        assert_eq!(a, ClientAction::Send(Command::Quit));
        let a = c.on_reply(&Reply::bye("mx.foo.net"));
        match a {
            ClientAction::Close(DeliveryOutcome::Delivered { accepted, .. }) => {
                assert_eq!(accepted.len(), 1)
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn bot_uses_helo_and_hangs_up_on_greylist() {
        let mut c = bot_client(&["u@foo.net", "v@foo.net"]);
        let a = c.on_reply(&Reply::banner("mx"));
        assert_eq!(a, ClientAction::Send(Command::Helo { domain: "[203.0.113.9]".into() }));
        c.on_reply(&Reply::hello("mx", "x"));
        let a = c.on_reply(&Reply::ok()); // MAIL ok → first RCPT
        assert!(matches!(a, ClientAction::Send(Command::RcptTo { .. })));
        // Greylisted: bot aborts instantly, no QUIT.
        let a = c.on_reply(&Reply::greylisted(300));
        match a {
            ClientAction::Close(DeliveryOutcome::TempFailed { stage, code, tempfailed }) => {
                assert_eq!(stage, FailStage::RcptTo);
                assert_eq!(code, 450);
                assert_eq!(tempfailed.len(), 2, "unattempted rcpts count as deferred");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn mta_perseveres_through_mixed_rcpt_results() {
        let mut c = mta_client(&["a@foo.net", "b@foo.net", "c@foo.net"]);
        c.on_reply(&Reply::banner("mx"));
        c.on_reply(&Reply::hello("mx", "x"));
        c.on_reply(&Reply::ok()); // MAIL → RCPT a
        c.on_reply(&Reply::ok()); // a accepted → RCPT b
        c.on_reply(&Reply::greylisted(300)); // b deferred → RCPT c
        let a = c.on_reply(&Reply::no_such_user()); // c rejected → DATA
        assert_eq!(a, ClientAction::Send(Command::Data));
        c.on_reply(&Reply::start_mail_input());
        let a = c.on_reply(&Reply::single(250, "queued"));
        assert_eq!(a, ClientAction::Send(Command::Quit));
        match c.on_reply(&Reply::bye("mx")) {
            ClientAction::Close(DeliveryOutcome::Delivered { accepted, tempfailed, rejected }) => {
                assert_eq!(accepted.len(), 1);
                assert_eq!(tempfailed.len(), 1);
                assert_eq!(rejected.len(), 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn all_rcpts_greylisted_is_tempfail_with_quit() {
        let mut c = mta_client(&["a@foo.net", "b@foo.net"]);
        c.on_reply(&Reply::banner("mx"));
        c.on_reply(&Reply::hello("mx", "x"));
        c.on_reply(&Reply::ok());
        c.on_reply(&Reply::greylisted(300));
        let a = c.on_reply(&Reply::greylisted(300));
        assert_eq!(a, ClientAction::Send(Command::Quit), "compliant MTA quits politely");
        match c.on_reply(&Reply::bye("mx")) {
            ClientAction::Close(o) => {
                assert!(o.is_retryable());
                assert_eq!(o.pending_recipients().len(), 2);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn all_rcpts_rejected_is_permfail() {
        let mut c = mta_client(&["a@foo.net"]);
        c.on_reply(&Reply::banner("mx"));
        c.on_reply(&Reply::hello("mx", "x"));
        c.on_reply(&Reply::ok());
        c.on_reply(&Reply::no_such_user());
        match c.on_reply(&Reply::bye("mx")) {
            ClientAction::Close(o) => {
                assert!(!o.is_retryable());
                assert!(matches!(o, DeliveryOutcome::PermFailed { stage: FailStage::RcptTo, .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn transient_banner_is_retryable() {
        let mut c = mta_client(&["a@foo.net"]);
        let a = c.on_reply(&Reply::service_unavailable("mx"));
        assert_eq!(a, ClientAction::Send(Command::Quit));
        match c.on_reply(&Reply::bye("mx")) {
            ClientAction::Close(DeliveryOutcome::TempFailed { stage, .. }) => {
                assert_eq!(stage, FailStage::Banner)
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn ehlo_falls_back_to_helo() {
        let mut c = mta_client(&["a@foo.net"]);
        c.on_reply(&Reply::banner("mx"));
        let a = c.on_reply(&Reply::unrecognized()); // EHLO → 500
        assert_eq!(a, ClientAction::Send(Command::Helo { domain: "relay.example".into() }));
        let a = c.on_reply(&Reply::hello("mx", "x"));
        assert!(matches!(a, ClientAction::Send(Command::MailFrom { .. })));
    }

    #[test]
    fn data_rejection_after_rcpt() {
        let mut c = mta_client(&["a@foo.net"]);
        c.on_reply(&Reply::banner("mx"));
        c.on_reply(&Reply::hello("mx", "x"));
        c.on_reply(&Reply::ok());
        c.on_reply(&Reply::ok());
        c.on_reply(&Reply::start_mail_input());
        // Body refused with a 5xx content filter.
        let a = c.on_reply(&Reply::rejected_policy("spam content"));
        assert_eq!(a, ClientAction::Send(Command::Quit));
        match c.on_reply(&Reply::bye("mx")) {
            ClientAction::Close(DeliveryOutcome::PermFailed { stage, code }) => {
                assert_eq!(stage, FailStage::Data);
                assert_eq!(code, 550);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "after session finished")]
    fn on_reply_after_close_panics() {
        let mut c = bot_client(&["a@foo.net"]);
        c.on_reply(&Reply::banner("mx"));
        c.on_reply(&Reply::hello("mx", "x"));
        c.on_reply(&Reply::no_such_user()); // MAIL rejected → bot closes without QUIT
        c.on_reply(&Reply::ok());
    }

    #[test]
    fn outcome_helpers() {
        let d = DeliveryOutcome::Delivered {
            accepted: vec!["a@b.cc".parse().unwrap()],
            tempfailed: vec![],
            rejected: vec![],
        };
        assert!(d.is_delivered() && !d.is_retryable());
        let t = DeliveryOutcome::connect_failed(&["a@b.cc".parse().unwrap()], true);
        assert!(t.is_retryable());
        assert_eq!(t.pending_recipients().len(), 1);
        let p = DeliveryOutcome::connect_failed(&[], false);
        assert!(!p.is_retryable());
        assert!(format!("{d}").contains("delivered"));
    }
}
