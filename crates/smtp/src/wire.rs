//! Wire helpers: dot-stuffing and the lock-step client/server driver.

use crate::client::{ClientAction, ClientSession, DeliveryOutcome};
use crate::dialect::DialectFingerprint;
use crate::extensions::Capabilities;
use crate::server::{ServerPolicy, ServerSession};
use spamward_sim::SimTime;
use std::fmt;

/// Applies RFC 5321 §4.5.2 dot-stuffing: any body line beginning with `.`
/// gets one extra leading `.`, and the terminating `<CRLF>.<CRLF>` is
/// appended.
///
/// # Example
///
/// ```
/// use spamward_smtp::dot_stuff;
/// let wire = dot_stuff("hi\r\n.hidden dot\r\n");
/// assert!(wire.contains("..hidden dot"));
/// assert!(wire.ends_with("\r\n.\r\n"));
/// ```
pub fn dot_stuff(body: &str) -> String {
    let mut out = String::with_capacity(body.len() + 16);
    for line in body.split("\r\n") {
        if line.starts_with('.') {
            out.push('.');
        }
        out.push_str(line);
        out.push_str("\r\n");
    }
    // split() yields a trailing empty element for CRLF-terminated input,
    // which would add a spurious blank line; strip it.
    if body.ends_with("\r\n") {
        out.truncate(out.len() - 2);
    }
    out.push_str(".\r\n");
    out
}

/// Reverses [`dot_stuff`]: strips the terminating dot line and un-doubles
/// leading dots. Returns `None` when the terminator is missing.
///
/// SMTP cannot distinguish a body with a trailing CRLF from one without
/// (both serialize to the same wire form), so the result is normalized to
/// have *no* trailing CRLF.
pub fn dot_unstuff(wire: &str) -> Option<String> {
    let stripped = match wire.strip_suffix("\r\n.\r\n") {
        Some(s) => s,
        None if wire == ".\r\n" => "",
        None => return None,
    };
    let mut out = String::with_capacity(stripped.len());
    for (i, line) in stripped.split("\r\n").enumerate() {
        if i > 0 {
            out.push_str("\r\n");
        }
        if let Some(rest) = line.strip_prefix('.') {
            out.push_str(rest);
        } else {
            out.push_str(line);
        }
    }
    Some(out)
}

/// Normalizes a body exactly the way a DATA round trip does: dot-stuffs
/// and immediately unstuffs it. Infallible because [`dot_stuff`] always
/// appends the terminator [`dot_unstuff`] requires.
fn dot_roundtrip(body: &str) -> String {
    dot_unstuff(&dot_stuff(body)).unwrap_or_default()
}

/// Which side of the connection produced a transcript line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TranscriptEntry {
    /// Client → server.
    ClientToServer,
    /// Server → client.
    ServerToClient,
}

/// A recorded SMTP conversation, one line per exchange.
#[derive(Debug, Clone, Default)]
pub struct Transcript {
    entries: Vec<(TranscriptEntry, String)>,
}

impl Transcript {
    /// All entries in order.
    pub fn entries(&self) -> &[(TranscriptEntry, String)] {
        &self.entries
    }

    /// The client lines only.
    pub fn client_lines(&self) -> impl Iterator<Item = &str> {
        self.entries
            .iter()
            .filter(|(d, _)| *d == TranscriptEntry::ClientToServer)
            .map(|(_, s)| s.as_str())
    }

    /// The server lines only.
    pub fn server_lines(&self) -> impl Iterator<Item = &str> {
        self.entries
            .iter()
            .filter(|(d, _)| *d == TranscriptEntry::ServerToClient)
            .map(|(_, s)| s.as_str())
    }

    fn push(&mut self, dir: TranscriptEntry, line: impl Into<String>) {
        self.entries.push((dir, line.into()));
    }

    /// Infers the sender's behavioural fingerprint from the observed
    /// conversation alone — the B@bel idea (Stringhini et al., USENIX
    /// Security 2012) the paper builds on.
    ///
    /// Works best on transcripts that contain a failure (a greylisted
    /// RCPT): that is where polite MTAs and fire-and-forget bots diverge.
    /// When the transcript carries no disambiguating signal, a feature
    /// defaults to the compliant value.
    pub fn fingerprint(&self) -> DialectFingerprint {
        let mut greets_with_ehlo = false;
        let mut helo_is_literal = false;
        let mut early_talker = false;
        let mut quits = false;
        let mut saw_rcpt_failure = false;
        let mut acted_after_rcpt_failure = false;
        let mut greeting_seen = false;
        let mut last_client_verb: Option<String> = None;

        for (dir, line) in &self.entries {
            match dir {
                TranscriptEntry::ClientToServer => {
                    if line == "<talks before banner>" {
                        early_talker = true;
                        continue;
                    }
                    let upper = line.to_ascii_uppercase();
                    let verb = upper.split_whitespace().next().unwrap_or("").to_owned();
                    if !greeting_seen && (verb == "EHLO" || verb == "HELO") {
                        greeting_seen = true;
                        greets_with_ehlo = verb == "EHLO";
                        if line.split_whitespace().nth(1).is_some_and(|a| a.starts_with('[')) {
                            helo_is_literal = true;
                        }
                    }
                    if verb == "QUIT" {
                        quits = true;
                    }
                    if saw_rcpt_failure && (verb == "RCPT" || verb == "DATA") {
                        acted_after_rcpt_failure = true;
                    }
                    last_client_verb = Some(verb);
                }
                TranscriptEntry::ServerToClient => {
                    let code: u16 = line.get(..3).and_then(|c| c.parse().ok()).unwrap_or(0);
                    if (400..600).contains(&code) && last_client_verb.as_deref() == Some("RCPT") {
                        saw_rcpt_failure = true;
                    }
                }
            }
        }

        DialectFingerprint {
            greets_with_ehlo,
            helo_is_literal,
            quits_politely: quits,
            retries_remaining_rcpts: !saw_rcpt_failure || acted_after_rcpt_failure,
            early_talker,
        }
    }
}

impl fmt::Display for Transcript {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (dir, line) in &self.entries {
            let arrow = match dir {
                TranscriptEntry::ClientToServer => "C>",
                TranscriptEntry::ServerToClient => "S<",
            };
            writeln!(f, "{arrow} {line}")?;
        }
        Ok(())
    }
}

/// Runs one delivery through the RFC 2920 PIPELINING fast path: the
/// client batches `MAIL FROM`, every `RCPT TO` and `DATA` into a single
/// send, then reads all the replies at once. Falls back to the lock-step
/// [`exchange`] when the server does not advertise PIPELINING.
///
/// Returns the outcome plus the number of client→server *round trips* the
/// conversation cost — the quantity pipelining exists to minimize (and a
/// cost-accounting input: greylisting forces a second full conversation,
/// pipelined or not).
///
/// # Panics
///
/// Panics on a conversation exceeding 10 000 steps, like [`exchange`].
pub fn exchange_pipelined(
    client: &mut ClientSession,
    server: &mut ServerSession,
    policy: &mut dyn ServerPolicy,
    now: SimTime,
) -> (DeliveryOutcome, usize) {
    // Round trip 1: banner.
    let mut round_trips = 1usize;
    let banner = if client.dialect().waits_for_banner {
        server.open(now, policy)
    } else {
        server.open_pregreeted(now, policy)
    };

    // Round trip 2: greeting (EHLO), which reveals whether the server
    // pipelines.
    let mut reply = banner;
    let mut action = client.on_reply(&reply);
    let ClientAction::Send(greeting) = action else {
        // Banner was fatal; finish through the lock-step path.
        loop {
            match action {
                ClientAction::Send(cmd) => {
                    reply = if server.is_closed() {
                        crate::reply::Reply::service_unavailable("closed")
                    } else {
                        server.handle(now, &cmd, policy)
                    };
                    round_trips += 1;
                }
                // The client state machine never emits a body before a
                // 354, which cannot precede the greeting; if it somehow
                // does, answer like a real server would.
                ClientAction::SendBody(_) => {
                    reply = crate::reply::Reply::bad_sequence();
                    round_trips += 1;
                }
                ClientAction::Close(outcome) => return (outcome, round_trips),
            }
            action = client.on_reply(&reply);
        }
    };
    reply = server.handle(now, &greeting, policy);
    round_trips += 1;

    if !client.dialect().uses_ehlo
        || !Capabilities::from_ehlo_lines(reply.lines().iter().skip(1).map(String::as_str))
            .pipelining
    {
        // No pipelining: drain the rest through the lock-step driver
        // logic (replies one at a time).
        loop {
            match client.on_reply(&reply) {
                ClientAction::Send(cmd) => {
                    reply = if server.is_closed() {
                        crate::reply::Reply::service_unavailable("closed")
                    } else {
                        server.handle(now, &cmd, policy)
                    };
                    round_trips += 1;
                }
                ClientAction::SendBody(body) => {
                    let unstuffed = dot_roundtrip(&body);
                    reply = server.handle_data_body(now, &unstuffed, policy);
                    round_trips += 1;
                }
                ClientAction::Close(outcome) => return (outcome, round_trips),
            }
        }
    }

    // PIPELINED: the client state machine still produces commands one at a
    // time, but the wire batches them. We emulate the batch by serving
    // each queued command immediately (the server processes the batch in
    // order) while charging only ONE round trip for the whole
    // MAIL..RCPT..DATA group, and one more for the body.
    let mut in_batch = true;
    let mut batch_charged = false;
    for _ in 0..10_000 {
        match client.on_reply(&reply) {
            ClientAction::Send(cmd) => {
                let is_quit = matches!(cmd, crate::Command::Quit);
                reply = if server.is_closed() {
                    crate::reply::Reply::service_unavailable("closed")
                } else {
                    server.handle(now, &cmd, policy)
                };
                if in_batch {
                    if !batch_charged {
                        round_trips += 1; // the whole MAIL..DATA batch
                        batch_charged = true;
                    }
                } else {
                    round_trips += 1;
                }
                if is_quit {
                    in_batch = false;
                }
            }
            ClientAction::SendBody(body) => {
                in_batch = false;
                let unstuffed = dot_roundtrip(&body);
                reply = server.handle_data_body(now, &unstuffed, policy);
                round_trips += 1;
            }
            ClientAction::Close(outcome) => return (outcome, round_trips),
        }
    }
    panic!("pipelined SMTP exchange did not terminate within 10000 steps");
}

/// Runs a [`ClientSession`] against a [`ServerSession`] to completion,
/// returning the delivery outcome and the full conversation transcript.
///
/// The driver is lock-step: every client command gets exactly one server
/// reply. Transport-level failures (refused/timed-out connections) never
/// reach this function — model those with
/// [`DeliveryOutcome::connect_failed`].
///
/// # Panics
///
/// Panics if the conversation exceeds 10 000 exchanges (a state-machine
/// bug, not a realistic session).
pub fn exchange(
    client: &mut ClientSession,
    server: &mut ServerSession,
    policy: &mut dyn ServerPolicy,
    now: SimTime,
) -> (DeliveryOutcome, Transcript) {
    let mut transcript = Transcript::default();
    let mut reply = if client.dialect().waits_for_banner {
        server.open(now, policy)
    } else {
        // Early talker: the client's first bytes race the banner; the
        // server's pregreet hook gets to veto before anything else.
        transcript.push(TranscriptEntry::ClientToServer, "<talks before banner>".to_owned());
        server.open_pregreeted(now, policy)
    };
    transcript.push(TranscriptEntry::ServerToClient, reply.to_wire().trim_end().to_owned());

    for _ in 0..10_000 {
        match client.on_reply(&reply) {
            ClientAction::Send(cmd) => {
                transcript
                    .push(TranscriptEntry::ClientToServer, cmd.to_wire().trim_end().to_owned());
                if server.is_closed() {
                    // Server hung up (e.g. rejected at connect); treat any
                    // further client talk as into-the-void and finish.
                    reply = crate::reply::Reply::service_unavailable("closed");
                } else {
                    reply = server.handle(now, &cmd, policy);
                }
                transcript
                    .push(TranscriptEntry::ServerToClient, reply.to_wire().trim_end().to_owned());
            }
            ClientAction::SendBody(body) => {
                let stuffed = dot_stuff(&body);
                transcript.push(
                    TranscriptEntry::ClientToServer,
                    format!("<{} bytes of data>", stuffed.len()),
                );
                let unstuffed = dot_roundtrip(&body);
                reply = server.handle_data_body(now, &unstuffed, policy);
                transcript
                    .push(TranscriptEntry::ServerToClient, reply.to_wire().trim_end().to_owned());
            }
            ClientAction::Close(outcome) => return (outcome, transcript),
        }
    }
    panic!("SMTP exchange did not terminate within 10000 steps");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::address::ReversePath;
    use crate::dialect::Dialect;
    use crate::envelope::Envelope;
    use crate::message::Message;
    use crate::reply::Reply;
    use crate::server::{AcceptAll, PolicyDecision, Transaction};
    use proptest::prelude::*;
    use std::net::Ipv4Addr;

    #[test]
    fn dot_stuffing_roundtrip() {
        let body = "line\r\n.starts with dot\r\n..two dots\r\nend";
        let stuffed = dot_stuff(body);
        assert!(stuffed.contains("\r\n..starts with dot\r\n"));
        assert!(stuffed.contains("\r\n...two dots\r\n"));
        assert!(stuffed.ends_with("\r\n.\r\n"));
        assert_eq!(dot_unstuff(&stuffed).unwrap(), body);
    }

    #[test]
    fn dot_stuff_handles_trailing_crlf() {
        let body = "hello\r\n";
        let stuffed = dot_stuff(body);
        assert_eq!(stuffed, "hello\r\n.\r\n");
    }

    #[test]
    fn dot_unstuff_requires_terminator() {
        assert_eq!(dot_unstuff("no terminator"), None);
    }

    fn env(rcpts: &[&str]) -> Envelope {
        let mut b = Envelope::builder()
            .client_ip(Ipv4Addr::new(203, 0, 113, 9))
            .mail_from(ReversePath::Address("s@relay.example".parse().unwrap()));
        for r in rcpts {
            b = b.rcpt(r.parse().unwrap());
        }
        b.build()
    }

    fn msg() -> Message {
        Message::builder().header("Subject", "x").body(".dotty\nplain").build()
    }

    #[test]
    fn full_exchange_delivers() {
        let mut client =
            ClientSession::new(Dialect::compliant_mta("relay.example"), env(&["u@foo.net"]), msg());
        let mut server = ServerSession::new("mx.foo.net", Ipv4Addr::new(203, 0, 113, 9));
        let mut policy = AcceptAll;
        let (outcome, transcript) = exchange(&mut client, &mut server, &mut policy, SimTime::ZERO);
        assert!(outcome.is_delivered());
        assert_eq!(server.accepted().len(), 1);
        // The dot-stuffed line must arrive un-stuffed.
        assert_eq!(server.accepted()[0].1.body(), ".dotty\nplain");
        // Transcript captures both directions.
        assert!(transcript.client_lines().any(|l| l.starts_with("EHLO")));
        assert!(transcript.server_lines().any(|l| l.starts_with("220")));
        let rendered = transcript.to_string();
        assert!(rendered.contains("C> QUIT"));
    }

    struct GreylistFirstRcpt;
    impl ServerPolicy for GreylistFirstRcpt {
        fn on_rcpt(
            &mut self,
            _: SimTime,
            _: &Transaction,
            _: &crate::address::EmailAddress,
        ) -> PolicyDecision {
            PolicyDecision::TempFail(Reply::greylisted(300))
        }
    }

    #[test]
    fn greylisted_exchange_is_retryable() {
        let mut client =
            ClientSession::new(Dialect::minimal_bot("bot"), env(&["u@foo.net"]), msg());
        let mut server = ServerSession::new("mx.foo.net", Ipv4Addr::new(203, 0, 113, 9));
        let mut policy = GreylistFirstRcpt;
        let (outcome, transcript) = exchange(&mut client, &mut server, &mut policy, SimTime::ZERO);
        assert!(outcome.is_retryable());
        assert!(!outcome.is_delivered());
        // Fire-and-forget: no QUIT in the transcript.
        assert!(!transcript.client_lines().any(|l| l.starts_with("QUIT")));
    }

    struct RejectBanner;
    impl ServerPolicy for RejectBanner {
        fn on_connect(&mut self, _: SimTime, _: Ipv4Addr) -> PolicyDecision {
            PolicyDecision::Reject(Reply::single(554, "5.7.1 blocked"))
        }
    }

    #[test]
    fn rejected_banner_finishes_cleanly() {
        let mut client =
            ClientSession::new(Dialect::compliant_mta("relay.example"), env(&["u@foo.net"]), msg());
        let mut server = ServerSession::new("mx.foo.net", Ipv4Addr::new(203, 0, 113, 9));
        let mut policy = RejectBanner;
        let (outcome, _) = exchange(&mut client, &mut server, &mut policy, SimTime::ZERO);
        assert!(matches!(outcome, DeliveryOutcome::PermFailed { .. }));
    }

    #[test]
    fn pipelined_exchange_same_outcome_fewer_round_trips() {
        let make = || {
            (
                ClientSession::new(
                    Dialect::compliant_mta("relay.example"),
                    env(&["a@foo.net", "b@foo.net", "c@foo.net"]),
                    msg(),
                ),
                ServerSession::new("mx.foo.net", Ipv4Addr::new(203, 0, 113, 9)),
            )
        };
        let (mut c1, mut s1) = make();
        let mut p1 = AcceptAll;
        let (lockstep, transcript) = exchange(&mut c1, &mut s1, &mut p1, SimTime::ZERO);
        let lockstep_round_trips = transcript.server_lines().count();

        let (mut c2, mut s2) = make();
        let mut p2 = AcceptAll;
        let (pipelined, round_trips) = exchange_pipelined(&mut c2, &mut s2, &mut p2, SimTime::ZERO);
        assert_eq!(lockstep, pipelined, "outcome must not depend on pipelining");
        assert_eq!(s1.accepted(), s2.accepted(), "server sees the same mail");
        assert!(
            round_trips < lockstep_round_trips,
            "pipelining must reduce round trips: {round_trips} vs {lockstep_round_trips}"
        );
        // banner + EHLO + MAIL..DATA batch + body + QUIT = 5.
        assert_eq!(round_trips, 5);
    }

    #[test]
    fn pipelined_exchange_against_greylist_still_defers() {
        let mut client =
            ClientSession::new(Dialect::compliant_mta("relay.example"), env(&["a@foo.net"]), msg());
        let mut server = ServerSession::new("mx.foo.net", Ipv4Addr::new(203, 0, 113, 9));
        let mut policy = GreylistFirstRcpt;
        let (outcome, _) = exchange_pipelined(&mut client, &mut server, &mut policy, SimTime::ZERO);
        assert!(outcome.is_retryable());
        assert!(!outcome.is_delivered());
    }

    #[test]
    fn helo_only_client_gets_no_pipelining() {
        // A HELO client cannot negotiate PIPELINING; the fast path must
        // fall back without changing the outcome.
        let mut client =
            ClientSession::new(Dialect::minimal_bot("bot"), env(&["a@foo.net"]), msg());
        let mut server = ServerSession::new("mx.foo.net", Ipv4Addr::new(203, 0, 113, 9));
        let mut policy = AcceptAll;
        let (outcome, round_trips) =
            exchange_pipelined(&mut client, &mut server, &mut policy, SimTime::ZERO);
        assert!(outcome.is_delivered());
        assert!(round_trips >= 6, "HELO path stays lock-step: {round_trips}");
    }

    #[test]
    fn transcript_fingerprint_separates_bot_from_mta() {
        // Run both dialects against a greylist-everything policy; the
        // failure path is where the fingerprints diverge.
        let run = |dialect: Dialect| {
            let mut client = ClientSession::new(dialect, env(&["u@foo.net", "v@foo.net"]), msg());
            let mut server = ServerSession::new("mx.foo.net", Ipv4Addr::new(203, 0, 113, 9));
            let mut policy = GreylistFirstRcpt;
            let (_, transcript) = exchange(&mut client, &mut server, &mut policy, SimTime::ZERO);
            transcript.fingerprint()
        };
        let mta = run(Dialect::compliant_mta("relay.example"));
        assert!(mta.looks_like_mta(), "{mta:?}");
        assert!(mta.greets_with_ehlo && mta.quits_politely && !mta.early_talker);
        assert!(mta.retries_remaining_rcpts, "MTA tried the second RCPT after the 450");

        let bot = run(Dialect::minimal_bot("bot"));
        assert!(!bot.looks_like_mta(), "{bot:?}");
        assert!(bot.early_talker && bot.helo_is_literal);
        assert!(!bot.quits_politely && !bot.retries_remaining_rcpts);
    }

    #[test]
    fn transcript_fingerprint_on_clean_success_defaults_compliant() {
        let mut client =
            ClientSession::new(Dialect::compliant_mta("relay.example"), env(&["u@foo.net"]), msg());
        let mut server = ServerSession::new("mx.foo.net", Ipv4Addr::new(203, 0, 113, 9));
        let mut policy = AcceptAll;
        let (_, transcript) = exchange(&mut client, &mut server, &mut policy, SimTime::ZERO);
        let fp = transcript.fingerprint();
        assert!(fp.retries_remaining_rcpts, "no failure signal defaults to compliant");
        assert!(fp.looks_like_mta());
    }

    proptest! {
        #[test]
        fn prop_dot_roundtrip(body in "[a-zA-Z0-9. ]{0,120}") {
            let normalized = body.replace('\n', "");
            let stuffed = dot_stuff(&normalized);
            prop_assert_eq!(dot_unstuff(&stuffed).unwrap(), normalized);
        }

        #[test]
        fn prop_stuffed_never_contains_bare_dot_line(body in "(\\.?[a-z ]{0,10}\r\n){0,5}") {
            let stuffed = dot_stuff(&body);
            let interior = &stuffed[..stuffed.len() - 3];
            for line in interior.split("\r\n") {
                prop_assert_ne!(line, ".");
            }
        }
    }
}
