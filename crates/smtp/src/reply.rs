//! SMTP replies.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Named SMTP reply codes (RFC 5321 §4.2.3).
///
/// Lint rule P2 requires every `Reply::new` / `Reply::single` call site
/// outside this module to name its code through these constants, so a
/// grep for a constant finds every protocol decision that emits it.
pub mod codes {
    /// `220` — service ready.
    pub const SERVICE_READY: u16 = 220;
    /// `221` — closing transmission channel.
    pub const CLOSING: u16 = 221;
    /// `250` — requested action completed.
    pub const OK: u16 = 250;
    /// `252` — cannot VRFY user, but will accept the message.
    pub const CANNOT_VRFY: u16 = 252;
    /// `354` — start mail input.
    pub const START_MAIL_INPUT: u16 = 354;
    /// `421` — service not available, closing channel.
    pub const SERVICE_NOT_AVAILABLE: u16 = 421;
    /// `450` — mailbox unavailable (transient); the greylisting reply.
    pub const MAILBOX_UNAVAILABLE_TRANSIENT: u16 = 450;
    /// `454` — TLS not available due to temporary reason.
    pub const TLS_NOT_AVAILABLE: u16 = 454;
    /// `500` — command unrecognized.
    pub const UNRECOGNIZED: u16 = 500;
    /// `501` — syntax error in parameters.
    pub const BAD_SYNTAX: u16 = 501;
    /// `502` — command not implemented.
    pub const NOT_IMPLEMENTED: u16 = 502;
    /// `503` — bad sequence of commands.
    pub const BAD_SEQUENCE: u16 = 503;
    /// `552` — exceeded storage allocation (message size limit).
    pub const SIZE_EXCEEDED: u16 = 552;
    /// `550` — mailbox unavailable (permanent).
    pub const MAILBOX_UNAVAILABLE: u16 = 550;
    /// `554` — transaction failed.
    pub const TRANSACTION_FAILED: u16 = 554;
}

/// The coarse class of a reply code (its first digit).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReplyCategory {
    /// 2yz — the requested action completed.
    PositiveCompletion,
    /// 3yz — more input expected (e.g. 354 after DATA).
    PositiveIntermediate,
    /// 4yz — transient failure; the client should retry later. Greylisting
    /// lives entirely in this class.
    TransientNegative,
    /// 5yz — permanent failure; the client must not retry.
    PermanentNegative,
}

/// A server reply: a three-digit code and one or more text lines.
///
/// # Example
///
/// ```
/// use spamward_smtp::Reply;
/// let r = Reply::greylisted(300);
/// assert_eq!(r.code(), 450);
/// assert!(r.is_transient());
/// assert!(r.to_wire().starts_with("450 "));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Reply {
    code: u16,
    lines: Vec<String>,
}

impl Reply {
    /// Creates a reply.
    ///
    /// # Panics
    ///
    /// Panics if `code` is outside `200..=599` or `lines` is empty.
    pub fn new(code: u16, lines: Vec<String>) -> Self {
        assert!((200..=599).contains(&code), "SMTP reply code {code} out of range");
        assert!(!lines.is_empty(), "a reply needs at least one text line");
        Reply { code, lines }
    }

    /// Creates a single-line reply.
    pub fn single(code: u16, text: impl Into<String>) -> Self {
        Reply::new(code, vec![text.into()])
    }

    // --- Standard replies used across the suite ---

    /// `220` service-ready banner.
    pub fn banner(hostname: &str) -> Self {
        Reply::single(220, format!("{hostname} ESMTP spamward"))
    }

    /// `250` greeting after HELO/EHLO.
    pub fn hello(hostname: &str, peer: &str) -> Self {
        Reply::single(250, format!("{hostname} Hello {peer}, I am glad to meet you"))
    }

    /// `250 OK`.
    pub fn ok() -> Self {
        Reply::single(250, "OK")
    }

    /// `354` start-mail-input.
    pub fn start_mail_input() -> Self {
        Reply::single(354, "End data with <CR><LF>.<CR><LF>")
    }

    /// `450` greylisting rejection, in Postgrey's wording.
    pub fn greylisted(retry_after_secs: u64) -> Self {
        Reply::single(
            450,
            format!("4.2.0 Greylisted, see http://postgrey.schweikert.ch/ (retry in {retry_after_secs}s)"),
        )
    }

    /// `421` service-not-available (server shutting down the channel).
    pub fn service_unavailable(hostname: &str) -> Self {
        Reply::single(
            421,
            format!("{hostname} Service not available, closing transmission channel"),
        )
    }

    /// `550` mailbox unavailable (unknown recipient).
    pub fn no_such_user() -> Self {
        Reply::single(550, "5.1.1 No such user here")
    }

    /// `550` policy rejection (e.g. DNSBL hit).
    pub fn rejected_policy(reason: &str) -> Self {
        Reply::single(550, format!("5.7.1 {reason}"))
    }

    /// `221` closing reply to QUIT.
    pub fn bye(hostname: &str) -> Self {
        Reply::single(221, format!("{hostname} Service closing transmission channel"))
    }

    /// `500` unrecognized command.
    pub fn unrecognized() -> Self {
        Reply::single(500, "5.5.2 Error: command not recognized")
    }

    /// `503` bad sequence of commands.
    pub fn bad_sequence() -> Self {
        Reply::single(503, "5.5.1 Error: bad sequence of commands")
    }

    /// `501` syntax error in parameters.
    pub fn bad_syntax() -> Self {
        Reply::single(501, "5.5.4 Error: syntax error in parameters")
    }

    /// `252` cannot-verify reply to VRFY.
    pub fn cannot_verify() -> Self {
        Reply::single(252, "2.1.5 Cannot VRFY user, but will accept message")
    }

    /// The numeric code.
    pub fn code(&self) -> u16 {
        self.code
    }

    /// The text lines.
    pub fn lines(&self) -> &[String] {
        &self.lines
    }

    /// The reply's class.
    pub fn category(&self) -> ReplyCategory {
        match self.code / 100 {
            2 => ReplyCategory::PositiveCompletion,
            3 => ReplyCategory::PositiveIntermediate,
            4 => ReplyCategory::TransientNegative,
            _ => ReplyCategory::PermanentNegative,
        }
    }

    /// Whether the request succeeded (2yz).
    pub fn is_positive(&self) -> bool {
        self.category() == ReplyCategory::PositiveCompletion
    }

    /// Whether more input is expected (3yz).
    pub fn is_intermediate(&self) -> bool {
        self.category() == ReplyCategory::PositiveIntermediate
    }

    /// Whether the failure is transient (4yz) — the retry-later signal
    /// greylisting relies on.
    pub fn is_transient(&self) -> bool {
        self.category() == ReplyCategory::TransientNegative
    }

    /// Whether the failure is permanent (5yz).
    pub fn is_permanent(&self) -> bool {
        self.category() == ReplyCategory::PermanentNegative
    }

    /// Serializes to wire form, `XYZ-text` continuation lines and a final
    /// `XYZ text` line, CRLF-terminated.
    pub fn to_wire(&self) -> String {
        let mut out = String::new();
        for (i, line) in self.lines.iter().enumerate() {
            let sep = if i + 1 == self.lines.len() { ' ' } else { '-' };
            out.push_str(&format!("{}{}{}\r\n", self.code, sep, line));
        }
        out
    }

    /// Parses a (possibly multi-line) wire-form reply.
    ///
    /// Returns `None` on malformed input.
    pub fn from_wire(s: &str) -> Option<Self> {
        let mut code: Option<u16> = None;
        let mut lines = Vec::new();
        let mut terminated = false;
        for raw in s.split("\r\n").filter(|l| !l.is_empty()) {
            if terminated {
                return None; // text after the final line
            }
            if raw.len() < 4 {
                return None;
            }
            let (head, text) = raw.split_at(4);
            let c: u16 = head[..3].parse().ok()?;
            if !(200..=599).contains(&c) {
                return None;
            }
            match code {
                None => code = Some(c),
                Some(prev) if prev != c => return None,
                _ => {}
            }
            match head.as_bytes()[3] {
                b' ' => terminated = true,
                b'-' => {}
                _ => return None,
            }
            lines.push(text.to_owned());
        }
        if !terminated || lines.is_empty() {
            return None;
        }
        Some(Reply { code: code?, lines })
    }
}

impl fmt::Display for Reply {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.code, self.lines.join(" / "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn categories() {
        assert!(Reply::ok().is_positive());
        assert!(Reply::start_mail_input().is_intermediate());
        assert!(Reply::greylisted(300).is_transient());
        assert!(Reply::no_such_user().is_permanent());
        assert_eq!(Reply::single(421, "x").category(), ReplyCategory::TransientNegative);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_code() {
        let _ = Reply::single(199, "nope");
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn rejects_empty_lines() {
        let _ = Reply::new(250, vec![]);
    }

    #[test]
    fn single_line_wire_roundtrip() {
        let r = Reply::ok();
        assert_eq!(r.to_wire(), "250 OK\r\n");
        assert_eq!(Reply::from_wire(&r.to_wire()).unwrap(), r);
    }

    #[test]
    fn multi_line_wire_roundtrip() {
        let r = Reply::new(250, vec!["first".into(), "second".into(), "third".into()]);
        let wire = r.to_wire();
        assert!(wire.starts_with("250-first\r\n250-second\r\n250 third"));
        assert_eq!(Reply::from_wire(&wire).unwrap(), r);
    }

    #[test]
    fn from_wire_rejects_malformed() {
        assert_eq!(Reply::from_wire(""), None);
        assert_eq!(Reply::from_wire("abc hello\r\n"), None);
        assert_eq!(Reply::from_wire("250-never terminated\r\n"), None);
        assert_eq!(Reply::from_wire("250 ok\r\n251 mixed\r\n"), None);
        assert_eq!(Reply::from_wire("999 out of range\r\n"), None);
        assert_eq!(Reply::from_wire("250 ok\r\ntrailing\r\n"), None);
    }

    #[test]
    fn greylist_reply_carries_retry_hint() {
        let r = Reply::greylisted(300);
        assert!(r.lines()[0].contains("300s"));
    }

    proptest! {
        #[test]
        fn prop_wire_roundtrip(code in 200u16..=599, n in 1usize..4) {
            let lines: Vec<String> = (0..n).map(|i| format!("line {i}")).collect();
            let r = Reply::new(code, lines);
            prop_assert_eq!(Reply::from_wire(&r.to_wire()).unwrap(), r);
        }
    }
}
