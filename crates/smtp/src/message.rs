//! RFC 5322 messages (the minimal subset the experiments move).

use serde::{Deserialize, Serialize};
use std::fmt;

/// An email message: ordered headers and a body.
///
/// The greylisting experiments deliberately resend *identical* messages
/// (the paper's one-spam-task control relies on comparing them), so
/// messages implement `Eq`/`Hash` and expose a stable [`Message::digest`].
///
/// # Example
///
/// ```
/// use spamward_smtp::Message;
/// let m = Message::builder()
///     .header("Subject", "Cheap pills")
///     .header("From", "spam@botnet.example")
///     .body("Buy now!")
///     .build();
/// assert_eq!(m.header("subject"), Some("Cheap pills"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Message {
    headers: Vec<(String, String)>,
    body: String,
}

impl Message {
    /// Starts building a message.
    pub fn builder() -> MessageBuilder {
        MessageBuilder::default()
    }

    /// The headers in order.
    pub fn headers(&self) -> &[(String, String)] {
        &self.headers
    }

    /// The first header with the given (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(n, _)| n.eq_ignore_ascii_case(name)).map(|(_, v)| v.as_str())
    }

    /// The message body.
    pub fn body(&self) -> &str {
        &self.body
    }

    /// Byte size of the wire form (used for SIZE accounting).
    pub fn size(&self) -> usize {
        self.to_wire().len()
    }

    /// A cheap stable digest for identity checks (FNV-1a over the wire
    /// form). Not cryptographic — it only needs to tell "same spam task"
    /// from "different spam task".
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in self.to_wire().bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h
    }

    /// Serializes header section, blank line and body with CRLF endings
    /// (no dot-stuffing; see [`crate::dot_stuff`]).
    pub fn to_wire(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.headers {
            out.push_str(name);
            out.push_str(": ");
            out.push_str(value);
            out.push_str("\r\n");
        }
        out.push_str("\r\n");
        for line in self.body.split('\n') {
            out.push_str(line.trim_end_matches('\r'));
            out.push_str("\r\n");
        }
        out
    }

    /// Parses a wire-form message (headers, blank line, body). Header
    /// continuation lines are not supported — the suite never folds.
    ///
    /// Returns `None` if no blank separator line exists or a header lacks a
    /// colon.
    pub fn from_wire(s: &str) -> Option<Self> {
        let mut headers = Vec::new();
        let mut lines = s.split("\r\n");
        for line in lines.by_ref() {
            if line.is_empty() {
                let body_lines: Vec<&str> = lines.collect();
                let mut body = body_lines.join("\r\n");
                // Trim the trailing CRLF the serializer adds.
                if let Some(stripped) = body.strip_suffix("\r\n") {
                    body = stripped.to_owned();
                }
                while body.ends_with("\r\n") {
                    body.truncate(body.len() - 2);
                }
                let body = body.trim_end_matches("\r\n").replace("\r\n", "\n");
                return Some(Message { headers, body });
            }
            let (name, value) = line.split_once(':')?;
            headers.push((name.trim().to_owned(), value.trim().to_owned()));
        }
        None
    }
}

impl fmt::Display for Message {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "<message {} headers, {} body bytes, digest {:016x}>",
            self.headers.len(),
            self.body.len(),
            self.digest()
        )
    }
}

/// Builder for [`Message`].
#[derive(Debug, Default)]
pub struct MessageBuilder {
    headers: Vec<(String, String)>,
    body: String,
}

impl MessageBuilder {
    /// Appends a header.
    pub fn header(mut self, name: &str, value: &str) -> Self {
        self.headers.push((name.to_owned(), value.to_owned()));
        self
    }

    /// Sets the body.
    pub fn body(mut self, body: &str) -> Self {
        self.body = body.to_owned();
        self
    }

    /// Finishes the message.
    pub fn build(self) -> Message {
        Message { headers: self.headers, body: self.body }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample() -> Message {
        Message::builder()
            .header("From", "a@b.cc")
            .header("To", "x@y.zz")
            .header("Subject", "hello")
            .body("line one\nline two")
            .build()
    }

    #[test]
    fn header_lookup_is_case_insensitive() {
        let m = sample();
        assert_eq!(m.header("subject"), Some("hello"));
        assert_eq!(m.header("SUBJECT"), Some("hello"));
        assert_eq!(m.header("missing"), None);
    }

    #[test]
    fn wire_roundtrip() {
        let m = sample();
        let wire = m.to_wire();
        assert!(wire.contains("Subject: hello\r\n"));
        assert!(wire.contains("\r\n\r\n"));
        let parsed = Message::from_wire(&wire).unwrap();
        assert_eq!(parsed, m);
    }

    #[test]
    fn digest_distinguishes_content() {
        let m1 = sample();
        let m2 = Message::builder().header("Subject", "different").body("x").build();
        assert_ne!(m1.digest(), m2.digest());
        assert_eq!(m1.digest(), sample().digest());
    }

    #[test]
    fn from_wire_rejects_malformed() {
        assert_eq!(Message::from_wire("no blank line"), None);
        assert_eq!(Message::from_wire("not a header\r\n\r\nbody"), None);
    }

    #[test]
    fn empty_body_roundtrip() {
        let m = Message::builder().header("Subject", "s").body("").build();
        let parsed = Message::from_wire(&m.to_wire()).unwrap();
        assert_eq!(parsed.body(), "");
    }

    proptest! {
        #[test]
        fn prop_roundtrip(subject in "[ -~]{0,30}", body in "[a-zA-Z0-9 ]{0,80}") {
            // Header values must not contain ':' confusion — any printable
            // is fine for values; parser splits on first ':' of each line.
            let m = Message::builder().header("Subject", subject.trim()).body(&body).build();
            let parsed = Message::from_wire(&m.to_wire()).unwrap();
            prop_assert_eq!(parsed.body(), m.body());
        }
    }
}
