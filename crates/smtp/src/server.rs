//! The receiving-side SMTP state machine.

use crate::address::{EmailAddress, ReversePath};
use crate::command::Command;
use crate::envelope::Envelope;
use crate::extensions::Capabilities;
use crate::message::Message;
use crate::metrics::SessionMetrics;
use crate::reply::{codes, Reply};
use spamward_sim::SimTime;
use std::net::Ipv4Addr;

/// Where a session currently is in the RFC 5321 command sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionState {
    /// TCP established, banner not yet sent.
    Connected,
    /// Banner sent, waiting for HELO/EHLO.
    AwaitGreeting,
    /// Greeted; MAIL may start a transaction.
    Ready,
    /// MAIL accepted; waiting for RCPT.
    MailGiven,
    /// At least one RCPT accepted; DATA may begin.
    RcptGiven,
    /// 354 sent; the body is being received.
    ReadingData,
    /// QUIT (or fatal policy action) ended the session.
    Closed,
}

/// The in-progress transaction exposed to policy hooks.
#[derive(Debug, Clone)]
pub struct Transaction {
    /// The connecting client's address.
    pub client_ip: Ipv4Addr,
    /// The client's reverse-DNS name, when the server looked one up at
    /// connect time (name-based whitelists key on this).
    pub client_rdns: Option<String>,
    /// The greeting argument (empty until HELO/EHLO).
    pub helo: String,
    /// The envelope sender, once MAIL was issued.
    pub mail_from: Option<ReversePath>,
    /// Recipients accepted so far.
    pub recipients: Vec<EmailAddress>,
}

impl Transaction {
    fn new(client_ip: Ipv4Addr) -> Self {
        Transaction {
            client_ip,
            client_rdns: None,
            helo: String::new(),
            mail_from: None,
            recipients: Vec::new(),
        }
    }

    fn reset_mail(&mut self) {
        self.mail_from = None;
        self.recipients.clear();
    }
}

/// What a policy hook decides about the current protocol step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PolicyDecision {
    /// Let the step proceed.
    Accept,
    /// Answer with a transient 4xx — the greylisting path.
    TempFail(Reply),
    /// Answer with a permanent 5xx.
    Reject(Reply),
}

impl PolicyDecision {
    fn into_reply(self) -> Option<Reply> {
        match self {
            PolicyDecision::Accept => None,
            PolicyDecision::TempFail(r) | PolicyDecision::Reject(r) => Some(r),
        }
    }
}

/// The pluggable policy a receiving MTA wires into its sessions.
///
/// Every hook defaults to [`PolicyDecision::Accept`], so a policy only
/// overrides the stages it cares about (greylisting hooks `on_rcpt`;
/// recipient validation hooks it too; a DNSBL would hook `on_connect`).
pub trait ServerPolicy {
    /// Called before the banner; rejecting here yields a 4xx/5xx banner.
    fn on_connect(&mut self, _now: SimTime, _client_ip: Ipv4Addr) -> PolicyDecision {
        PolicyDecision::Accept
    }

    /// Called when the client starts talking *before* the banner arrived
    /// (postscreen-style early-talker detection). Fire-and-forget bots are
    /// the main population that trips this.
    fn on_pregreet(&mut self, _now: SimTime, _client_ip: Ipv4Addr) -> PolicyDecision {
        PolicyDecision::Accept
    }

    /// Called after HELO/EHLO.
    fn on_helo(&mut self, _now: SimTime, _tx: &Transaction) -> PolicyDecision {
        PolicyDecision::Accept
    }

    /// Called after MAIL FROM.
    fn on_mail(&mut self, _now: SimTime, _tx: &Transaction) -> PolicyDecision {
        PolicyDecision::Accept
    }

    /// Called for each RCPT TO — the stage where pre-acceptance filters
    /// (recipient validation, whitelists, greylisting) act.
    fn on_rcpt(
        &mut self,
        _now: SimTime,
        _tx: &Transaction,
        _rcpt: &EmailAddress,
    ) -> PolicyDecision {
        PolicyDecision::Accept
    }

    /// Called with the complete message after the final dot; rejecting here
    /// is a post-acceptance (content) filter.
    fn on_message(&mut self, _now: SimTime, _env: &Envelope, _msg: &Message) -> PolicyDecision {
        PolicyDecision::Accept
    }

    /// Notification that a message was accepted and queued for delivery.
    fn on_accepted(&mut self, _now: SimTime, _env: &Envelope, _msg: &Message) {}
}

/// A no-op policy accepting everything (open relay — test use only).
#[derive(Debug, Clone, Copy, Default)]
pub struct AcceptAll;

impl ServerPolicy for AcceptAll {}

/// The receiving-side state machine for one TCP session.
///
/// Drive it with [`ServerSession::open`] once, then [`ServerSession::handle`]
/// per command (and [`ServerSession::handle_data_body`] for the body after a
/// 354). The session enforces RFC 5321 command sequencing itself; policy
/// hooks only see well-ordered events.
///
/// # Example
///
/// ```
/// use std::net::Ipv4Addr;
/// use spamward_smtp::{AcceptAll, Command, ServerSession};
/// use spamward_sim::SimTime;
///
/// let mut policy = AcceptAll;
/// let mut s = ServerSession::new("mx.foo.net", Ipv4Addr::new(203, 0, 113, 9));
/// let now = SimTime::ZERO;
/// assert_eq!(s.open(now, &mut policy).code(), 220);
/// assert_eq!(s.handle(now, &Command::parse("HELO bot.local"), &mut policy).code(), 250);
/// ```
#[derive(Debug)]
pub struct ServerSession {
    hostname: String,
    state: SessionState,
    tx: Transaction,
    capabilities: Capabilities,
    /// Whether the current greeting was EHLO (extensions negotiated).
    esmtp: bool,
    /// Completed envelopes/messages this session (a session can carry
    /// several transactions).
    accepted: Vec<(Envelope, Message)>,
    /// Protocol counters for this session (commands, reply classes,
    /// dialect violations); absorbed by the owning MTA when the session
    /// ends.
    metrics: SessionMetrics,
}

impl ServerSession {
    /// Creates a session for a client connecting from `client_ip`.
    pub fn new(hostname: &str, client_ip: Ipv4Addr) -> Self {
        ServerSession {
            hostname: hostname.to_owned(),
            state: SessionState::Connected,
            tx: Transaction::new(client_ip),
            capabilities: Capabilities::default(),
            esmtp: false,
            accepted: Vec::new(),
            metrics: SessionMetrics::default(),
        }
    }

    /// Replaces the advertised extension set.
    pub fn with_capabilities(mut self, capabilities: Capabilities) -> Self {
        self.capabilities = capabilities;
        self
    }

    /// Records the client's reverse-DNS name (servers resolve PTR at
    /// connect time; policies see it on the transaction).
    pub fn with_client_rdns(mut self, rdns: Option<String>) -> Self {
        self.tx.client_rdns = rdns;
        self
    }

    /// The extension set this server advertises on EHLO.
    pub fn capabilities(&self) -> &Capabilities {
        &self.capabilities
    }

    /// The session's current state.
    pub fn state(&self) -> SessionState {
        self.state
    }

    /// Whether the session has ended.
    pub fn is_closed(&self) -> bool {
        self.state == SessionState::Closed
    }

    /// Envelopes and messages accepted during this session.
    pub fn accepted(&self) -> &[(Envelope, Message)] {
        &self.accepted
    }

    /// The session's protocol counters so far.
    pub fn metrics(&self) -> &SessionMetrics {
        &self.metrics
    }

    /// Sends the banner (or a policy rejection banner) for a client that
    /// *talked before the banner* — runs the pregreet hook first.
    ///
    /// # Panics
    ///
    /// Panics if called twice.
    pub fn open_pregreeted(&mut self, now: SimTime, policy: &mut dyn ServerPolicy) -> Reply {
        assert_eq!(self.state, SessionState::Connected, "open() called twice");
        if let Some(reply) = policy.on_pregreet(now, self.tx.client_ip).into_reply() {
            self.state = SessionState::Closed;
            self.metrics.on_reply(&reply);
            return reply;
        }
        self.open(now, policy)
    }

    /// Sends the banner (or a policy rejection banner).
    ///
    /// # Panics
    ///
    /// Panics if called twice.
    pub fn open(&mut self, now: SimTime, policy: &mut dyn ServerPolicy) -> Reply {
        assert_eq!(self.state, SessionState::Connected, "open() called twice");
        let reply = match policy.on_connect(now, self.tx.client_ip).into_reply() {
            Some(reply) => {
                self.state = SessionState::Closed;
                reply
            }
            None => {
                self.state = SessionState::AwaitGreeting;
                Reply::banner(&self.hostname)
            }
        };
        self.metrics.on_reply(&reply);
        reply
    }

    /// Handles one client command.
    ///
    /// # Panics
    ///
    /// Panics if called before [`ServerSession::open`], after the session
    /// closed, or while a DATA body is expected.
    pub fn handle(&mut self, now: SimTime, cmd: &Command, policy: &mut dyn ServerPolicy) -> Reply {
        assert!(
            !matches!(
                self.state,
                SessionState::Connected | SessionState::Closed | SessionState::ReadingData
            ),
            "handle() called in state {:?}",
            self.state
        );
        self.metrics.on_command(cmd);
        let reply = self.dispatch(now, cmd, policy);
        self.metrics.on_reply(&reply);
        reply
    }

    fn dispatch(&mut self, now: SimTime, cmd: &Command, policy: &mut dyn ServerPolicy) -> Reply {
        match cmd {
            Command::Helo { domain } | Command::Ehlo { domain } => {
                self.esmtp = matches!(cmd, Command::Ehlo { .. });
                self.tx.helo = domain.clone();
                self.tx.reset_mail();
                match policy.on_helo(now, &self.tx).into_reply() {
                    Some(r) => r,
                    None => {
                        self.state = SessionState::Ready;
                        if self.esmtp {
                            let mut lines = vec![format!("{} Hello {}", self.hostname, domain)];
                            lines.extend(self.capabilities.ehlo_lines());
                            Reply::new(codes::OK, lines)
                        } else {
                            Reply::hello(&self.hostname, domain)
                        }
                    }
                }
            }
            Command::MailFrom { path, declared_size } => {
                if !matches!(self.state, SessionState::Ready) {
                    return Reply::bad_sequence();
                }
                if let (Some(limit), Some(declared)) = (self.capabilities.size_limit, declared_size)
                {
                    if *declared > limit {
                        return Reply::single(
                            codes::SIZE_EXCEEDED,
                            "5.3.4 Message size exceeds fixed maximum message size",
                        );
                    }
                }
                self.tx.mail_from = Some(path.clone());
                match policy.on_mail(now, &self.tx).into_reply() {
                    Some(r) => {
                        self.tx.reset_mail();
                        r
                    }
                    None => {
                        self.state = SessionState::MailGiven;
                        Reply::ok()
                    }
                }
            }
            Command::RcptTo { address } => {
                if !matches!(self.state, SessionState::MailGiven | SessionState::RcptGiven) {
                    return Reply::bad_sequence();
                }
                match policy.on_rcpt(now, &self.tx, address).into_reply() {
                    Some(r) => r,
                    None => {
                        self.tx.recipients.push(address.clone());
                        self.state = SessionState::RcptGiven;
                        Reply::ok()
                    }
                }
            }
            Command::Data => {
                if self.state != SessionState::RcptGiven {
                    return Reply::bad_sequence();
                }
                self.state = SessionState::ReadingData;
                Reply::start_mail_input()
            }
            Command::Rset => {
                self.tx.reset_mail();
                if self.state != SessionState::AwaitGreeting {
                    self.state = SessionState::Ready;
                }
                Reply::ok()
            }
            Command::Noop => Reply::ok(),
            Command::Quit => {
                self.state = SessionState::Closed;
                Reply::bye(&self.hostname)
            }
            Command::Vrfy { .. } => Reply::cannot_verify(),
            Command::StartTls => {
                if self.capabilities.starttls {
                    // Negotiation is stubbed: the session continues in the
                    // clear, as the experiments don't model TLS.
                    Reply::single(
                        codes::TLS_NOT_AVAILABLE,
                        "4.7.0 TLS not available due to local problem",
                    )
                } else {
                    Reply::single(codes::NOT_IMPLEMENTED, "5.5.1 STARTTLS not offered")
                }
            }
            Command::Unknown { .. } => Reply::unrecognized(),
        }
    }

    /// Handles the message body after a 354, ending the transaction.
    ///
    /// `body_wire` is the already dot-unstuffed message text.
    ///
    /// # Panics
    ///
    /// Panics unless a 354 was just issued.
    pub fn handle_data_body(
        &mut self,
        now: SimTime,
        body_wire: &str,
        policy: &mut dyn ServerPolicy,
    ) -> Reply {
        assert_eq!(self.state, SessionState::ReadingData, "no DATA in progress");
        let reply = self.data_body_inner(now, body_wire, policy);
        self.metrics.on_reply(&reply);
        reply
    }

    fn data_body_inner(
        &mut self,
        now: SimTime,
        body_wire: &str,
        policy: &mut dyn ServerPolicy,
    ) -> Reply {
        if let Some(limit) = self.capabilities.size_limit {
            if body_wire.len() as u64 > limit {
                self.state = SessionState::Ready;
                self.tx.reset_mail();
                return Reply::single(
                    codes::SIZE_EXCEEDED,
                    "5.3.4 Message size exceeds fixed maximum message size",
                );
            }
        }
        let message = Message::from_wire(body_wire).unwrap_or_else(|| {
            // Bots sometimes send header-less junk; store it as a bare body.
            Message::builder().body(body_wire).build()
        });
        let mut builder = Envelope::builder()
            .client_ip(self.tx.client_ip)
            .helo(&self.tx.helo)
            .rcpts(self.tx.recipients.iter().cloned());
        if let Some(mail_from) = self.tx.mail_from.clone() {
            builder = builder.mail_from(mail_from);
        }
        let envelope = match builder.try_build() {
            Ok(envelope) => envelope,
            // A 354 is only issued after MAIL and RCPT, so this transaction
            // state is corrupt; fail the transaction, not the process.
            Err(_) => {
                self.state = SessionState::Ready;
                self.tx.reset_mail();
                return Reply::bad_sequence();
            }
        };
        self.state = SessionState::Ready;
        self.tx.reset_mail();
        match policy.on_message(now, &envelope, &message).into_reply() {
            Some(r) => r,
            None => {
                policy.on_accepted(now, &envelope, &message);
                self.accepted.push((envelope, message));
                Reply::single(codes::OK, "2.0.0 OK: queued")
            }
        }
    }
}

impl Envelope {
    /// Rebuilds an envelope from a finished server transaction (used by
    /// tests and log tooling).
    pub fn from_transaction(tx: &Transaction) -> Option<Envelope> {
        let mail_from = tx.mail_from.clone()?;
        if tx.recipients.is_empty() {
            return None;
        }
        Some(
            Envelope::builder()
                .client_ip(tx.client_ip)
                .helo(&tx.helo)
                .mail_from(mail_from)
                .rcpts(tx.recipients.iter().cloned())
                .build(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const NOW: SimTime = SimTime::ZERO;

    fn client_ip() -> Ipv4Addr {
        Ipv4Addr::new(203, 0, 113, 9)
    }

    fn session() -> ServerSession {
        ServerSession::new("mx.foo.net", client_ip())
    }

    fn cmd(s: &str) -> Command {
        Command::parse(s)
    }

    #[test]
    fn happy_path_transaction() {
        let mut p = AcceptAll;
        let mut s = session();
        assert_eq!(s.open(NOW, &mut p).code(), 220);
        assert_eq!(s.handle(NOW, &cmd("EHLO relay.example"), &mut p).code(), 250);
        assert_eq!(s.handle(NOW, &cmd("MAIL FROM:<a@b.cc>"), &mut p).code(), 250);
        assert_eq!(s.handle(NOW, &cmd("RCPT TO:<x@foo.net>"), &mut p).code(), 250);
        assert_eq!(s.handle(NOW, &cmd("DATA"), &mut p).code(), 354);
        let body = "Subject: hi\r\n\r\nhello\r\n";
        assert_eq!(s.handle_data_body(NOW, body, &mut p).code(), 250);
        assert_eq!(s.handle(NOW, &cmd("QUIT"), &mut p).code(), 221);
        assert!(s.is_closed());
        assert_eq!(s.accepted().len(), 1);
        let (env, msg) = &s.accepted()[0];
        assert_eq!(env.client_ip(), client_ip());
        assert_eq!(env.helo(), "relay.example");
        assert_eq!(msg.header("subject"), Some("hi"));
    }

    #[test]
    fn enforces_command_sequence() {
        let mut p = AcceptAll;
        let mut s = session();
        s.open(NOW, &mut p);
        // MAIL before HELO.
        assert_eq!(s.handle(NOW, &cmd("MAIL FROM:<a@b.cc>"), &mut p).code(), 503);
        s.handle(NOW, &cmd("HELO x"), &mut p);
        // RCPT before MAIL.
        assert_eq!(s.handle(NOW, &cmd("RCPT TO:<x@foo.net>"), &mut p).code(), 503);
        // DATA before RCPT.
        s.handle(NOW, &cmd("MAIL FROM:<a@b.cc>"), &mut p);
        assert_eq!(s.handle(NOW, &cmd("DATA"), &mut p).code(), 503);
    }

    #[test]
    fn rset_clears_transaction() {
        let mut p = AcceptAll;
        let mut s = session();
        s.open(NOW, &mut p);
        s.handle(NOW, &cmd("HELO x"), &mut p);
        s.handle(NOW, &cmd("MAIL FROM:<a@b.cc>"), &mut p);
        s.handle(NOW, &cmd("RCPT TO:<x@foo.net>"), &mut p);
        assert_eq!(s.handle(NOW, &cmd("RSET"), &mut p).code(), 250);
        // Transaction must restart from MAIL.
        assert_eq!(s.handle(NOW, &cmd("RCPT TO:<x@foo.net>"), &mut p).code(), 503);
        assert_eq!(s.handle(NOW, &cmd("MAIL FROM:<a@b.cc>"), &mut p).code(), 250);
    }

    #[test]
    fn misc_commands() {
        let mut p = AcceptAll;
        let mut s = session();
        s.open(NOW, &mut p);
        assert_eq!(s.handle(NOW, &cmd("NOOP"), &mut p).code(), 250);
        assert_eq!(s.handle(NOW, &cmd("VRFY root"), &mut p).code(), 252);
        assert_eq!(s.handle(NOW, &cmd("STARTTLS"), &mut p).code(), 502);
        assert_eq!(s.handle(NOW, &cmd("FROBNICATE"), &mut p).code(), 500);
    }

    struct GreylistEverything;
    impl ServerPolicy for GreylistEverything {
        fn on_rcpt(&mut self, _: SimTime, _: &Transaction, _: &EmailAddress) -> PolicyDecision {
            PolicyDecision::TempFail(Reply::greylisted(300))
        }
    }

    #[test]
    fn policy_tempfail_at_rcpt() {
        let mut p = GreylistEverything;
        let mut s = session();
        s.open(NOW, &mut p);
        s.handle(NOW, &cmd("HELO x"), &mut p);
        s.handle(NOW, &cmd("MAIL FROM:<a@b.cc>"), &mut p);
        let r = s.handle(NOW, &cmd("RCPT TO:<x@foo.net>"), &mut p);
        assert_eq!(r.code(), 450);
        assert!(r.is_transient());
        // No recipient accepted → DATA still refused.
        assert_eq!(s.handle(NOW, &cmd("DATA"), &mut p).code(), 503);
    }

    struct RejectConnections;
    impl ServerPolicy for RejectConnections {
        fn on_connect(&mut self, _: SimTime, _: Ipv4Addr) -> PolicyDecision {
            PolicyDecision::Reject(Reply::single(554, "5.7.1 go away"))
        }
    }

    #[test]
    fn policy_reject_at_connect_closes() {
        let mut p = RejectConnections;
        let mut s = session();
        let banner = s.open(NOW, &mut p);
        assert_eq!(banner.code(), 554);
        assert!(s.is_closed());
    }

    struct CountAccepted(usize);
    impl ServerPolicy for CountAccepted {
        fn on_accepted(&mut self, _: SimTime, _: &Envelope, _: &Message) {
            self.0 += 1;
        }
    }

    #[test]
    fn multiple_transactions_per_session() {
        let mut p = CountAccepted(0);
        let mut s = session();
        s.open(NOW, &mut p);
        s.handle(NOW, &cmd("HELO x"), &mut p);
        for _ in 0..3 {
            s.handle(NOW, &cmd("MAIL FROM:<a@b.cc>"), &mut p);
            s.handle(NOW, &cmd("RCPT TO:<x@foo.net>"), &mut p);
            s.handle(NOW, &cmd("DATA"), &mut p);
            s.handle_data_body(NOW, "Subject: s\r\n\r\nb\r\n", &mut p);
        }
        assert_eq!(p.0, 3);
        assert_eq!(s.accepted().len(), 3);
    }

    #[test]
    fn headerless_body_still_accepted() {
        let mut p = AcceptAll;
        let mut s = session();
        s.open(NOW, &mut p);
        s.handle(NOW, &cmd("HELO x"), &mut p);
        s.handle(NOW, &cmd("MAIL FROM:<a@b.cc>"), &mut p);
        s.handle(NOW, &cmd("RCPT TO:<x@foo.net>"), &mut p);
        s.handle(NOW, &cmd("DATA"), &mut p);
        assert_eq!(s.handle_data_body(NOW, "just junk no headers", &mut p).code(), 250);
        assert_eq!(s.accepted()[0].1.body(), "just junk no headers");
    }

    #[test]
    #[should_panic(expected = "open() called twice")]
    fn double_open_panics() {
        let mut p = AcceptAll;
        let mut s = session();
        s.open(NOW, &mut p);
        s.open(NOW, &mut p);
    }

    #[test]
    fn ehlo_advertises_capabilities_helo_does_not() {
        let mut p = AcceptAll;
        let mut s = session();
        s.open(NOW, &mut p);
        let r = s.handle(NOW, &cmd("EHLO relay.example"), &mut p);
        assert_eq!(r.code(), 250);
        assert!(r.lines().len() > 1, "EHLO reply must be multi-line");
        assert!(r.lines().iter().any(|l| l == "PIPELINING"));
        assert!(r.lines().iter().any(|l| l.starts_with("SIZE ")));

        let mut s = session();
        s.open(NOW, &mut p);
        let r = s.handle(NOW, &cmd("HELO relay.example"), &mut p);
        assert_eq!(r.lines().len(), 1, "HELO reply must be single-line");
    }

    #[test]
    fn declared_size_over_limit_rejected_at_mail() {
        let mut p = AcceptAll;
        let mut s = session().with_capabilities(crate::extensions::Capabilities {
            size_limit: Some(1_000),
            ..Default::default()
        });
        s.open(NOW, &mut p);
        s.handle(NOW, &cmd("EHLO x"), &mut p);
        let r = s.handle(NOW, &cmd("MAIL FROM:<a@b.cc> SIZE=5000"), &mut p);
        assert_eq!(r.code(), 552);
        // Within limit proceeds.
        let r = s.handle(NOW, &cmd("MAIL FROM:<a@b.cc> SIZE=500"), &mut p);
        assert_eq!(r.code(), 250);
    }

    #[test]
    fn oversized_body_rejected_after_data() {
        let mut p = AcceptAll;
        let mut s = session().with_capabilities(crate::extensions::Capabilities {
            size_limit: Some(64),
            ..Default::default()
        });
        s.open(NOW, &mut p);
        s.handle(NOW, &cmd("HELO x"), &mut p);
        s.handle(NOW, &cmd("MAIL FROM:<a@b.cc>"), &mut p);
        s.handle(NOW, &cmd("RCPT TO:<x@foo.net>"), &mut p);
        s.handle(NOW, &cmd("DATA"), &mut p);
        let big_body = format!("Subject: s\r\n\r\n{}\r\n", "x".repeat(200));
        let r = s.handle_data_body(NOW, &big_body, &mut p);
        assert_eq!(r.code(), 552);
        assert!(s.accepted().is_empty());
        // The session recovers: a new small transaction succeeds.
        s.handle(NOW, &cmd("MAIL FROM:<a@b.cc>"), &mut p);
        s.handle(NOW, &cmd("RCPT TO:<x@foo.net>"), &mut p);
        s.handle(NOW, &cmd("DATA"), &mut p);
        assert_eq!(s.handle_data_body(NOW, "Subject: s\r\n\r\nok\r\n", &mut p).code(), 250);
    }

    #[test]
    fn starttls_answer_depends_on_capability() {
        let mut p = AcceptAll;
        let mut s = session();
        s.open(NOW, &mut p);
        s.handle(NOW, &cmd("HELO x"), &mut p);
        assert_eq!(s.handle(NOW, &cmd("STARTTLS"), &mut p).code(), 502);

        let mut s = session().with_capabilities(crate::extensions::Capabilities {
            starttls: true,
            ..Default::default()
        });
        s.open(NOW, &mut p);
        s.handle(NOW, &cmd("HELO x"), &mut p);
        assert_eq!(s.handle(NOW, &cmd("STARTTLS"), &mut p).code(), 454);
    }

    struct RejectPregreeters;
    impl ServerPolicy for RejectPregreeters {
        fn on_pregreet(&mut self, _: SimTime, _: Ipv4Addr) -> PolicyDecision {
            PolicyDecision::Reject(Reply::single(554, "5.5.1 protocol error: talked too soon"))
        }
    }

    #[test]
    fn pregreet_hook_vetoes_early_talkers() {
        let mut p = RejectPregreeters;
        let mut s = session();
        let banner = s.open_pregreeted(NOW, &mut p);
        assert_eq!(banner.code(), 554);
        assert!(s.is_closed());
        // Patient clients (open without pregreet) are unaffected.
        let mut s = session();
        assert_eq!(s.open(NOW, &mut p).code(), 220);
    }

    proptest::proptest! {
        /// Robustness: any stream of textual junk and valid commands gets
        /// a well-formed reply (code in 200..=599) and never panics, until
        /// the client QUITs.
        #[test]
        fn prop_server_survives_arbitrary_command_streams(
            lines in proptest::collection::vec("[ -~]{0,40}", 1..25)
        ) {
            let mut p = AcceptAll;
            let mut s = session();
            let banner = s.open(NOW, &mut p);
            proptest::prop_assert!((200..=599).contains(&banner.code()));
            for line in lines {
                if s.is_closed() {
                    break;
                }
                let cmd = Command::parse(&line);
                if s.state() == SessionState::ReadingData {
                    // The driver layer would be collecting body lines here;
                    // terminate the body and continue.
                    let r = s.handle_data_body(NOW, "Subject: x\r\n\r\nbody\r\n", &mut p);
                    proptest::prop_assert!((200..=599).contains(&r.code()));
                    continue;
                }
                let r = s.handle(NOW, &cmd, &mut p);
                proptest::prop_assert!((200..=599).contains(&r.code()));
                // Wire form always parses back.
                proptest::prop_assert!(Reply::from_wire(&r.to_wire()).is_some());
            }
        }
    }

    #[test]
    fn transaction_to_envelope_helper() {
        let tx = Transaction {
            client_ip: client_ip(),
            client_rdns: None,
            helo: "h".into(),
            mail_from: Some(ReversePath::Null),
            recipients: vec!["x@foo.net".parse().unwrap()],
        };
        let env = Envelope::from_transaction(&tx).unwrap();
        assert_eq!(env.mail_from(), &ReversePath::Null);
        let incomplete = Transaction::new(client_ip());
        assert!(Envelope::from_transaction(&incomplete).is_none());
    }
}
