//! SMTP commands.

use crate::address::{EmailAddress, ReversePath};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A client command as defined by RFC 5321 §4.1 (the subset mail delivery
/// exercises), plus an `Unknown` catch-all so sloppy bot dialects can be
/// represented and fingerprinted rather than rejected at parse time.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Command {
    /// `HELO <domain>` — old-style greeting.
    Helo {
        /// The name the client claims.
        domain: String,
    },
    /// `EHLO <domain>` — extended greeting.
    Ehlo {
        /// The name the client claims.
        domain: String,
    },
    /// `MAIL FROM:<reverse-path> [SIZE=n]`.
    MailFrom {
        /// The envelope sender (null path for bounces).
        path: ReversePath,
        /// The RFC 1870 `SIZE=` declaration, when present.
        declared_size: Option<u64>,
    },
    /// `RCPT TO:<forward-path>`.
    RcptTo {
        /// The envelope recipient.
        address: EmailAddress,
    },
    /// `DATA`.
    Data,
    /// `RSET`.
    Rset,
    /// `NOOP`.
    Noop,
    /// `QUIT`.
    Quit,
    /// `VRFY <string>`.
    Vrfy {
        /// The mailbox being probed.
        target: String,
    },
    /// `STARTTLS` (the suite only records it; no TLS is simulated).
    StartTls,
    /// Anything unparseable — kept verbatim for dialect fingerprinting.
    Unknown {
        /// The raw line as received.
        raw: String,
    },
}

impl Command {
    /// Parses one CRLF-stripped command line.
    ///
    /// Never fails: unparseable input becomes [`Command::Unknown`], because
    /// the *server* decides how to answer junk (and the dialect fingerprint
    /// wants to see it).
    pub fn parse(line: &str) -> Command {
        let trimmed = line.trim_end_matches(['\r', '\n']);
        let upper = trimmed.to_ascii_uppercase();
        let arg = |prefix: &str| trimmed[prefix.len()..].trim().to_owned();

        if upper.starts_with("HELO ") {
            return Command::Helo { domain: arg("HELO ") };
        }
        if upper == "HELO" {
            return Command::Helo { domain: String::new() };
        }
        if upper.starts_with("EHLO ") {
            return Command::Ehlo { domain: arg("EHLO ") };
        }
        if upper == "EHLO" {
            return Command::Ehlo { domain: String::new() };
        }
        if let Some(rest) = strip_prefix_ci(trimmed, "MAIL FROM:") {
            let rest = rest.trim();
            // Split the path from optional ESMTP parameters (RFC 1870's
            // SIZE=, RFC 6152's BODY=, ...).
            let (path_part, params) = match rest.split_once(char::is_whitespace) {
                Some((p, rest_params)) => (p, rest_params),
                None => (rest, ""),
            };
            let mut declared_size = None;
            for param in params.split_whitespace() {
                if let Some(value) = strip_prefix_ci(param, "SIZE=") {
                    declared_size = value.parse().ok();
                }
            }
            return match ReversePath::parse(path_part) {
                Ok(path) => Command::MailFrom { path, declared_size },
                Err(_) => Command::Unknown { raw: trimmed.to_owned() },
            };
        }
        if let Some(rest) = strip_prefix_ci(trimmed, "RCPT TO:") {
            return match EmailAddress::parse(rest.trim()) {
                Ok(address) => Command::RcptTo { address },
                Err(_) => Command::Unknown { raw: trimmed.to_owned() },
            };
        }
        match upper.as_str() {
            "DATA" => Command::Data,
            "RSET" => Command::Rset,
            "NOOP" => Command::Noop,
            "QUIT" => Command::Quit,
            "STARTTLS" => Command::StartTls,
            _ if upper.starts_with("VRFY ") => Command::Vrfy { target: arg("VRFY ") },
            _ => Command::Unknown { raw: trimmed.to_owned() },
        }
    }

    /// The canonical verb of this command (used by fingerprints and logs).
    pub fn verb(&self) -> &'static str {
        match self {
            Command::Helo { .. } => "HELO",
            Command::Ehlo { .. } => "EHLO",
            Command::MailFrom { .. } => "MAIL",
            Command::RcptTo { .. } => "RCPT",
            Command::Data => "DATA",
            Command::Rset => "RSET",
            Command::Noop => "NOOP",
            Command::Quit => "QUIT",
            Command::Vrfy { .. } => "VRFY",
            Command::StartTls => "STARTTLS",
            Command::Unknown { .. } => "UNKNOWN",
        }
    }

    /// Serializes to one CRLF-terminated wire line.
    pub fn to_wire(&self) -> String {
        match self {
            Command::Helo { domain } => format!("HELO {domain}\r\n"),
            Command::Ehlo { domain } => format!("EHLO {domain}\r\n"),
            Command::MailFrom { path, declared_size } => match declared_size {
                Some(n) => format!("MAIL FROM:{path} SIZE={n}\r\n"),
                None => format!("MAIL FROM:{path}\r\n"),
            },
            Command::RcptTo { address } => format!("RCPT TO:{}\r\n", address.to_path()),
            Command::Data => "DATA\r\n".to_owned(),
            Command::Rset => "RSET\r\n".to_owned(),
            Command::Noop => "NOOP\r\n".to_owned(),
            Command::Quit => "QUIT\r\n".to_owned(),
            Command::Vrfy { target } => format!("VRFY {target}\r\n"),
            Command::StartTls => "STARTTLS\r\n".to_owned(),
            Command::Unknown { raw } => format!("{raw}\r\n"),
        }
    }
}

fn strip_prefix_ci<'a>(s: &'a str, prefix: &str) -> Option<&'a str> {
    let head = s.get(..prefix.len())?;
    if head.eq_ignore_ascii_case(prefix) {
        Some(&s[prefix.len()..])
    } else {
        None
    }
}

impl fmt::Display for Command {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.to_wire().trim_end())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn parses_greetings() {
        assert_eq!(
            Command::parse("HELO local.domain.name"),
            Command::Helo { domain: "local.domain.name".into() }
        );
        assert_eq!(
            Command::parse("ehlo relay.example"),
            Command::Ehlo { domain: "relay.example".into() }
        );
        assert_eq!(Command::parse("HELO"), Command::Helo { domain: String::new() });
    }

    #[test]
    fn parses_mail_and_rcpt() {
        match Command::parse("MAIL FROM:<alice@example.com>") {
            Command::MailFrom { path, declared_size } => {
                assert_eq!(path.normalized(), "alice@example.com");
                assert_eq!(declared_size, None);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(
            Command::parse("MAIL FROM:<>"),
            Command::MailFrom { path: ReversePath::Null, declared_size: None }
        );
        match Command::parse("MAIL FROM:<a@b.cc> SIZE=12345 BODY=8BITMIME") {
            Command::MailFrom { declared_size, .. } => assert_eq!(declared_size, Some(12345)),
            other => panic!("unexpected {other:?}"),
        }
        match Command::parse("mail from:<a@b.cc> size=77") {
            Command::MailFrom { declared_size, .. } => assert_eq!(declared_size, Some(77)),
            other => panic!("unexpected {other:?}"),
        }
        match Command::parse("rcpt to:<bob@foo.net>") {
            Command::RcptTo { address } => assert_eq!(address.to_string(), "bob@foo.net"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_bare_commands_case_insensitively() {
        assert_eq!(Command::parse("data"), Command::Data);
        assert_eq!(Command::parse("QUIT"), Command::Quit);
        assert_eq!(Command::parse("Rset"), Command::Rset);
        assert_eq!(Command::parse("noop"), Command::Noop);
        assert_eq!(Command::parse("STARTTLS"), Command::StartTls);
        assert_eq!(
            Command::parse("VRFY postmaster"),
            Command::Vrfy { target: "postmaster".into() }
        );
    }

    #[test]
    fn junk_becomes_unknown() {
        assert_eq!(
            Command::parse("XYZZY nothing"),
            Command::Unknown { raw: "XYZZY nothing".into() }
        );
        assert_eq!(
            Command::parse("MAIL FROM:not-an-address"),
            Command::Unknown { raw: "MAIL FROM:not-an-address".into() }
        );
        assert_eq!(
            Command::parse("RCPT TO:<broken"),
            Command::Unknown { raw: "RCPT TO:<broken".into() }
        );
    }

    #[test]
    fn wire_roundtrip() {
        let cmds = vec![
            Command::Helo { domain: "a.b".into() },
            Command::Ehlo { domain: "a.b".into() },
            Command::MailFrom { path: ReversePath::Null, declared_size: None },
            Command::MailFrom { path: ReversePath::Null, declared_size: Some(9_000) },
            Command::MailFrom {
                path: ReversePath::Address("x@y.zz".parse().unwrap()),
                declared_size: None,
            },
            Command::RcptTo { address: "u@v.ww".parse().unwrap() },
            Command::Data,
            Command::Rset,
            Command::Noop,
            Command::Quit,
            Command::StartTls,
            Command::Vrfy { target: "root".into() },
        ];
        for c in cmds {
            let wire = c.to_wire();
            assert!(wire.ends_with("\r\n"));
            assert_eq!(Command::parse(&wire), c, "roundtrip failed for {wire:?}");
        }
    }

    #[test]
    fn verbs() {
        assert_eq!(Command::Data.verb(), "DATA");
        assert_eq!(Command::parse("garbage").verb(), "UNKNOWN");
        assert_eq!(Command::parse("MAIL FROM:<>").verb(), "MAIL");
    }

    proptest! {
        #[test]
        fn prop_parse_never_panics(line in "\\PC{0,60}") {
            let _ = Command::parse(&line);
        }

        #[test]
        fn prop_rcpt_roundtrip(local in "[a-z]{1,8}", dom in "[a-z]{1,8}\\.[a-z]{2,3}") {
            let addr: EmailAddress = format!("{local}@{dom}").parse().unwrap();
            let cmd = Command::RcptTo { address: addr };
            prop_assert_eq!(Command::parse(&cmd.to_wire()), cmd);
        }
    }
}
