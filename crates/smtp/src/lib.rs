//! SMTP protocol implementation (RFC 5321 subset) for the `spamward` suite.
//!
//! Nolisting and greylisting both exploit the gap between what RFC 5321
//! requires of a sending client and what fire-and-forget spam software
//! actually implements. Measuring that gap requires a real protocol engine
//! on both sides of the connection:
//!
//! * [`Command`]/[`Reply`] — the wire grammar, with parsing and formatting
//!   (the *dialect* work of Stringhini et al. fingerprints exactly these
//!   details).
//! * [`EmailAddress`], [`ReversePath`], [`Envelope`], [`Message`] — the
//!   objects a transaction moves.
//! * [`ServerSession`] — the receiving state machine, parameterized by a
//!   [`ServerPolicy`] (the hook greylisting plugs into).
//! * [`ClientSession`] — the sending state machine, parameterized by a
//!   [`Dialect`] so both compliant MTAs and sloppy bot senders can be
//!   expressed.
//! * [`exchange`] — a lock-step driver running a client against a server,
//!   producing a [`DeliveryOutcome`] and a transcript.
//!
//! The engine is transport-agnostic: the simulation couples sessions
//! directly, and a transcript of either side is plain text.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod address;
mod client;
mod command;
mod dialect;
mod envelope;
mod extensions;
mod message;
pub mod metrics;
pub mod reply;
mod server;
pub mod tcp;
mod wire;

pub use address::{EmailAddress, ParseAddressError, ReversePath};
pub use client::{ClientAction, ClientSession, DeliveryOutcome, FailStage};
pub use command::Command;
pub use dialect::{Dialect, DialectFingerprint, HeloStyle};
pub use envelope::{Envelope, EnvelopeError};
pub use extensions::Capabilities;
pub use message::Message;
pub use reply::{Reply, ReplyCategory};
pub use server::{
    AcceptAll, PolicyDecision, ServerPolicy, ServerSession, SessionState, Transaction,
};
pub use wire::{dot_stuff, dot_unstuff, exchange, exchange_pipelined, Transcript, TranscriptEntry};
